//! Black-box swap (experiment E7): explain the repairs of the
//! HoloClean-style probabilistic cleaner on a census-shaped workload.
//!
//! The paper's point is that T-REx "treats the repair algorithm as a black
//! box": the same explanation pipeline that dissected Algorithm 1 runs
//! unchanged over a completely different engine — here, our from-scratch
//! HoloClean-style cleaner (domain pruning → featurization → perceptron
//! calibration → ICM inference) on census data with FD constraints.
//!
//! Run with: `cargo run --release --example holoclean_style`

use trex::{render_repair_screen, Explainer};
use trex_datagen::{adult, errors};
use trex_repair::{score_repair, HoloCleanStyle, RepairAlgorithm};
use trex_shapley::SamplingConfig;

fn main() {
    // Census-like data with two FDs and a range rule.
    let clean = adult::generate_census(&adult::CensusConfig { rows: 24, seed: 2 });
    let dcs = adult::census_constraints();
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.03,
            kind_weights: [1, 0, 0, 0, 0], // in-column swaps: realistic entry errors
            columns: vec!["EducationYears".to_string(), "Relationship".to_string()],
            seed: 13,
            ..Default::default()
        },
    );
    println!(
        "census workload: {} rows, {} injected errors",
        clean.num_rows(),
        injected.truth.len()
    );

    // The black box: HoloClean-style engine with perceptron calibration.
    let alg = HoloCleanStyle::new().with_training();
    let result = alg.repair(&dcs, &injected.dirty);
    let quality = score_repair(&result.changes, &injected.truth);
    println!(
        "holoclean-style repair: {} changes, precision {:.2}, recall {:.2}, F1 {:.2}\n",
        result.changes.len(),
        quality.precision(),
        quality.recall(),
        quality.f1()
    );
    // Show only the rows that changed, to keep the screen small.
    println!("{}", render_repair_screen(&injected.dirty, &result.changes));

    // Explain the first repaired cell, same API as with Algorithm 1.
    let Some(first) = result.changes.first() else {
        println!("nothing was repaired; nothing to explain");
        return;
    };
    let explainer = Explainer::new(&alg);
    let cons = explainer
        .explain_constraints(&dcs, &injected.dirty, first.cell)
        .expect("cell is repaired");
    println!(
        "constraint influence for the repair {} (same black-box API as Algorithm 1):\n{}",
        first, cons.ranking
    );

    // Cell explanation: every sample re-runs the full probabilistic
    // cleaner, so keep m modest here (the bench suite measures cost).
    let cells = explainer
        .explain_cells_sampled(
            &dcs,
            &injected.dirty,
            first.cell,
            SamplingConfig {
                samples: 25,
                seed: 21,
            },
        )
        .expect("cell is repaired");
    println!("top influencing cells:");
    for e in cells.ranking.top_k(5) {
        println!(
            "  {:<22} {:+.4} ± {:.4}",
            e.label,
            e.value,
            e.std_error.unwrap_or(0.0)
        );
    }
}
