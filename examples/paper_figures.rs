//! Regenerate every figure and worked example of the paper (experiments
//! E1–E4 of DESIGN.md).
//!
//! * Figure 2a/2b — the dirty and clean La Liga tables;
//! * Example 2.2 — `Alg|t5[City]` with and without C1;
//! * Figure 1 / Example 2.3 — exact constraint Shapley values
//!   `(1/6, 1/6, 2/3, 0)` for `t5[Country]`;
//! * Example 2.4 — the cell ranking (t5[League] on top, t1[Place] at zero)
//!   under the definition's masked semantics, plus the replacement-sampler
//!   view of Example 2.5.
//!
//! Run with: `cargo run --release --example paper_figures`

use trex::{Explainer, MaskMode};
use trex_datagen::laliga;
use trex_repair::{repairs_cell_to, RepairAlgorithm};
use trex_shapley::SamplingConfig;
use trex_table::Value;

fn main() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();

    println!("== Figure 2a: dirty table T^d ==\n{dirty}");
    let result = alg.repair(&dcs, &dirty);
    println!(
        "== Figure 2b: clean table T^c = Alg(C, T^d) ==\n{}",
        result.clean
    );
    assert_eq!(
        result.clean,
        laliga::clean_table(),
        "repair must match Figure 2b"
    );
    println!(
        "repaired cells: {}\n",
        result
            .changes
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );

    // Example 2.2
    let city = laliga::city_cell(&dirty);
    let madrid = Value::str("Madrid");
    let with_c1 = repairs_cell_to(&alg, &dcs[..3], &dirty, city, &madrid);
    let without_c1 = repairs_cell_to(&alg, &dcs[1..3], &dirty, city, &madrid);
    println!("== Example 2.2 ==");
    println!("Alg|t5[City]({{C1,C2,C3}}, T^d) = {}", with_c1 as u8);
    println!("Alg|t5[City]({{C2,C3}},    T^d) = {}\n", without_c1 as u8);
    assert!(with_c1 && !without_c1);

    // Figure 1 / Example 2.3
    let cell = laliga::cell_of_interest(&dirty);
    let explainer = Explainer::new(&alg);
    let cons = explainer
        .explain_constraints(&dcs, &dirty, cell)
        .expect("t5[Country] is repaired");
    println!("== Figure 1 / Example 2.3: constraint Shapley values for t5[Country] ==");
    for (name, r) in &cons.exact {
        println!("  Shap({name}) = {r}");
    }
    println!("{}", cons.ranking);

    // Example 2.4 under the definition's (masked) semantics.
    println!("== Example 2.4: cell influence (masked/null semantics, 2000 permutation walks) ==");
    let masked = explainer
        .explain_cells_masked(
            &dcs,
            &dirty,
            cell,
            MaskMode::Null,
            SamplingConfig {
                samples: 2000,
                seed: 3,
            },
        )
        .expect("repaired");
    for e in masked.ranking.top_k(8) {
        println!(
            "  {:<12} {:+.4} ± {:.4}",
            e.label,
            e.value,
            e.std_error.unwrap_or(0.0)
        );
    }
    println!(
        "  t1[Place] = {:+.4} (dummy, exactly zero)\n",
        masked.ranking.get("t1[Place]").unwrap().value
    );

    // Example 2.5's replacement-sampling estimator, for comparison.
    println!("== Example 2.5: replacement-sampling estimator (per-player, m = 2000) ==");
    let sampled = explainer
        .explain_cells_sampled(
            &dcs,
            &dirty,
            cell,
            SamplingConfig {
                samples: 2000,
                seed: 3,
            },
        )
        .expect("repaired");
    for e in sampled.ranking.top_k(8) {
        println!(
            "  {:<12} {:+.4} ± {:.4}",
            e.label,
            e.value,
            e.std_error.unwrap_or(0.0)
        );
    }
    println!(
        "\nNote: the two estimators measure different coalition semantics\n\
         (absence-as-null vs absence-as-random-redraw); the paper's Example\n\
         2.4 ranking — t5[League] first — holds under the definition's\n\
         masked semantics, while the literal redraw estimator shifts mass to\n\
         the Country witness cells. EXPERIMENTS.md §E4 discusses this."
    );
}
