//! Scale & convergence (experiments E5/E6): cell explanations on a table
//! far beyond exact enumeration, with the sampling error measured against
//! a converged reference.
//!
//! "The number of cells in a table can be very large, so T-REx uses a
//! sampling algorithm" (§2.3): a 48-row standings table has 288 cells —
//! 2^287 coalitions, hopeless exactly, routine for permutation sampling.
//! The example prints the top-ranked cells at increasing sample counts and
//! the observed 1/√m error decay for one tracked cell.
//!
//! Run with: `cargo run --release --example scale_sampling`

use trex::{CellGameMasked, MaskMode};
use trex_datagen::{errors, soccer};
use trex_repair::RepairAlgorithm;
use trex_shapley::{estimate_all_walk, Game, SamplingConfig};
use trex_table::CellRef;

fn main() {
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 4,
        cities_per_country: 3,
        teams_per_city: 2,
        years: 2,
        seed: 17,
    });
    let dcs = soccer::soccer_constraints();
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.01,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: 23,
            ..Default::default()
        },
    );
    let dirty = &injected.dirty;
    println!(
        "table: {} rows × {} attrs = {} cells ({} injected errors)",
        dirty.num_rows(),
        dirty.arity(),
        dirty.num_cells(),
        injected.truth.len()
    );

    // Explain the first injected error's repair.
    let alg = soccer::soccer_algorithm1();
    let result = alg.repair(&dcs, dirty);
    let target_cell: CellRef = injected.truth[0].cell;
    let Some(change) = result.changes.iter().find(|c| c.cell == target_cell) else {
        println!("the injected error was not repaired; try another seed");
        return;
    };
    println!("explaining {change}\n");

    let game = CellGameMasked::new(
        &alg,
        &dcs,
        dirty,
        target_cell,
        change.to.clone(),
        MaskMode::Null,
    );
    println!("cell game has {} players", Game::num_players(&game));

    // Reference: a long run.
    let reference = estimate_all_walk(
        &game,
        SamplingConfig {
            samples: 2000,
            seed: 999,
        },
    );
    let top_ref = (0..reference.len())
        .max_by(|a, b| reference[*a].value.total_cmp(&reference[*b].value))
        .unwrap();
    println!(
        "reference (m=2000): top cell {} with value {:+.4}\n",
        Game::player_label(&game, top_ref),
        reference[top_ref].value
    );

    println!("{:>6} {:>10} {:>10}  top-3", "m", "est", "abs err");
    for m in [25usize, 50, 100, 200, 400, 800] {
        let est = estimate_all_walk(
            &game,
            SamplingConfig {
                samples: m,
                seed: 7,
            },
        );
        let err = (est[top_ref].value - reference[top_ref].value).abs();
        let mut order: Vec<usize> = (0..est.len()).collect();
        order.sort_by(|a, b| est[*b].value.total_cmp(&est[*a].value));
        let top3: Vec<String> = order
            .iter()
            .take(3)
            .map(|i| format!("{}={:+.3}", Game::player_label(&game, *i), est[*i].value))
            .collect();
        println!(
            "{m:>6} {:>10.4} {err:>10.4}  {}",
            est[top_ref].value,
            top3.join(", ")
        );
    }
    println!("\nerror decays like 1/sqrt(m); the bench suite (sampling_convergence)\nfits the log-log slope (expected ≈ −0.5).");
}
