//! Regenerate the shipped `data/` files from the library fixtures, so the
//! file-based CLI path (`tests/cli_files.rs`, `trex … --table --dcs --rules`)
//! stays byte-consistent with `trex_datagen::laliga`:
//!
//! ```text
//! cargo run --example export_laliga
//! ```

use std::fmt::Write as _;
use trex_repro::datagen::laliga;
use trex_repro::table::write_csv;

fn main() -> std::io::Result<()> {
    let dir = format!("{}/data", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir)?;

    std::fs::write(
        format!("{dir}/laliga_dirty.csv"),
        write_csv(&laliga::dirty_table()),
    )?;
    std::fs::write(
        format!("{dir}/laliga_clean.csv"),
        write_csv(&laliga::clean_table()),
    )?;

    let mut dcs = String::from("# Figure 1: the four denial constraints of the running example.\n");
    for dc in laliga::constraints() {
        writeln!(dcs, "{dc}").unwrap();
    }
    std::fs::write(format!("{dir}/laliga.dcs"), dcs)?;

    let rules = "\
# The paper's Algorithm 1 as a rule list (constraint: Attr <- action).
C1: City <- most_common
C2: Country <- most_common_given(City)
C3: Country <- most_common
C4: Place <- most_common_given(Team)
";
    std::fs::write(format!("{dir}/algorithm1.rules"), rules)?;

    println!("wrote laliga_dirty.csv, laliga_clean.csv, laliga.dcs, algorithm1.rules to {dir}");
    Ok(())
}
