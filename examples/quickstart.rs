//! Quickstart: the full T-REx pipeline in one page.
//!
//! Walks the demo's three screens (paper Figure 3) on a small city/country
//! table: load data + denial constraints → repair with a black-box
//! algorithm → pick a repaired cell → rank constraints and cells by their
//! Shapley value for that repair.
//!
//! Run with: `cargo run --example quickstart`

use trex::{render_explanation_screen, render_input_screen, render_repair_screen, Explainer};
use trex_constraints::parse_dcs;
use trex_repair::{FixAction, RepairAlgorithm, Rule, RuleRepair};
use trex_shapley::SamplingConfig;
use trex_table::{CellRef, TableBuilder};

fn main() {
    // 1. A dirty table: the last row's Country disagrees with every other
    //    Madrid row.
    let dirty = TableBuilder::new()
        .str_columns(["Team", "City", "Country"])
        .str_row(["Real Madrid", "Madrid", "Spain"])
        .str_row(["Atletico Madrid", "Madrid", "Spain"])
        .str_row(["Rayo Vallecano", "Madrid", "Spain"])
        .str_row(["Getafe", "Madrid", "España"])
        .build();

    // 2. Denial constraints, in the paper's syntax.
    let dcs = parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .expect("constraints parse");

    // 3. A black-box repair algorithm (the paper's Algorithm 1 scheme).
    let alg = RuleRepair::new(vec![
        Rule::new(
            "C1",
            FixAction::MostCommon {
                attr: "City".into(),
            },
        ),
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into(),
            },
        ),
    ]);

    // Screen 1: input.
    println!("{}", render_input_screen(&dirty, &dcs));

    // Screen 2: repair.
    let result = alg.repair(&dcs, &dirty);
    println!("{}", render_repair_screen(&dirty, &result.changes));

    // Screen 3: explanation of the repaired cell t4[Country].
    let cell = CellRef::new(3, dirty.schema().id("Country"));
    let explainer = Explainer::new(&alg);
    let constraints = explainer
        .explain_constraints(&dcs, &dirty, cell)
        .expect("t4[Country] is repaired");
    let cells = explainer
        .explain_cells_sampled(
            &dcs,
            &dirty,
            cell,
            SamplingConfig {
                samples: 2000,
                seed: 42,
            },
        )
        .expect("t4[Country] is repaired");
    println!(
        "{}",
        render_explanation_screen("t4[Country]", Some(&constraints), Some(&cells))
    );

    println!(
        "Interpretation: only C2 can repair a Country cell here, so it gets\n\
         the entire Shapley mass; the influential cells are the Madrid rows'\n\
         City/Country values that C2 joins on and votes with."
    );
}
