//! The demo scenario of §4 (experiment E8): use explanations to *debug* a
//! constraint set.
//!
//! A curator cleans a soccer standings table with one bad constraint in the
//! mix: `B` declares that two teams of the same league must share a city —
//! plainly wrong, and it drags city values toward the league's most common
//! city. T-REx's constraint explanation ranks `B` as the top influencer of
//! the bogus repair; removing it (the demo's "act on the explanation" step)
//! fixes the repair. Repair quality against injected ground truth is
//! reported before and after.
//!
//! Run with: `cargo run --release --example debug_constraints`

use trex::Session;
use trex_constraints::parse_dcs;
use trex_datagen::{errors, soccer};
use trex_repair::{score_repair, FixAction, Rule, RuleRepair};
use trex_table::CellRef;

fn main() {
    // A clean 24-row standings table, then inject Country errors with known
    // ground truth (the demo's "errors will be manually added").
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 3,
        cities_per_country: 2,
        teams_per_city: 2,
        years: 2,
        seed: 5,
    });
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.04,
            kind_weights: [0, 0, 1, 0, 0], // out-of-domain garbage, like "España"
            columns: vec!["Country".to_string()],
            seed: 9,
            ..Default::default()
        },
    );
    println!(
        "workload: {} rows, {} injected Country errors\n",
        clean.num_rows(),
        injected.truth.len()
    );

    // Constraint set: two good rules plus one *bad* one.
    let dcs = parse_dcs(
        "C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
         C3: !(t1.League = t2.League & t1.Country != t2.Country)\n\
         B: !(t1.League = t2.League & t1.City != t2.City)\n",
    )
    .unwrap();
    let alg = RuleRepair::new(vec![
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "League".into(),
            },
        ),
        Rule::new(
            "B",
            FixAction::MostCommon {
                attr: "City".into(),
            },
        ),
    ]);

    let mut session = Session::new(Box::new(alg), injected.dirty.clone(), dcs);

    // First repair: the bad constraint mangles City cells.
    let before = session.repair();
    let q_before = score_repair(&before.changes, &injected.truth);
    println!(
        "repair with bad constraint B: {} changes, precision {:.2}, recall {:.2}, F1 {:.2}",
        before.changes.len(),
        q_before.precision(),
        q_before.recall(),
        q_before.f1()
    );

    // Pick a cell that B wrongly repaired (a City change — no City cell is
    // actually dirty) and ask T-REx to explain it.
    let city_attr = injected.dirty.schema().id("City");
    let bogus: CellRef = before
        .changes
        .iter()
        .map(|c| c.cell)
        .find(|c| c.attr == city_attr)
        .expect("the bad constraint causes at least one City repair");
    let explanation = session.explain_constraints(bogus).unwrap();
    println!(
        "\nexplanation for the bogus repair of t{}[City]:\n{}",
        bogus.row + 1,
        explanation.ranking
    );
    let culprit = explanation.ranking.top().unwrap().label.clone();
    println!("top-ranked constraint: {culprit} — removing it\n");
    assert_eq!(culprit, "B", "the bad constraint must rank first");

    // Act on the explanation: remove the culprit and repair again.
    session.remove_constraint(&culprit);
    let after = session.repair();
    let q_after = score_repair(&after.changes, &injected.truth);
    println!(
        "repair without {culprit}: {} changes, precision {:.2}, recall {:.2}, F1 {:.2}",
        after.changes.len(),
        q_after.precision(),
        q_after.recall(),
        q_after.f1()
    );
    assert!(
        q_after.precision() >= q_before.precision(),
        "removing the culprit must not hurt precision"
    );
    println!("\nsession history:");
    for h in session.history() {
        println!("  - {} ({} cells repaired)", h.action, h.cells_repaired);
    }
}
