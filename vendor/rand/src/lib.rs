//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace builds in a container with no network access and no cargo
//! registry cache, so the real `rand` cannot be fetched. This crate provides
//! the exact API subset the workspace uses, source-compatible with rand 0.8:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`, object-safe;
//! * [`Rng`] — `gen_range` over integer/float `Range`/`RangeInclusive`,
//!   `gen_bool`, blanket-implemented for every `RngCore` (including
//!   `dyn RngCore`);
//! * [`SeedableRng`] — `from_seed` and the SplitMix64-based `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ (Blackman & Vigna), deterministic per
//!   seed, passes the workspace's statistical tests.
//!
//! The one deliberate incompatibility: `StdRng` is a different algorithm
//! than crates.io rand's (ChaCha12), so the two produce different streams
//! for the same seed. Nothing in this workspace asserts on exact stream
//! values — only on per-seed determinism and distribution shape — so this
//! is safe. Swap the path dependency for the real crate to drop the shim.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniform raw bits.
///
/// Object-safe; algorithms take `&mut dyn RngCore` where they need dynamic
/// dispatch (e.g. stochastic game oracles).
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (sized or not, so it also works through `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`). Panics on an empty
    /// range, matching crates.io rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 uniform mantissa bits, the same resolution f64 can represent.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection, avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject draws above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    // Full-width range: every draw is in range.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range: empty range {}..{}",
            self.start,
            self.end
        );
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end,
            "gen_range: empty range {}..{}",
            self.start,
            self.end
        );
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed via SplitMix64 — the
    /// same expansion crates.io rand documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Deterministic per seed, 256-bit state, passes BigCrush — more than
    /// adequate for the sampling estimators and data generators here. Not
    /// stream-compatible with crates.io rand's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn gen_bool_matches_p() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..100);
        assert!(x < 100);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
