//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds in a container with no network access and no cargo
//! registry cache, so the real `criterion` cannot be fetched. This crate is
//! source-compatible with the subset of criterion 0.5 the `benches/` targets
//! use, but measures with a plain wall-clock loop (warmup + `sample_size`
//! timed runs) and prints `name ... mean <time> (<n> samples)` lines instead
//! of producing statistics, plots, or HTML reports. Swap the path dependency
//! for crates.io criterion to get the real harness; no bench source changes
//! are needed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (criterion's is a deprecated
/// alias of the std one in 0.5).
pub use std::hint::black_box;

/// The benchmark manager: groups benchmarks and holds default settings.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from argv (the harness passes bench filters through).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filter: None,
        }
    }
}

impl Criterion {
    /// Read settings from the command line (`cargo bench -- <filter>`).
    /// Flags (`--bench`, `--exact`, …) are ignored; the first bare argument
    /// becomes a substring filter, matching cargo's convention.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Default number of timed runs per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        let mean = if bencher.samples.is_empty() {
            Duration::ZERO
        } else {
            bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32
        };
        println!(
            "{name:<60} mean {mean:>12.3?} ({} samples)",
            bencher.samples.len()
        );
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed runs for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Record the per-iteration workload size. The shim accepts and ignores
    /// it (the real criterion uses it to report elements/sec).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Run a benchmark that borrows a prepared input.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group. (The real criterion renders the group summary here.)
    pub fn finish(self) {}
}

/// Times the benchmark body: warms up once, then runs `sample_size` timed
/// iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, using [`black_box`] on its output to keep the
    /// optimizer honest.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warmup, also catches panics before timing
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("indexed", rows)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for groups benchmarking one function at many sizes.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: a `BenchmarkId` or a plain string.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration workload size, for elements/bytes-per-second reporting.
/// The shim accepts it for source compatibility and ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Decoded bytes processed per iteration.
    BytesDecimal(u64),
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + sample_size timed runs.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_sample_size_overrides_default() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &2usize, |b, &x| {
            b.iter(|| {
                runs += x;
            })
        });
        group.finish();
        assert_eq!(runs, 8); // (1 warmup + 3 samples) × 2
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 10).into_benchmark_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
