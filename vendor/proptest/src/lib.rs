//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds in a container with no network access, so the real
//! `proptest` cannot be fetched — and without it the property-test modules
//! gated behind the workspace's `proptest` feature never ran at all. This
//! crate provides the exact API subset those modules use, source-compatible
//! with proptest 1.x:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//!   implemented for ranges, tuples, [`strategy::Just`], and
//!   character-class string patterns (`"[a-z0-9]{0,12}"`);
//! * [`collection::vec`] / [`collection::hash_set`], [`bool::ANY`],
//!   [`arbitrary::any`];
//! * the [`proptest!`] harness macro with `#![proptest_config(...)]`,
//!   plus [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_oneof!`].
//!
//! Two deliberate simplifications, both safe for this workspace:
//!
//! 1. **No shrinking.** A failing case reports its generated inputs
//!    verbatim (`Debug`) instead of minimizing them first. Failures stay
//!    reproducible — the case seed is derived from the test name, so a red
//!    run replays identically.
//! 2. **Plain uniform generation.** The real crate biases toward edge
//!    cases; the shim samples uniformly from the declared strategy. The
//!    workspace's properties are invariants over the whole domain, not
//!    boundary hunts, so coverage differs only statistically.
//!
//! Swap the path dependency for the registry crate to get shrinking and
//! biased generation back — the gated modules compile against either.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategy trait and combinators.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;

    /// A source of random values of one type. The shim's strategies are
    /// pure generators: no shrinking state, just `(strategy, rng) → value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: std::fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a second strategy from each generated value and draw from
        /// it (proptest's `prop_flat_map`).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (needed by [`crate::prop_oneof!`], whose
        /// arms have distinct concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: std::fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A uniform choice between boxed alternatives — the engine behind
    /// [`crate::prop_oneof!`].
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T: std::fmt::Debug> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.0.len());
            self.0[arm].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
    }

    /// `&str` patterns act as string strategies, as in the real crate. The
    /// shim supports the subset the workspace uses: one character class
    /// with literal characters and `a-z` ranges, followed by a `{lo,hi}`
    /// repetition — e.g. `"[a-zA-Z0-9 ,]{0,10}"`. Any other pattern is
    /// treated as a literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            match parse_class_pattern(self) {
                Some((alphabet, lo, hi)) => {
                    let len = rng.gen_range(lo..=hi);
                    (0..len)
                        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[class]{lo,hi}` into (alphabet, lo, hi); `None` for anything
    /// else.
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` range (a dash with neighbors on both sides); a leading
            // or trailing dash is a literal.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo: usize = reps.0.trim().parse().ok()?;
        let hi: usize = reps.1.trim().parse().ok()?;
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

/// `any::<T>()` — full-domain strategies per type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy of `A` (proptest's `any::<A>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for one primitive (the `Strategy` types behind
    /// [`Arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// A collection size specification: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy: draws until the target size is reached (the
    /// element domain must be able to supply that many distinct values).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + std::hash::Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + std::hash::Hash,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = std::collections::HashSet::new();
            // Collisions are expected (small domains); cap the attempts so
            // an impossible target fails loudly instead of spinning.
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (target + 1),
                    "hash_set: domain cannot supply {target} distinct values"
                );
            }
            out
        }
    }
}

/// Test-runner types: the failure type and the per-test configuration.
pub mod test_runner {
    /// A failed property case (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build from a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Per-`proptest!` configuration. Only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration with `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The glob import the property-test modules start with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derive the deterministic base seed of one property from its name: the
/// shim has no global RNG state, so a failing property replays identically
/// on every run.
pub fn seed_of(test_name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    h.finish()
}

/// Build the seeded case RNG ([`proptest!`] expansion detail — keeps user
/// crates from needing their own `rand` dependency for the macro).
#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Property assertion: fails the current case (with generated inputs in the
/// message) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            left
        );
    }};
}

/// The property-test harness: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` random cases.
///
/// The body runs inside a closure returning
/// `Result<(), TestCaseError>` — `prop_assert!` family failures and
/// explicit `return Ok(())` early-exits both work as in the real crate. No
/// shrinking: a failure reports the generated inputs directly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::__new_rng($crate::seed_of(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            // Bind each strategy once, under its argument's name; the
            // per-case `let` below shadows them with generated values.
            let ($($arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&$arg, &mut __rng),)+
                );
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_tuples_and_just_generate_in_domain() {
        let mut rng = crate::__new_rng(1);
        let strat = (0usize..5, Just("x"), 1u64..=3);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 5);
            assert_eq!(b, "x");
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0i64..100, 0..10);
        let run = |seed| {
            let mut rng = crate::__new_rng(seed);
            (0..20)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn string_patterns_honor_class_and_length() {
        let mut rng = crate::__new_rng(3);
        let strat = "[a-c0-1 ]{2,5}";
        for _ in 0..300 {
            let s = strat.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }
        // Non-pattern strings are literals.
        assert_eq!("plain".generate(&mut rng), "plain");
    }

    #[test]
    fn oneof_hits_every_arm_and_hash_set_hits_its_size() {
        let mut rng = crate::__new_rng(5);
        let strat = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
        let sets = crate::collection::hash_set(0usize..4, 1..3);
        for _ in 0..100 {
            let s = sets.generate(&mut rng);
            assert!((1..=2).contains(&s.len()));
        }
    }

    #[test]
    fn flat_map_feeds_the_outer_draw_through() {
        let mut rng = crate::__new_rng(9);
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    // The harness macro itself, including the config override...
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_assertions_hold(x in 0usize..10, y in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x, "increment changed nothing: {}", x);
            if y { return Ok(()); }
            prop_assert!(!y);
        }
    }

    // ...and the failure path: a violated property must panic (the harness
    // is not vacuous).
    proptest! {
        #[test]
        #[should_panic(expected = "property")]
        fn harness_propagates_failures(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
