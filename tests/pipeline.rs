//! Cross-crate pipeline tests: CSV in → constraints parsed from text →
//! repair → explanation → rendered report, plus workload-scale smoke tests
//! and degenerate-input behaviour.

use trex::{Explainer, Session};
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_datagen::{errors, laliga, soccer};
use trex_repair::{
    score_repair, FdChaseRepair, HolisticRepair, HoloCleanStyle, NoOpRepair, RepairAlgorithm,
};
use trex_shapley::SamplingConfig;
use trex_table::{read_csv, write_csv, CellRef, DType, Value};

/// A user-shaped flow: table arrives as CSV text, constraints as text.
#[test]
fn csv_to_explanation_end_to_end() {
    let csv = "\
Team,City,Country
Real Madrid,Madrid,Spain
Atletico,Madrid,Spain
Getafe,Madrid,España
Barcelona,Barcelona,Spain
";
    let dirty = read_csv(csv, &[DType::Str, DType::Str, DType::Str]).unwrap();
    let dcs = parse_dcs("C2: !(t1.City = t2.City & t1.Country != t2.Country)").unwrap();
    let alg = HolisticRepair::new();
    let result = alg.repair(&dcs, &dirty);
    assert_eq!(result.changes.len(), 1);
    let cell = result.changes[0].cell;
    assert_eq!(cell, CellRef::new(2, dirty.schema().id("Country")));

    let out = Explainer::new(&alg)
        .explain_constraints(&dcs, &dirty, cell)
        .unwrap();
    assert_eq!(out.ranking.get("C2").unwrap().value, 1.0);

    // Round-trip the repaired table back out through CSV.
    let text = write_csv(&result.clean);
    let back = read_csv(&text, &[DType::Str, DType::Str, DType::Str]).unwrap();
    assert_eq!(back, result.clean);
}

/// The paper pipeline at workload scale: 36-row generated standings with
/// injected errors; Algorithm 1 plus the paper's constraint set repairs
/// the Country errors and the explanation pipeline runs on one.
#[test]
fn generated_workload_end_to_end() {
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 3,
        cities_per_country: 3,
        teams_per_city: 2,
        years: 1,
        seed: 31,
    });
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.02,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: 77,
            ..Default::default()
        },
    );
    let dcs = soccer::soccer_constraints();
    let alg = soccer::soccer_algorithm1();
    let result = alg.repair(&dcs, &injected.dirty);
    let quality = score_repair(&result.changes, &injected.truth);
    assert_eq!(quality.recall(), 1.0, "all injected errors repaired");
    assert_eq!(quality.precision(), 1.0, "no spurious repairs");

    let cell = injected.truth[0].cell;
    let cons = Explainer::new(&alg)
        .explain_constraints(&dcs, &injected.dirty, cell)
        .unwrap();
    // Country repairs flow through C2/C3; C4 is always a dummy here.
    assert_eq!(cons.ranking.get("C4").unwrap().value, 0.0);
    assert!(cons.ranking.total() > 0.99);
}

/// Every repair engine at least detects the error cell on the generated
/// workload (value correctness varies by engine — that is experiment A4's
/// subject, not a test invariant).
#[test]
fn all_engines_detect_injected_errors() {
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 2,
        cities_per_country: 2,
        teams_per_city: 2,
        years: 1,
        seed: 3,
    });
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.03,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: 41,
            ..Default::default()
        },
    );
    let dcs = soccer::soccer_constraints();
    let engines: Vec<Box<dyn RepairAlgorithm>> = vec![
        Box::new(soccer::soccer_algorithm1()),
        Box::new(HoloCleanStyle::new()),
        Box::new(FdChaseRepair::new()),
        Box::new(HolisticRepair::new()),
    ];
    for alg in engines {
        let result = alg.repair(&dcs, &injected.dirty);
        let q = score_repair(&result.changes, &injected.truth);
        assert!(
            q.detection_recall() > 0.99,
            "{} missed injected errors (detection recall {})",
            alg.name(),
            q.detection_recall()
        );
    }
}

/// Degenerate inputs must not panic anywhere in the pipeline.
#[test]
fn degenerate_inputs_are_handled() {
    let dirty = laliga::dirty_table();
    let dcs: Vec<DenialConstraint> = Vec::new();

    // No constraints: repair is a no-op; explanation refuses (cell not
    // repaired).
    let alg = laliga::algorithm1();
    let result = alg.repair(&dcs, &dirty);
    assert!(result.changes.is_empty());
    let err = Explainer::new(&alg)
        .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
        .unwrap_err();
    assert!(matches!(err, trex::ExplainError::CellNotRepaired { .. }));

    // No-op engine: same.
    let err = Explainer::new(&NoOpRepair)
        .explain_constraints(
            &laliga::constraints(),
            &dirty,
            laliga::cell_of_interest(&dirty),
        )
        .unwrap_err();
    assert!(matches!(err, trex::ExplainError::CellNotRepaired { .. }));

    // Empty table.
    let empty = trex_table::Table::empty(dirty.schema().clone());
    let result = alg.repair(&laliga::constraints(), &empty);
    assert!(result.changes.is_empty());
}

/// The session loop is stable across repeated repair invocations (repairing
/// the dirty table twice gives the same answer; the session never mutates
/// its input table on repair).
#[test]
fn session_repairs_are_stable() {
    let mut s = Session::new(
        Box::new(laliga::algorithm1()),
        laliga::dirty_table(),
        laliga::constraints(),
    );
    let a = s.repair();
    let b = s.repair();
    assert_eq!(a.clean, b.clean);
    assert_eq!(s.table(), &laliga::dirty_table());
}

/// Sampled explanations are reproducible across identical configs and
/// differ across seeds (sanity of the seeding scheme).
#[test]
fn sampling_seeds_behave() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let ex = Explainer::new(&alg);
    let cell = laliga::cell_of_interest(&dirty);
    let run = |seed: u64| {
        ex.explain_cells_sampled(&dcs, &dirty, cell, SamplingConfig { samples: 60, seed })
            .unwrap()
            .values
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

/// Labeled-null masking never leaks into repair output: a masked coalition
/// table's repair only ever writes concrete values (or leaves cells be).
#[test]
fn masked_tables_never_grow_labeled_nulls_in_repairs() {
    use trex::{CellGameMasked, MaskMode};
    use trex_shapley::{Coalition, Game};
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);
    let game = CellGameMasked::new(
        &alg,
        &dcs,
        &dirty,
        cell,
        Value::str("Spain"),
        MaskMode::Distinct,
    );
    // A handful of deterministic coalitions.
    for k in 0..8u64 {
        let coalition = Coalition::from_players(
            Game::num_players(&game),
            (0..Game::num_players(&game)).filter(|i| (*i as u64 + k).is_multiple_of(3)),
        );
        let table = game.coalition_table(&coalition);
        let result = alg.repair(&dcs, &table);
        for ch in &result.changes {
            assert!(
                ch.to.is_concrete(),
                "repair wrote a non-concrete value: {ch}"
            );
        }
    }
}
