//! Serial-vs-parallel equivalence of the Shapley sampling engine, on the
//! paper's own games (cross-crate: `trex-shapley` workers driving the
//! `trex-core` coalition games over the `trex-repair` sharded oracle).
//!
//! The determinism contract under test:
//! * `parallel::estimate_all` / `estimate_all_walk` with `threads = 1`
//!   reproduce `sampling::estimate_all` / `estimate_all_walk` bit for bit —
//!   and the same holds for the adaptive, stratified, and antithetic
//!   variants against their serial counterparts;
//! * for any fixed `(seed, threads)` pair the parallel estimates are
//!   reproducible;
//! * the walk estimator stays exactly efficient (per-permutation marginals
//!   telescope to `v(N)`), regardless of how walks are chunked onto workers;
//! * `Schedule::PlayerSharded` is **identical to the serial estimators at
//!   any thread count** (the strictly stronger contract), and the
//!   giant-bucket block split keeps `find_violations_par` serial-identical
//!   on a table whose rows all share one equality-bucket key;
//! * `Schedule::WorkStealing` is identical at any thread count to the
//!   serial *round-laddered* adaptive estimator
//!   (`sampling::estimate_player_adaptive_rounds` under the `player_seed`
//!   ladder) — pinned on a skewed-adaptive fixture where one hot player
//!   owns an order of magnitude more budget than the rest, the exact shape
//!   round stealing exists for.
//!
//! CI's thread-matrix job re-runs this file with `TREX_TEST_THREADS` set to
//! 1/2/4/8 on a machine with real cores; the variable adds that count to
//! every thread sweep below.

use trex::{CellGameMasked, CellGameSampled, MaskMode};
use trex_datagen::laliga;
use trex_shapley::{
    parallel, sampling, stratified, Game, ParallelConfig, SamplingConfig, Schedule, StochasticGame,
};
use trex_table::Value;

/// The thread counts a sweep exercises: `base`, plus the CI thread-matrix
/// count from `TREX_TEST_THREADS` when set.
fn thread_counts(base: &[usize]) -> Vec<usize> {
    let mut counts = base.to_vec();
    if let Ok(raw) = std::env::var("TREX_TEST_THREADS") {
        let extra: usize = raw
            .parse()
            .expect("TREX_TEST_THREADS must be a thread count");
        assert!(extra >= 1, "TREX_TEST_THREADS must be >= 1");
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn masked_game<'a>(
    alg: &'a trex_repair::RuleRepair,
    dcs: &'a [trex_constraints::DenialConstraint],
    dirty: &'a trex_table::Table,
) -> CellGameMasked<'a> {
    let cell = laliga::cell_of_interest(dirty);
    CellGameMasked::new(alg, dcs, dirty, cell, Value::str("Spain"), MaskMode::Null)
}

#[test]
fn one_thread_walk_matches_serial_on_the_laliga_cell_game() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let game = masked_game(&alg, &dcs, &dirty);
    let cfg = SamplingConfig {
        samples: 200,
        seed: 3,
    };
    let serial = sampling::estimate_all_walk(&game, cfg);
    let par = parallel::estimate_all_walk(&game, ParallelConfig::from_sampling(cfg, 1));
    assert_eq!(serial, par, "threads = 1 must replay the serial stream");
}

#[test]
fn one_thread_replacement_sampling_matches_serial() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);
    let game = CellGameSampled::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
    let cfg = SamplingConfig {
        samples: 40,
        seed: 7,
    };
    let serial = sampling::estimate_all(&game, cfg);
    let par = parallel::estimate_all(&game, ParallelConfig::from_sampling(cfg, 1));
    assert_eq!(serial, par);
}

#[test]
fn fixed_seed_threads_pair_is_reproducible_on_the_cell_game() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    for threads in [2usize, 4] {
        // Fresh games per run: the shared oracle cache must not be able to
        // mask a nondeterministic estimate.
        let a = parallel::estimate_all_walk(
            &masked_game(&alg, &dcs, &dirty),
            ParallelConfig::new(120, 9, threads),
        );
        let b = parallel::estimate_all_walk(
            &masked_game(&alg, &dcs, &dirty),
            ParallelConfig::new(120, 9, threads),
        );
        assert_eq!(a, b, "threads = {threads}");
    }
}

#[test]
fn parallel_walk_keeps_the_efficiency_axiom_and_the_headline() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let game = masked_game(&alg, &dcs, &dirty);
    let n = Game::num_players(&game);
    for threads in [1usize, 3, 8] {
        let ests = parallel::estimate_all_walk(&game, ParallelConfig::new(300, 3, threads));
        // Efficiency: the grand coalition repairs the cell (v(N) = 1), and
        // walk marginals telescope to it exactly at any chunking.
        let total: f64 = ests.iter().map(|e| e.value).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "threads {threads}: total {total}"
        );
        // Example 2.4's headline survives any thread count.
        let top = (0..n)
            .max_by(|a, b| ests[*a].value.total_cmp(&ests[*b].value))
            .unwrap();
        assert_eq!(Game::player_label(&game, top), "t5[League]");
    }
}

/// The la Liga replacement-semantics cell game (the stochastic game the
/// per-player estimators run on) with a fresh oracle cache.
fn sampled_game<'a>(
    alg: &'a trex_repair::RuleRepair,
    dcs: &'a [trex_constraints::DenialConstraint],
    dirty: &'a trex_table::Table,
) -> CellGameSampled<'a> {
    let cell = laliga::cell_of_interest(dirty);
    CellGameSampled::new(alg, dcs, dirty, cell, Value::str("Spain"))
}

#[test]
fn one_thread_adaptive_matches_serial_on_the_laliga_cell_game() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let game = sampled_game(&alg, &dcs, &dirty);
    // A converging run (loose tolerance) and a budget-capped run (absurd
    // tolerance) must both replay the serial stream exactly.
    for (tol, max) in [(0.2, 2000), (1e-9, 60)] {
        let (serial, s_ok) = sampling::estimate_player_adaptive(&game, 0, tol, 1.96, 20, max, 7);
        let (par, p_ok) = parallel::estimate_player_adaptive(&game, 0, tol, 1.96, 20, max, 7, 1);
        assert_eq!(serial, par, "tol {tol}");
        assert_eq!(s_ok, p_ok);
    }
}

#[test]
fn one_thread_stratified_and_antithetic_match_serial_on_the_laliga_cell_game() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let game = sampled_game(&alg, &dcs, &dirty);
    let serial = stratified::estimate_player_stratified(&game, 3, 2, 11);
    let par = parallel::estimate_player_stratified(&game, 3, 2, 11, 1);
    assert_eq!(serial, par, "stratified: threads = 1 replays serial");
    let serial = stratified::estimate_player_antithetic(&game, 3, 30, 11);
    let par = parallel::estimate_player_antithetic(&game, 3, 30, 11, 1);
    assert_eq!(serial, par, "antithetic: threads = 1 replays serial");
}

#[test]
fn variance_reduced_estimators_are_reproducible_at_four_threads() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    // Fresh games per run: the shared oracle cache must not be able to mask
    // a nondeterministic estimate.
    let strat =
        || parallel::estimate_player_stratified(&sampled_game(&alg, &dcs, &dirty), 3, 2, 9, 4);
    assert_eq!(strat(), strat());
    let anti =
        || parallel::estimate_player_antithetic(&sampled_game(&alg, &dcs, &dirty), 3, 24, 9, 4);
    assert_eq!(anti(), anti());
    let adapt = || {
        parallel::estimate_player_adaptive(
            &sampled_game(&alg, &dcs, &dirty),
            3,
            0.15,
            1.96,
            15,
            300,
            9,
            4,
        )
    };
    let (a, a_ok) = adapt();
    let (b, b_ok) = adapt();
    assert_eq!(a, b);
    assert_eq!(a_ok, b_ok);
}

#[test]
fn player_sharded_walk_is_serial_identical_on_the_laliga_cell_game() {
    // Acceptance criterion of the player-sharded schedule: bit-for-bit the
    // serial `sampling::estimate_all_walk` at thread counts 1, 2, and 4
    // (and the CI matrix count), on the paper's own cell game over the
    // shared repair oracle.
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cfg = SamplingConfig {
        samples: 150,
        seed: 3,
    };
    let serial = sampling::estimate_all_walk(&masked_game(&alg, &dcs, &dirty), cfg);
    for threads in thread_counts(&[1, 2, 4]) {
        let par = parallel::estimate_all_walk(
            &masked_game(&alg, &dcs, &dirty),
            ParallelConfig::from_sampling(cfg, threads).with_schedule(Schedule::PlayerSharded),
        );
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn player_sharded_estimate_all_is_serial_identical_on_the_laliga_cell_game() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cfg = SamplingConfig {
        samples: 30,
        seed: 7,
    };
    let serial = sampling::estimate_all(&sampled_game(&alg, &dcs, &dirty), cfg);
    for threads in thread_counts(&[1, 2, 4]) {
        let par = parallel::estimate_all(
            &sampled_game(&alg, &dcs, &dirty),
            ParallelConfig::from_sampling(cfg, threads).with_schedule(Schedule::PlayerSharded),
        );
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn player_sharded_adaptive_driver_is_serial_identical() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let serial: Vec<_> = {
        let game = sampled_game(&alg, &dcs, &dirty);
        (0..StochasticGame::num_players(&game))
            .map(|p| {
                sampling::estimate_player_adaptive(
                    &game,
                    p,
                    0.15,
                    1.96,
                    15,
                    120,
                    trex_shapley::player_seed(9, p),
                )
            })
            .collect()
    };
    for threads in thread_counts(&[1, 2, 4]) {
        let par = parallel::estimate_all_adaptive(
            &sampled_game(&alg, &dcs, &dirty),
            0.15,
            1.96,
            15,
            120,
            9,
            threads,
            Schedule::PlayerSharded,
        );
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn work_stealing_is_serial_identical_on_the_skewed_adaptive_fixture() {
    // Acceptance criterion of the stealing schedule: bit-identical
    // per-player estimates to the serial (round-laddered) estimator at
    // thread counts 1/2/4/8 (and the CI matrix count) on the one-hot
    // fixture — player 0's ±1 coin-flip marginal needs > 10× every other
    // player's budget, so every worker ends up computing rounds of the
    // same player, the hardest case for the determinism contract.
    let game = trex_shapley::game::fixtures::one_hot(9, 0);
    let n = StochasticGame::num_players(&game);
    let (tol, z, batch, cap, seed) = (0.03f64, 1.96f64, 25usize, 2000usize, 7u64);
    let serial: Vec<(trex_shapley::Estimate, bool)> = (0..n)
        .map(|p| {
            sampling::estimate_player_adaptive_rounds(
                &game,
                p,
                tol,
                z,
                batch,
                cap,
                trex_shapley::player_seed(seed, p),
            )
        })
        .collect();
    // The skew is real: the hot player runs to the cap (2000 samples), the
    // dummies stop at two batches (50) — a 40× budget ratio.
    assert!(!serial[0].1, "the hot player must exhaust its budget");
    assert_eq!(serial[0].0.samples, cap);
    for dummy in &serial[1..] {
        assert!(dummy.1);
        assert_eq!(dummy.0.samples, 2 * batch);
    }
    for threads in thread_counts(&[1, 2, 4, 8]) {
        let par = parallel::estimate_all_adaptive(
            &game,
            tol,
            z,
            batch,
            cap,
            seed,
            threads,
            Schedule::WorkStealing,
        );
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn work_stealing_is_serial_identical_on_the_laliga_cell_game() {
    // The same contract on the paper's own replacement-semantics cell game
    // over the shared repair oracle (uneven RNG consumption per eval).
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let serial: Vec<_> = {
        let game = sampled_game(&alg, &dcs, &dirty);
        (0..StochasticGame::num_players(&game))
            .map(|p| {
                sampling::estimate_player_adaptive_rounds(
                    &game,
                    p,
                    0.15,
                    1.96,
                    15,
                    120,
                    trex_shapley::player_seed(9, p),
                )
            })
            .collect()
    };
    for threads in thread_counts(&[1, 2, 4]) {
        let par = parallel::estimate_all_adaptive(
            &sampled_game(&alg, &dcs, &dirty),
            0.15,
            1.96,
            15,
            120,
            9,
            threads,
            Schedule::WorkStealing,
        );
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn giant_equality_bucket_detection_is_serial_identical() {
    // Regression for the block-split path: a pathological table whose rows
    // all share one equality-bucket key (every row the same Team) used to
    // land its entire pair scan on a single worker; the split must keep
    // the output — witnesses and order — exactly the serial scan's at
    // every thread count.
    let mut builder = trex_table::TableBuilder::new().str_columns(["Team", "City", "Country"]);
    for i in 0..53 {
        let city = format!("C{}", i % 5);
        builder = builder.str_row(["OneTeam", city.as_str(), "Y"]);
    }
    let table = builder.build();
    let dcs: Vec<trex_constraints::DenialConstraint> =
        trex_constraints::parse_dcs("C1: !(t1.Team = t2.Team & t1.City != t2.City)")
            .unwrap()
            .into_iter()
            .map(|dc| dc.resolved(table.schema()).unwrap())
            .collect();
    let serial = trex_constraints::find_all_violations_indexed(&dcs, &table);
    assert!(!serial.is_empty(), "the bucket must conflict");
    for threads in thread_counts(&[1, 2, 4, 8, 16]) {
        let par = trex_constraints::find_all_violations_par(&dcs, &table, threads);
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn sampled_game_estimates_stay_in_range_across_threads() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);
    let game = CellGameSampled::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
    let n = StochasticGame::num_players(&game);
    let ests = parallel::estimate_all(&game, ParallelConfig::new(30, 1, 4));
    assert_eq!(ests.len(), n);
    for (i, e) in ests.iter().enumerate() {
        assert_eq!(e.samples, 30, "player {i} lost samples");
        assert!(
            (-1.0..=1.0).contains(&e.value),
            "player {i}: marginal mean {} out of range",
            e.value
        );
    }
}
