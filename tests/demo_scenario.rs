//! Integration test E8: the §4 demo scenario — explanations drive
//! constraint debugging, and acting on them improves the repair.

use trex::Session;
use trex_constraints::parse_dcs;
use trex_datagen::{errors, laliga, soccer};
use trex_repair::{score_repair, FixAction, Rule, RuleRepair};
use trex_shapley::SamplingConfig;
use trex_table::{CellRef, Value};

fn bad_constraint_setup() -> (trex_datagen::InjectionResult, Session) {
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 3,
        cities_per_country: 2,
        teams_per_city: 2,
        years: 2,
        seed: 5,
    });
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.04,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: 9,
            ..Default::default()
        },
    );
    let dcs = parse_dcs(
        "C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
         C3: !(t1.League = t2.League & t1.Country != t2.Country)\n\
         B: !(t1.League = t2.League & t1.City != t2.City)\n",
    )
    .unwrap();
    let alg = RuleRepair::new(vec![
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        ),
        Rule::new(
            "B",
            FixAction::MostCommon {
                attr: "City".into(),
            },
        ),
    ]);
    let session = Session::new(Box::new(alg), injected.dirty.clone(), dcs);
    (injected, session)
}

/// The bad constraint B causes spurious City repairs; T-REx ranks B first
/// for such a repair; removing B improves precision and never reduces
/// recall.
#[test]
fn removing_the_culprit_constraint_improves_the_repair() {
    let (injected, mut session) = bad_constraint_setup();
    let before = session.repair();
    let q_before = score_repair(&before.changes, &injected.truth);

    // B repairs City cells, none of which are actually dirty.
    let city_attr = injected.dirty.schema().id("City");
    let bogus = before
        .changes
        .iter()
        .map(|c| c.cell)
        .find(|c| c.attr == city_attr)
        .expect("B must cause a bogus City repair");
    let explanation = session.explain_constraints(bogus).unwrap();
    assert_eq!(explanation.ranking.top().unwrap().label, "B");

    session.remove_constraint("B");
    let after = session.repair();
    let q_after = score_repair(&after.changes, &injected.truth);

    assert!(q_after.precision() > q_before.precision());
    assert!(q_after.recall() >= q_before.recall());
    assert!(q_after.f1() > q_before.f1());
    // And no more bogus City repairs.
    assert!(after.changes.iter().all(|c| c.cell.attr != city_attr));
}

/// The other demo direction: fix an *input cell* the explanation points at,
/// and the next repair changes accordingly (the §1 "changing specific cells
/// to make the repair more accurate" loop), on the paper's own table.
#[test]
fn editing_an_influential_cell_redirects_the_repair() {
    let mut session = Session::new(
        Box::new(laliga::algorithm1()),
        laliga::dirty_table(),
        laliga::constraints(),
    );
    let cell = laliga::cell_of_interest(session.table());
    // The masked explanation says t5[League] is the most influential cell.
    let cells = session
        .explain_cells_masked(
            cell,
            trex::MaskMode::Null,
            SamplingConfig {
                samples: 400,
                seed: 8,
            },
        )
        .unwrap();
    assert_eq!(cells.ranking.top().unwrap().label, "t5[League]");

    // Act on it: blank out t5[League]. C3 can then no longer fire for t5 —
    // but C1∧C2 still repair both dirty cells. The *explanation* changes:
    // C3's influence collapses to zero.
    let league = session.table().schema().id("League");
    session.set_cell(CellRef::new(4, league), Value::Null);
    let cons = session.explain_constraints(cell).unwrap();
    assert_eq!(cons.ranking.get("C3").unwrap().value, 0.0);
    assert_eq!(cons.exact[0].1.to_string(), "1/2"); // C1
    assert_eq!(cons.exact[1].1.to_string(), "1/2"); // C2
}

/// Session history records the full demo walk.
#[test]
fn session_history_reflects_the_demo_walk() {
    let (_injected, mut session) = bad_constraint_setup();
    session.repair();
    session.remove_constraint("B");
    session.repair();
    let actions: Vec<&str> = session
        .history()
        .iter()
        .map(|h| h.action.as_str())
        .collect();
    assert_eq!(actions, vec!["repair", "remove constraint B", "repair"]);
}
