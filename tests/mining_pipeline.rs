//! End-to-end with *mined* constraints: discover DCs from clean data
//! (the paper's reference [2] workflow), then repair + explain a dirtied
//! table using only what was mined — no hand-written constraints anywhere.

use trex::Explainer;
use trex_constraints::{fds_of, mine_dcs, FunctionalDependency, MineConfig};
use trex_datagen::{errors, soccer};
use trex_repair::{score_repair, HoloCleanStyle, RepairAlgorithm};

fn standings() -> trex_table::Table {
    soccer::generate_clean(&soccer::SoccerConfig {
        countries: 2,
        cities_per_country: 2,
        teams_per_city: 2,
        years: 2, // teams repeat across seasons → FDs are minimal, not keys
        seed: 77,
    })
}

#[test]
fn mining_recovers_the_papers_constraint_shapes() {
    let clean = standings();
    let dcs = mine_dcs(&clean, &MineConfig::default());
    let fds = fds_of(&dcs);
    for (lhs, rhs) in [("Team", "City"), ("City", "Country"), ("League", "Country")] {
        assert!(
            fds.contains(&FunctionalDependency::new([lhs], rhs)),
            "{lhs} -> {rhs} not mined; got {}",
            fds.iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

#[test]
fn mined_constraints_drive_repair_and_explanation() {
    let clean = standings();
    // Keep the FD-shaped subset (the repairable kind) to a manageable set.
    let mined = mine_dcs(&clean, &MineConfig::default());
    let dcs: Vec<trex_constraints::DenialConstraint> = mined
        .into_iter()
        .filter(|d| FunctionalDependency::from_dc(d).is_some())
        .take(6)
        .collect();
    assert!(dcs.len() >= 3);

    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: 0.02,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: 5,
            ..Default::default()
        },
    );
    let alg = HoloCleanStyle::new();
    let result = alg.repair(&dcs, &injected.dirty);
    let q = score_repair(&result.changes, &injected.truth);
    assert!(
        q.detection_recall() > 0.99,
        "mined constraints must surface the injected errors (got {})",
        q.detection_recall()
    );

    // Explain the first successful repair through the standard pipeline.
    if let Some(ch) = result.changes.iter().find(|c| {
        injected
            .truth
            .iter()
            .any(|t| t.cell == c.cell && t.to == c.to)
    }) {
        let out = Explainer::new(&alg)
            .explain_constraints(&dcs, &injected.dirty, ch.cell)
            .unwrap();
        assert!(
            out.ranking.total() > 0.99,
            "some mined DC carries the repair"
        );
    }
}
