//! Workspace manifest smoke test: if a crate is dropped from the facade's
//! dependency list or a `pub use` re-export is renamed, this fails with a
//! readable message instead of an opaque downstream compile error. It also
//! runs one minimal end-to-end round trip (CSV text → parse_dcs → repair →
//! explain) through the facade paths only.

use trex_repro::constraints::parse_dcs;
use trex_repro::repair::{FixAction, RepairAlgorithm, Rule, RuleRepair};
use trex_repro::table::{read_csv_strings, write_csv, CellRef, Value};
use trex_repro::trex::Explainer;

/// Every facade module resolves and exposes its headline items. Each
/// statement names the re-export it guards, so a dropped dependency or a
/// renamed `pub use` fails here with that name in the error.
#[test]
fn facade_reexports_resolve() {
    let _table = trex_repro::table::read_csv("A\n1\n", &[trex_repro::table::DType::Int])
        .expect("trex_repro::table::read_csv");
    let _dcs = trex_repro::constraints::parse_dcs("").expect("trex_repro::constraints::parse_dcs");
    let _alg =
        trex_repro::repair::RuleRepair::parse_rules("").expect("trex_repro::repair::parse_rules");

    use trex_repro::shapley::{shapley_exact, Coalition, FnGame};
    let game = FnGame::new(2, |c: &Coalition| c.len() as f64);
    let phi = shapley_exact(&game).expect("trex_repro::shapley::shapley_exact");
    assert_eq!(phi.len(), 2);

    let dirty = trex_repro::datagen::laliga::dirty_table();
    let cell = trex_repro::datagen::laliga::cell_of_interest(&dirty);
    let players = trex_repro::trex::cell_players(&dirty, cell);
    assert_eq!(players.len(), 35, "36 cells minus the cell of interest");
}

#[test]
fn csv_to_explanation_round_trip_through_the_facade() {
    let csv = "\
Team,City
Real Madrid,Madrid
Real Madrid,Capital
Real Madrid,Madrid
";
    let table = read_csv_strings(csv).expect("facade CSV reader parses the smoke table");
    assert_eq!(table.num_rows(), 3, "smoke table should have 3 data rows");

    let dcs = parse_dcs("C1: !(t1.Team = t2.Team & t1.City != t2.City)")
        .expect("facade constraint parser accepts the paper's C1");
    assert_eq!(dcs.len(), 1);

    let alg = RuleRepair::new(vec![Rule::new(
        "C1",
        FixAction::MostCommon {
            attr: "City".to_string(),
        },
    )]);
    let repaired = alg.repair(&dcs, &table);
    let city = table.schema().id("City");
    assert_eq!(
        repaired.clean.value(1, city),
        &Value::str("Madrid"),
        "the majority-City rule should repair the outlier cell"
    );

    let cell = CellRef::new(1, city);
    let out = Explainer::new(&alg)
        .explain_constraints(&dcs, &table, cell)
        .expect("facade explainer runs on the smoke scenario");
    assert_eq!(
        out.ranking.top().map(|e| e.label.as_str()),
        Some("C1"),
        "the only constraint must top its own explanation ranking"
    );

    // And back out to CSV text through the facade writer.
    let round = write_csv(&repaired.clean);
    assert!(
        round.contains("Real Madrid,Madrid"),
        "repaired table should serialize through the facade: {round}"
    );
}

#[test]
fn facade_exposes_the_paper_fixtures() {
    let dirty = trex_repro::datagen::laliga::dirty_table();
    let dcs = trex_repro::datagen::laliga::constraints();
    assert_eq!(dirty.num_rows(), 6, "Figure 2a has six rows");
    assert_eq!(dcs.len(), 4, "Figure 1 has four constraints");
}
