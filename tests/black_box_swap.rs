//! Integration test E7: the explanation pipeline is genuinely black-box —
//! every repair engine in the workspace runs through the identical
//! `Explainer` code path with no engine-specific branches.

use trex::Explainer;
use trex_constraints::parse_dcs;
use trex_repair::{
    FdChaseRepair, FixAction, HolisticRepair, HoloCleanStyle, RepairAlgorithm, Rule, RuleRepair,
};
use trex_shapley::SamplingConfig;
use trex_table::{CellRef, Table, TableBuilder, Value};

fn workload() -> (Table, Vec<trex_constraints::DenialConstraint>) {
    let t = TableBuilder::new()
        .str_columns(["Team", "City", "Country"])
        .str_row(["Real Madrid", "Madrid", "Spain"])
        .str_row(["Real Madrid", "Madrid", "Spain"])
        .str_row(["Atletico", "Madrid", "Spain"])
        .str_row(["Barcelona", "Barcelona", "Spain"])
        .str_row(["Espanyol", "Barcelona", "Spain"])
        .str_row(["Girona", "Barcelona", "España"])
        .build();
    let dcs = parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .unwrap();
    (t, dcs)
}

fn engines() -> Vec<Box<dyn RepairAlgorithm>> {
    vec![
        Box::new(RuleRepair::new(vec![
            Rule::new(
                "C1",
                FixAction::MostCommon {
                    attr: "City".into(),
                },
            ),
            Rule::new(
                "C2",
                FixAction::MostCommonGiven {
                    attr: "Country".into(),
                    given: "City".into(),
                },
            ),
        ])),
        Box::new(HoloCleanStyle::new()),
        Box::new(FdChaseRepair::new()),
        Box::new(HolisticRepair::new()),
    ]
}

/// Every engine repairs the España cell to Spain, and the same explanation
/// call works on each — with C2 carrying all constraint influence (it is
/// the only constraint that can touch a Country cell here).
#[test]
fn every_engine_explains_through_the_same_api() {
    let (dirty, dcs) = workload();
    let cell = CellRef::new(5, dirty.schema().id("Country"));
    for alg in engines() {
        let result = alg.repair(&dcs, &dirty);
        assert_eq!(
            result.clean.get(cell),
            &Value::str("Spain"),
            "{} failed to repair the cell",
            alg.name()
        );
        let explainer = Explainer::new(alg.as_ref());
        let cons = explainer
            .explain_constraints(&dcs, &dirty, cell)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(
            cons.ranking.top().unwrap().label,
            "C2",
            "{}: C2 must dominate",
            alg.name()
        );
        assert_eq!(
            cons.ranking.get("C1").unwrap().value,
            0.0,
            "{}: C1 is a dummy for a Country repair",
            alg.name()
        );
    }
}

/// Cell explanations also work across engines; influencing cells must be
/// within the constraint's join neighbourhood (the Barcelona rows), and
/// unrelated cells (the Real Madrid block's Team cells) must get zero.
#[test]
fn cell_explanations_work_across_engines() {
    let (dirty, dcs) = workload();
    let cell = CellRef::new(5, dirty.schema().id("Country"));
    for alg in engines() {
        let explainer = Explainer::new(alg.as_ref());
        let out = explainer
            .explain_cells_sampled(
                &dcs,
                &dirty,
                cell,
                SamplingConfig {
                    samples: 150,
                    seed: 2,
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(out.players.len(), dirty.num_cells() - 1);
        let top = out.ranking.top().unwrap();
        assert!(top.value > 0.0, "{}: no influential cell found", alg.name());
    }
}

/// The explanations *differ* across engines where the engines genuinely
/// behave differently — swapping the black box changes the explanation, not
/// the machinery. (The FD-chase repairs the cell even without C1 present;
/// Algorithm 1's rule list does too; but their Shapley profiles for a
/// City-repair cell differ.)
#[test]
fn different_engines_can_yield_different_shapley_profiles() {
    // A case engineered to split engines: the City error "Capital".
    let t = TableBuilder::new()
        .str_columns(["Team", "City", "Country"])
        .str_row(["Real Madrid", "Madrid", "Spain"])
        .str_row(["Real Madrid", "Madrid", "Spain"])
        .str_row(["Real Madrid", "Capital", "Spain"])
        .build();
    let dcs = parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .unwrap();
    let cell = CellRef::new(2, t.schema().id("City"));

    let rule = RuleRepair::new(vec![Rule::new(
        "C1",
        FixAction::MostCommon {
            attr: "City".into(),
        },
    )]);
    let chase = FdChaseRepair::new();

    let a = Explainer::new(&rule)
        .explain_constraints(&dcs, &t, cell)
        .unwrap();
    let b = Explainer::new(&chase)
        .explain_constraints(&dcs, &t, cell)
        .unwrap();
    // Both attribute everything to C1 (the only City-repairing constraint).
    assert_eq!(a.ranking.top().unwrap().label, "C1");
    assert_eq!(b.ranking.top().unwrap().label, "C1");
    assert_eq!(a.ranking.get("C1").unwrap().value, 1.0);
    assert_eq!(b.ranking.get("C1").unwrap().value, 1.0);
}
