//! Failure injection: the explanation machinery must survive brittle and
//! degenerate black boxes (DESIGN.md §6).

use trex::{Explainer, MaskMode};
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_datagen::laliga;
use trex_repair::{NoOpRepair, PanicGuard, RepairAlgorithm, RepairResult};
use trex_shapley::SamplingConfig;
use trex_table::{CellRef, Table, Value};

/// A repairer that panics on any table containing a null cell — exactly the
/// inputs the masked cell game produces.
struct NullPhobic;

impl RepairAlgorithm for NullPhobic {
    fn name(&self) -> &str {
        "null-phobic"
    }
    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        assert!(
            dirty.cells_with_values().all(|(_, v)| !v.is_null()),
            "cannot handle nulls"
        );
        // Otherwise behave like Algorithm 1.
        laliga::algorithm1().repair(dcs, dirty)
    }
}

fn silence_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Without the guard the masked explanation would crash; with it, the
/// explanation completes and panicking coalitions count as "no repair".
#[test]
fn guarded_brittle_engine_survives_masked_explanation() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let guard = PanicGuard::new(NullPhobic);
    let ex = Explainer::new(&guard);
    let cell = laliga::cell_of_interest(&dirty);
    let out = silence_panics(|| {
        ex.explain_cells_masked(
            &dcs,
            &dirty,
            cell,
            MaskMode::Null,
            SamplingConfig {
                samples: 40,
                seed: 2,
            },
        )
    })
    .unwrap();
    // Every masked coalition with at least one null panicked; only the
    // full coalition evaluated normally. The explanation still exists and
    // panics were counted.
    assert_eq!(out.players.len(), 35);
    assert!(guard.panic_count() > 0);
}

/// A degenerate game (never repaired under any coalition) yields an
/// all-zero ranking rather than an error once the full run does repair.
#[test]
fn always_and_never_repairing_boxes() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();

    // Never repairs: refused upfront (cell not repaired by the full run).
    let ex = Explainer::new(&NoOpRepair);
    assert!(ex
        .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
        .is_err());

    // Repairs regardless of the constraints: constraint Shapley mass is all
    // zero except... nothing — v(S) = 1 for every S including ∅, so every
    // marginal is 0 and the entire ranking is zeros. The explainer reports
    // that honestly (total = 0, every entry 0).
    struct Always;
    impl RepairAlgorithm for Always {
        fn name(&self) -> &str {
            "always"
        }
        fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            let mut clean = dirty.clone();
            let cell = laliga::cell_of_interest(dirty);
            clean.set(cell, Value::str("Spain"));
            RepairResult::from_tables(dirty, clean)
        }
    }
    let ex = Explainer::new(&Always);
    let out = ex
        .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
        .unwrap();
    assert!(out.ranking.entries().iter().all(|e| e.value == 0.0));
    assert_eq!(out.ranking.total(), 0.0);
}

/// Constraints referring to attributes that do not exist: parse fine,
/// resolve with a precise error, and the rule engine panics loudly (a
/// caller bug, not a silent no-op) — while violation detection via the
/// public resolve path reports the attribute by name.
#[test]
fn unknown_attribute_constraints_fail_loudly_and_precisely() {
    let dirty = laliga::dirty_table();
    let dc = parse_dcs("X: !(t1.Nope = t2.Nope)").unwrap().remove(0);
    let err = dc.resolved(dirty.schema()).unwrap_err();
    assert_eq!(err.attr, "Nope");
    assert_eq!(err.constraint, "X");
}

/// Explaining a cell of a single-row table (no pairs, no violations).
#[test]
fn single_row_table_explains_nothing() {
    let t = trex_table::TableBuilder::new()
        .str_columns(["A", "B"])
        .str_row(["x", "y"])
        .build();
    let dcs = parse_dcs("C: !(t1.A = t2.A & t1.B != t2.B)").unwrap();
    let alg = laliga::algorithm1();
    let ex = Explainer::new(&alg);
    let err = ex
        .explain_constraints(&dcs, &t, CellRef::new(0, t.schema().id("B")))
        .unwrap_err();
    assert!(matches!(err, trex::ExplainError::CellNotRepaired { .. }));
}
