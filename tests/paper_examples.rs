//! Integration tests E1–E4: every quantitative claim in the paper's worked
//! examples, end-to-end through the public API.

use trex::{Explainer, MaskMode};
use trex_datagen::laliga;
use trex_repair::{repairs_cell_to, RepairAlgorithm};
use trex_shapley::SamplingConfig;
use trex_table::Value;

/// E3 / Figure 2: Algorithm 1 repairs the dirty La Liga table exactly to
/// the printed clean table (t5[City] → Madrid, t5[Country] → Spain).
#[test]
fn e3_figure_2_repair() {
    let dirty = laliga::dirty_table();
    let result = laliga::algorithm1().repair(&laliga::constraints(), &dirty);
    assert_eq!(result.clean, laliga::clean_table());
    assert_eq!(result.changes.len(), 2);
    let labels: Vec<String> = result.changes.iter().map(|c| c.to_string()).collect();
    assert!(labels.iter().any(|l| l.contains("Capital → Madrid")));
    assert!(labels.iter().any(|l| l.contains("España → Spain")));
}

/// E2 / Example 2.2: `Alg|t5[City]({C1,C2,C3}) = 1`, `Alg|t5[City]({C2,C3}) = 0`.
#[test]
fn e2_example_2_2_binary_oracle() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::city_cell(&dirty);
    let madrid = Value::str("Madrid");
    assert!(repairs_cell_to(&alg, &dcs[..3], &dirty, cell, &madrid));
    assert!(!repairs_cell_to(&alg, &dcs[1..3], &dirty, cell, &madrid));
}

/// E1 / Figure 1 + Example 2.3: the constraint Shapley values are exactly
/// (1/6, 1/6, 2/3, 0), computed through the full public pipeline.
#[test]
fn e1_figure_1_constraint_shapley_values() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let explainer = Explainer::new(&alg);
    let out = explainer
        .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
        .unwrap();
    let exact: Vec<(String, String)> = out
        .exact
        .iter()
        .map(|(n, r)| (n.clone(), r.to_string()))
        .collect();
    assert_eq!(
        exact,
        vec![
            ("C1".to_string(), "1/6".to_string()),
            ("C2".to_string(), "1/6".to_string()),
            ("C3".to_string(), "2/3".to_string()),
            ("C4".to_string(), "0".to_string()),
        ]
    );
    // Ranking order: C3, then C1/C2 (tied), then C4.
    let order: Vec<&str> = out
        .ranking
        .entries()
        .iter()
        .map(|e| e.label.as_str())
        .collect();
    assert_eq!(order, vec!["C3", "C1", "C2", "C4"]);
    // Efficiency: values sum to 1 (the full set repairs the cell).
    assert!((out.ranking.total() - 1.0).abs() < 1e-12);
}

/// E1 cross-check: float and rational solvers agree through the pipeline.
#[test]
fn e1_float_matches_rational() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let out = Explainer::new(&alg)
        .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
        .unwrap();
    for (name, rational) in &out.exact {
        let entry = out.ranking.get(name).unwrap();
        assert!((entry.value - rational.to_f64()).abs() < 1e-12, "{name}");
    }
}

/// E4 / Example 2.4 + Example 1.1: the cell ranking under the definition's
/// masked semantics — t5[League] on top, t1[Place] exactly zero,
/// t5[League] above t6[City].
#[test]
fn e4_example_2_4_cell_ranking_masked() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let out = Explainer::new(&alg)
        .explain_cells_masked(
            &dcs,
            &dirty,
            laliga::cell_of_interest(&dirty),
            MaskMode::Null,
            SamplingConfig {
                samples: 800,
                seed: 12,
            },
        )
        .unwrap();
    assert_eq!(out.ranking.top().unwrap().label, "t5[League]");
    assert_eq!(out.ranking.get("t1[Place]").unwrap().value, 0.0);
    assert!(
        out.ranking.get("t5[League]").unwrap().value > out.ranking.get("t6[City]").unwrap().value
    );
    // All Place cells are dummies (no constraint path to Country).
    for r in 1..=6 {
        assert_eq!(
            out.ranking.get(&format!("t{r}[Place]")).unwrap().value,
            0.0,
            "t{r}[Place]"
        );
    }
}

/// E4 under the paper's `Distinct` (labeled-null) counting semantics: the
/// ranking headline is the same.
#[test]
fn e4_cell_ranking_distinct_mask() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let out = Explainer::new(&alg)
        .explain_cells_masked(
            &dcs,
            &dirty,
            laliga::cell_of_interest(&dirty),
            MaskMode::Distinct,
            SamplingConfig {
                samples: 600,
                seed: 5,
            },
        )
        .unwrap();
    assert_eq!(out.ranking.top().unwrap().label, "t5[League]");
    assert_eq!(out.ranking.get("t1[Place]").unwrap().value, 0.0);
}

/// E4, replacement semantics (Example 2.5 verbatim): the dummy cell is
/// still exactly zero and Country witnesses dominate Place cells.
#[test]
fn e4_cell_ranking_replacement_sampler() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let out = Explainer::new(&alg)
        .explain_cells_sampled(
            &dcs,
            &dirty,
            laliga::cell_of_interest(&dirty),
            SamplingConfig {
                samples: 600,
                seed: 4,
            },
        )
        .unwrap();
    assert_eq!(out.ranking.get("t1[Place]").unwrap().value, 0.0);
    let top = out.ranking.top().unwrap();
    assert!(top.value > 0.0);
    // The sampler is seeded: the run is reproducible.
    let again = Explainer::new(&alg)
        .explain_cells_sampled(
            &dcs,
            &dirty,
            laliga::cell_of_interest(&dirty),
            SamplingConfig {
                samples: 600,
                seed: 4,
            },
        )
        .unwrap();
    assert_eq!(out.ranking, again.ranking);
}
