//! The `data/` files shipped for the CLI reproduce the paper end-to-end
//! through the file-based path (CSV text + constraint text + rule text).

use trex::Explainer;
use trex_constraints::parse_dcs;
use trex_repair::{RepairAlgorithm, RuleRepair};
use trex_table::{read_csv_strings, CellRef, Value};

fn data(name: &str) -> String {
    let path = format!("{}/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn shipped_files_reproduce_figure_1() {
    let table = read_csv_strings(&data("laliga_dirty.csv")).unwrap();
    let dcs = parse_dcs(&data("laliga.dcs")).unwrap();
    let alg = RuleRepair::parse_rules(&data("algorithm1.rules")).unwrap();

    // Note: the CSV path types every column as Str (Year/Place become
    // strings), which must not change any result — the constraints only
    // use equality on those attributes.
    let cell = CellRef::new(4, table.schema().id("Country"));
    let out = Explainer::new(&alg)
        .explain_constraints(&dcs, &table, cell)
        .unwrap();
    let exact: Vec<String> = out.exact.iter().map(|(n, r)| format!("{n}={r}")).collect();
    assert_eq!(exact, vec!["C1=1/6", "C2=1/6", "C3=2/3", "C4=0"]);
}

#[test]
fn shipped_files_repair_matches_the_library_tables() {
    let table = read_csv_strings(&data("laliga_dirty.csv")).unwrap();
    let dcs = parse_dcs(&data("laliga.dcs")).unwrap();
    let alg = RuleRepair::parse_rules(&data("algorithm1.rules")).unwrap();
    let result = alg.repair(&dcs, &table);
    assert_eq!(result.changes.len(), 2);
    let city = table.schema().id("City");
    let country = table.schema().id("Country");
    assert_eq!(result.clean.value(4, city), &Value::str("Madrid"));
    assert_eq!(result.clean.value(4, country), &Value::str("Spain"));
}

#[test]
fn shipped_files_repair_is_thread_count_invariant() {
    // The repair/violations paths share the explain path's --threads knob;
    // parallel violation detection must not change a single witness or fix.
    let table = read_csv_strings(&data("laliga_dirty.csv")).unwrap();
    let dcs = parse_dcs(&data("laliga.dcs")).unwrap();
    let resolved: Vec<_> = dcs
        .iter()
        .map(|d| d.resolved(table.schema()).unwrap())
        .collect();
    let serial = trex_constraints::find_all_violations_indexed(&resolved, &table);
    for threads in [1usize, 2, 4] {
        assert_eq!(
            serial,
            trex_constraints::find_all_violations_par(&resolved, &table, threads)
        );
        let alg = RuleRepair::parse_rules(&data("algorithm1.rules"))
            .unwrap()
            .with_exec(&trex::ExecConfig::new().with_threads(threads));
        let result = alg.repair(&dcs, &table);
        assert_eq!(result.changes.len(), 2, "threads {threads}");
    }
}

#[test]
fn dcs_file_parses_all_four_constraints() {
    let dcs = parse_dcs(&data("laliga.dcs")).unwrap();
    assert_eq!(dcs.len(), 4);
    assert_eq!(
        dcs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
        vec!["C1", "C2", "C3", "C4"]
    );
}
