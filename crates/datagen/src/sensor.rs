//! A sensor-readings third domain with Zipf-skewed keys.
//!
//! Rows are `(SensorId, Site, Unit, Hour, Reading)` telemetry entries.
//! Unlike the soccer and census generators, the *key distribution* is the
//! point: each row's sensor is drawn from a [`ZipfSampler`], so a few hot
//! sensors own a large share of the table. The two functional dependencies
//! (`SensorId → Site`, `SensorId → Unit`) then hash-partition into one
//! giant equality bucket plus a long tail — the workload shape the
//! giant-bucket splitter in `find_violations_par` exists for — and the two
//! range constraints exercise the unary (non-indexed) scan path.

use crate::skew::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_repair::{FixAction, Rule, RuleRepair};
use trex_table::{DType, Table, TableBuilder, Value};

/// The clean reading range; S3/S4 deny values outside it.
pub const READING_RANGE: (i64, i64) = (0, 1000);

/// Configuration of the sensor-readings generator.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of rows (readings).
    pub rows: usize,
    /// Number of distinct sensors (Zipf ranks).
    pub sensors: usize,
    /// Number of distinct sites sensors are spread over.
    pub sites: usize,
    /// Zipf exponent of the per-row sensor draw (`0` = uniform; larger
    /// values concentrate rows on a few hot sensors).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            rows: 1000,
            sensors: 50,
            sites: 10,
            skew: 1.0,
            seed: 0,
        }
    }
}

const UNITS: [&str; 3] = ["C", "hPa", "%RH"];

/// Generate a clean readings table: `SensorId → Site` and `SensorId →
/// Unit` hold by construction (both are derived from the sensor rank), and
/// every `Reading` lies inside [`READING_RANGE`]. Deterministic per seed;
/// sensor ranks are Zipf-distributed per [`SensorConfig::skew`].
pub fn generate_readings(config: &SensorConfig) -> Table {
    assert!(config.sensors > 0, "need at least one sensor");
    assert!(config.sites > 0, "need at least one site");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = ZipfSampler::new(config.sensors, config.skew);
    let mut b = TableBuilder::new()
        .column("SensorId", DType::Str)
        .column("Site", DType::Str)
        .column("Unit", DType::Str)
        .column("Hour", DType::Int)
        .column("Reading", DType::Int);
    for i in 0..config.rows {
        let s = zipf.sample(&mut rng);
        let reading = rng.gen_range(READING_RANGE.0..=READING_RANGE.1);
        b = b.row([
            Value::str(format!("S{s:05}")),
            Value::str(format!("Site {}", s % config.sites + 1)),
            Value::str(UNITS[s % UNITS.len()]),
            Value::int((i % 24) as i64),
            Value::int(reading),
        ]);
    }
    b.build()
}

/// The sensor constraints: two FDs (equality-join indexed, Zipf-bucketed)
/// plus two unary range rules (nested-scan path).
///
/// * S1: `SensorId → Site`
/// * S2: `SensorId → Unit`
/// * S3: readings are not negative
/// * S4: readings do not exceed the instrument range
pub fn sensor_constraints() -> Vec<DenialConstraint> {
    parse_dcs(
        "S1: !(t1.SensorId = t2.SensorId & t1.Site != t2.Site)\n\
         S2: !(t1.SensorId = t2.SensorId & t1.Unit != t2.Unit)\n\
         S3: !(t1.Reading < 0)\n\
         S4: !(t1.Reading > 1000)\n",
    )
    .expect("sensor constraints parse")
}

/// Algorithm 1 for the sensor domain, conditioned like
/// [`crate::soccer::soccer_algorithm1`]: every fix re-derives the cell from
/// its sensor's most common value.
///
/// 1. S1 ⇒ `Site ← argmax P[Site | SensorId]`
/// 2. S2 ⇒ `Unit ← argmax P[Unit | SensorId]`
/// 3. S3 ⇒ `Reading ← argmax P[Reading | SensorId]`
/// 4. S4 ⇒ `Reading ← argmax P[Reading | SensorId]`
pub fn sensor_algorithm1() -> RuleRepair {
    let given_sensor = |attr: &str| FixAction::MostCommonGiven {
        attr: attr.to_string(),
        given: "SensorId".to_string(),
    };
    RuleRepair::new(vec![
        Rule::new("S1", given_sensor("Site")),
        Rule::new("S2", given_sensor("Unit")),
        Rule::new("S3", given_sensor("Reading")),
        Rule::new("S4", given_sensor("Reading")),
    ])
    .with_name("sensor-algorithm1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use trex_constraints::is_clean;

    #[test]
    fn generated_readings_are_clean() {
        let t = generate_readings(&SensorConfig {
            rows: 500,
            ..Default::default()
        });
        assert_eq!(t.num_rows(), 500);
        assert_eq!(t.arity(), 5);
        let dcs: Vec<DenialConstraint> = sensor_constraints()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        assert!(is_clean(&dcs, &t));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SensorConfig {
            rows: 300,
            seed: 21,
            ..Default::default()
        };
        assert_eq!(generate_readings(&cfg), generate_readings(&cfg));
        let other = generate_readings(&SensorConfig {
            seed: 22,
            ..cfg.clone()
        });
        assert_ne!(generate_readings(&cfg), other);
    }

    #[test]
    fn skew_concentrates_rows_on_the_hot_sensor() {
        let skewed = generate_readings(&SensorConfig {
            rows: 5000,
            sensors: 200,
            skew: 1.2,
            ..Default::default()
        });
        let flat = generate_readings(&SensorConfig {
            rows: 5000,
            sensors: 200,
            skew: 0.0,
            ..Default::default()
        });
        let biggest_bucket = |t: &Table| -> usize {
            let sensor = t.schema().id("SensorId");
            let mut counts: HashMap<String, usize> = HashMap::new();
            for r in 0..t.num_rows() {
                *counts
                    .entry(t.value(r, sensor).as_str().unwrap().to_string())
                    .or_default() += 1;
            }
            counts.into_values().max().unwrap()
        };
        let hot = biggest_bucket(&skewed);
        let uniform = biggest_bucket(&flat);
        assert!(
            hot > uniform * 5,
            "skewed hot bucket ({hot}) must dwarf the uniform one ({uniform})"
        );
    }

    #[test]
    fn algorithm1_repairs_an_injected_site_error() {
        use trex_repair::RepairAlgorithm;
        let clean = generate_readings(&SensorConfig {
            rows: 400,
            sensors: 20,
            skew: 1.0,
            seed: 13,
            ..Default::default()
        });
        let injected = crate::errors::inject_errors(
            &clean,
            &crate::errors::ErrorConfig {
                rate: 0.01,
                kind_weights: [0, 0, 1, 0, 0],
                columns: vec!["Site".to_string()],
                seed: 5,
                ..Default::default()
            },
        );
        assert!(!injected.truth.is_empty());
        let r = sensor_algorithm1().repair(&sensor_constraints(), &injected.dirty);
        assert_eq!(r.clean, clean, "exactly the injected errors are undone");
    }

    #[test]
    fn out_of_range_readings_violate_the_unary_rules() {
        let mut t = generate_readings(&SensorConfig {
            rows: 50,
            ..Default::default()
        });
        let reading = t.schema().id("Reading");
        t.set(trex_table::CellRef::new(3, reading), Value::int(-4));
        t.set(trex_table::CellRef::new(7, reading), Value::int(99_999));
        let dcs: Vec<DenialConstraint> = sensor_constraints()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        let vs = trex_constraints::find_all_violations(&dcs, &t);
        assert!(vs.iter().any(|v| &*v.constraint == "S3" && v.row1 == 3));
        assert!(vs.iter().any(|v| &*v.constraint == "S4" && v.row1 == 7));
    }
}
