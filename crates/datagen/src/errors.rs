//! Error injection with ground truth.
//!
//! The demo "manually adds errors into the table" (§4); this module does it
//! reproducibly. Given a clean table, the injector dirties a configurable
//! fraction of cells with a mix of realistic error kinds and returns the
//! dirty table together with the ground-truth diff, which the repair-quality
//! harness (experiment A4) scores against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_table::{CellChange, CellRef, ColumnStats, Table, Value};

/// Kinds of injected errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Replace the value with another value drawn from the same column
    /// (a plausible-but-wrong entry, like `"Madrid" → "Barcelona"`).
    SwapInColumn,
    /// Mangle a string value's characters (a typo, like `"Spain" →
    /// `"Spian"`); integers are perturbed by ±1..3.
    Typo,
    /// Replace with a fresh out-of-domain token (like `"Capital"` or
    /// `"España"` in the paper's table: values appearing nowhere else).
    OutOfDomain,
    /// Null the cell out (a missing value).
    Null,
}

/// Injection configuration.
#[derive(Debug, Clone)]
pub struct ErrorConfig {
    /// Fraction of cells to dirty (rounded down to a count, but at least 1
    /// if the table is non-empty and the rate is positive).
    pub rate: f64,
    /// Relative frequency of each error kind, in
    /// `[SwapInColumn, Typo, OutOfDomain, Null]` order.
    pub kind_weights: [u32; 4],
    /// Restrict injection to these columns (names); empty = all columns.
    pub columns: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErrorConfig {
    fn default() -> Self {
        ErrorConfig {
            rate: 0.05,
            kind_weights: [3, 1, 1, 1],
            columns: Vec::new(),
            seed: 0,
        }
    }
}

/// The output of an injection run.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// The dirtied table.
    pub dirty: Table,
    /// Ground truth: for every injected cell, `from` is the dirty value and
    /// `to` is the original clean value — i.e. the diff `dirty → clean`,
    /// directly comparable with a repair's changes.
    pub truth: Vec<CellChange>,
}

fn pick_kind(weights: &[u32; 4], rng: &mut StdRng) -> ErrorKind {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "all error-kind weights are zero");
    let mut x = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return match i {
                0 => ErrorKind::SwapInColumn,
                1 => ErrorKind::Typo,
                2 => ErrorKind::OutOfDomain,
                _ => ErrorKind::Null,
            };
        }
        x -= w;
    }
    ErrorKind::Null
}

fn typo(v: &Value, rng: &mut StdRng) -> Value {
    match v {
        Value::Str(s) if s.chars().count() >= 2 => {
            let chars: Vec<char> = s.chars().collect();
            let mut out = chars.clone();
            let i = rng.gen_range(0..chars.len() - 1);
            out.swap(i, i + 1);
            if out == chars {
                out.push('x');
            }
            Value::Str(out.into_iter().collect())
        }
        Value::Str(s) => Value::Str(format!("{s}x")),
        Value::Int(i) => {
            let delta = rng.gen_range(1..=3i64);
            Value::Int(if rng.gen_bool(0.5) {
                i + delta
            } else {
                i - delta
            })
        }
        Value::Float(x) => Value::Float(x + 1.0),
        Value::Bool(b) => Value::Bool(!b),
        Value::Null | Value::LabeledNull(_) => v.clone(),
    }
}

fn swap_in_column(table: &Table, cell: CellRef, rng: &mut StdRng) -> Option<Value> {
    let stats = ColumnStats::from_column(table, cell.attr);
    let current = table.get(cell);
    let mut others: Vec<&Value> = stats.ranked().iter().map(|(v, _)| *v).collect();
    others.retain(|v| *v != current);
    if others.is_empty() {
        None
    } else {
        Some(others[rng.gen_range(0..others.len())].clone())
    }
}

fn out_of_domain(v: &Value, serial: usize) -> Value {
    match v {
        Value::Int(_) => Value::Int(-9_000_000 - serial as i64),
        Value::Float(_) => Value::Float(-9e9 - serial as f64),
        _ => Value::Str(format!("__ERR_{serial}__")),
    }
}

/// Inject errors into a copy of `clean`.
///
/// Cells are chosen uniformly without replacement among the non-null cells
/// of the allowed columns. Deterministic per seed.
pub fn inject_errors(clean: &Table, config: &ErrorConfig) -> InjectionResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let allowed: Vec<usize> = if config.columns.is_empty() {
        (0..clean.arity()).collect()
    } else {
        config
            .columns
            .iter()
            .filter_map(|n| clean.schema().resolve(n).map(|a| a.0))
            .collect()
    };
    let mut eligible: Vec<CellRef> = clean
        .cells()
        .filter(|c| allowed.contains(&c.attr.0) && !clean.get(*c).is_null())
        .collect();
    let want = if config.rate <= 0.0 || eligible.is_empty() {
        0
    } else {
        ((eligible.len() as f64 * config.rate) as usize).max(1)
    };
    // Partial Fisher–Yates to pick `want` distinct cells.
    let picks = want.min(eligible.len());
    for i in 0..picks {
        let j = rng.gen_range(i..eligible.len());
        eligible.swap(i, j);
    }
    let mut dirty = clean.clone();
    let mut truth = Vec::with_capacity(picks);
    for (serial, &cell) in eligible[..picks].iter().enumerate() {
        let original = clean.get(cell).clone();
        let kind = pick_kind(&config.kind_weights, &mut rng);
        let corrupted = match kind {
            ErrorKind::SwapInColumn => match swap_in_column(clean, cell, &mut rng) {
                Some(v) => v,
                None => out_of_domain(&original, serial),
            },
            ErrorKind::Typo => typo(&original, &mut rng),
            ErrorKind::OutOfDomain => out_of_domain(&original, serial),
            ErrorKind::Null => Value::Null,
        };
        if corrupted == original {
            continue; // degenerate corruption; skip rather than lie
        }
        dirty.set(cell, corrupted.clone());
        truth.push(CellChange {
            cell,
            from: corrupted,
            to: original,
        });
    }
    InjectionResult { dirty, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soccer::{generate_clean, SoccerConfig};

    fn clean() -> Table {
        generate_clean(&SoccerConfig {
            countries: 3,
            cities_per_country: 2,
            teams_per_city: 2,
            years: 2,
            seed: 1,
        })
    }

    #[test]
    fn injects_about_the_requested_rate() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                ..Default::default()
            },
        );
        let expected = (c.num_cells() as f64 * 0.1) as usize;
        assert!(res.truth.len() <= expected);
        assert!(res.truth.len() >= expected.saturating_sub(3));
    }

    #[test]
    fn truth_diff_restores_the_clean_table() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.2,
                seed: 7,
                ..Default::default()
            },
        );
        let restored = trex_table::apply(&res.dirty, &res.truth);
        assert_eq!(restored, c);
        // And the reported truth matches the actual diff.
        let diff = trex_table::diff(&res.dirty, &c);
        assert_eq!(diff.len(), res.truth.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = clean();
        let cfg = ErrorConfig {
            rate: 0.15,
            seed: 99,
            ..Default::default()
        };
        let a = inject_errors(&c, &cfg);
        let b = inject_errors(&c, &cfg);
        assert_eq!(a.dirty, b.dirty);
    }

    #[test]
    fn column_restriction_respected() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.3,
                columns: vec!["Country".to_string()],
                seed: 5,
                ..Default::default()
            },
        );
        let country = c.schema().id("Country");
        assert!(!res.truth.is_empty());
        assert!(res.truth.iter().all(|ch| ch.cell.attr == country));
    }

    #[test]
    fn null_kind_produces_nulls() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 0, 0, 1],
                seed: 3,
                ..Default::default()
            },
        );
        assert!(!res.truth.is_empty());
        assert!(res.truth.iter().all(|ch| ch.from.is_null()));
    }

    #[test]
    fn out_of_domain_values_are_fresh() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 0, 1, 0],
                seed: 3,
                ..Default::default()
            },
        );
        for ch in &res.truth {
            // The corrupted value must not appear anywhere in the clean table.
            assert!(c.cells_with_values().all(|(_, v)| v != &ch.from));
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.0,
                ..Default::default()
            },
        );
        assert!(res.truth.is_empty());
        assert_eq!(res.dirty, c);
    }

    #[test]
    fn typos_change_values() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 1, 0, 0],
                seed: 11,
                ..Default::default()
            },
        );
        for ch in &res.truth {
            assert_ne!(ch.from, ch.to);
        }
    }
}
