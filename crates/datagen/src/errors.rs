//! Error injection with ground truth.
//!
//! The demo "manually adds errors into the table" (§4); this module does it
//! reproducibly. Given a clean table, the injector dirties a configurable
//! fraction of cells with a mix of realistic error kinds and returns the
//! dirty table together with the ground-truth diff, which the repair-quality
//! harness (experiment A4) scores against.
//!
//! Two accounting modes:
//!
//! * the legacy `rate` + `kind_weights` mode dirties `⌊eligible × rate⌋`
//!   cells with kinds drawn from the weights (degenerate corruptions are
//!   skipped, so the realized count can fall slightly short);
//! * the [`ErrorRates`] mode gives each kind its own rate with **exact
//!   integer accounting**: the realized count is exactly
//!   `⌊eligible × Σrates⌋` (largest-remainder apportionment across kinds),
//!   and a degenerate corruption falls back to a fresh out-of-domain token
//!   instead of being skipped, so every ground-truth cell differs from the
//!   clean table *and* the count never drifts.
//!
//! The [`ErrorKind::Duplicate`] kind copies a same-column value from a
//! Zipf-chosen donor row ([`ErrorConfig::duplicate_skew`]): hot donors get
//! copied over and over, deliberately growing one equality bucket — the
//! skewed-key workload the giant-bucket splitter in `find_violations_par`
//! has to handle.

use crate::skew::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_table::{CellChange, CellRef, ColumnStats, Table, Value};

/// Kinds of injected errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Replace the value with another value drawn from the same column
    /// (a plausible-but-wrong entry, like `"Madrid" → "Barcelona"`).
    SwapInColumn,
    /// Mangle a string value's characters (a typo, like `"Spain" →
    /// `"Spian"`); integers are perturbed by ±1..3.
    Typo,
    /// Replace with a fresh out-of-domain token (like `"Capital"` or
    /// `"España"` in the paper's table: values appearing nowhere else).
    OutOfDomain,
    /// Null the cell out (a missing value).
    Null,
    /// Copy the same-column value of a Zipf-chosen donor row (a
    /// copy-paste/merge error). Hot donors are copied repeatedly, growing
    /// their equality bucket.
    Duplicate,
}

/// All kinds, in `kind_weights` / [`ErrorRates`] order.
const KIND_ORDER: [ErrorKind; 5] = [
    ErrorKind::SwapInColumn,
    ErrorKind::Typo,
    ErrorKind::OutOfDomain,
    ErrorKind::Null,
    ErrorKind::Duplicate,
];

/// Per-kind error rates (fractions of the eligible cells), the
/// exact-accounting alternative to `rate` + `kind_weights`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorRates {
    /// Fraction of eligible cells to hit with [`ErrorKind::SwapInColumn`].
    pub swap: f64,
    /// Fraction of eligible cells to hit with [`ErrorKind::Typo`].
    pub typo: f64,
    /// Fraction of eligible cells to hit with [`ErrorKind::OutOfDomain`].
    pub out_of_domain: f64,
    /// Fraction of eligible cells to hit with [`ErrorKind::Null`].
    pub null: f64,
    /// Fraction of eligible cells to hit with [`ErrorKind::Duplicate`].
    pub duplicate: f64,
}

impl ErrorRates {
    /// Split one total rate across the kinds in a realistic default mix:
    /// 30% swaps, 30% typos, 10% out-of-domain, 20% nulls, 10% duplicates.
    pub fn split(total: f64) -> Self {
        ErrorRates {
            swap: total * 0.3,
            typo: total * 0.3,
            out_of_domain: total * 0.1,
            null: total * 0.2,
            duplicate: total * 0.1,
        }
    }

    /// The rates in [`KIND_ORDER`].
    fn as_array(&self) -> [f64; 5] {
        [
            self.swap,
            self.typo,
            self.out_of_domain,
            self.null,
            self.duplicate,
        ]
    }

    /// The summed rate.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Exact integer accounting: per-kind injection counts for `eligible`
    /// cells. The counts sum to exactly `⌊eligible × total⌋` (capped at
    /// `eligible`); each kind gets `⌊eligible × rate⌋` plus at most one
    /// largest-remainder top-up (ties broken in [`KIND_ORDER`]).
    ///
    /// # Panics
    /// If any rate is negative/non-finite or the total exceeds 1.
    pub fn counts(&self, eligible: usize) -> [usize; 5] {
        let rates = self.as_array();
        for r in rates {
            assert!(
                r >= 0.0 && r.is_finite(),
                "error rate must be finite and >= 0, got {r}"
            );
        }
        let total = self.total();
        assert!(total <= 1.0 + 1e-9, "error rates sum to {total} > 1");
        let want = ((eligible as f64 * total).floor() as usize).min(eligible);
        let mut counts = [0usize; 5];
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(5);
        let mut assigned = 0usize;
        for (i, r) in rates.iter().enumerate() {
            let quota = eligible as f64 * r;
            counts[i] = quota.floor() as usize;
            assigned += counts[i];
            remainders.push((quota - quota.floor(), i));
        }
        // Σ⌊q_i⌋ ≤ ⌊Σq_i⌋ = want, so the gap is non-negative; hand the
        // leftovers to the largest fractional remainders.
        let mut leftover = want - assigned;
        remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for (_, i) in remainders {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        counts
    }
}

/// Injection configuration.
#[derive(Debug, Clone)]
pub struct ErrorConfig {
    /// Fraction of cells to dirty (rounded down to a count, but at least 1
    /// if the table is non-empty and the rate is positive). Ignored when
    /// [`ErrorConfig::rates`] is set.
    pub rate: f64,
    /// Relative frequency of each error kind, in
    /// `[SwapInColumn, Typo, OutOfDomain, Null, Duplicate]` order. Ignored
    /// when [`ErrorConfig::rates`] is set.
    pub kind_weights: [u32; 5],
    /// Per-kind rates with exact integer accounting; `Some` switches the
    /// injector from the weighted mode to the exact mode (see the module
    /// docs).
    pub rates: Option<ErrorRates>,
    /// Zipf exponent of the donor-row draw for [`ErrorKind::Duplicate`]
    /// (`0` = uniform donors; larger values copy a few hot donor rows over
    /// and over).
    pub duplicate_skew: f64,
    /// Restrict injection to these columns (names); empty = all columns.
    pub columns: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErrorConfig {
    fn default() -> Self {
        ErrorConfig {
            rate: 0.05,
            kind_weights: [3, 1, 1, 1, 0],
            rates: None,
            duplicate_skew: 1.0,
            columns: Vec::new(),
            seed: 0,
        }
    }
}

/// The output of an injection run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionResult {
    /// The dirtied table.
    pub dirty: Table,
    /// Ground truth: for every injected cell, `from` is the dirty value and
    /// `to` is the original clean value — i.e. the diff `dirty → clean`,
    /// directly comparable with a repair's changes.
    pub truth: Vec<CellChange>,
}

fn pick_kind(weights: &[u32; 5], rng: &mut StdRng) -> ErrorKind {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "all error-kind weights are zero");
    let mut x = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return KIND_ORDER[i];
        }
        x -= w;
    }
    ErrorKind::Null
}

fn typo(v: &Value, rng: &mut StdRng) -> Value {
    match v {
        Value::Str(s) if s.chars().count() >= 2 => {
            let chars: Vec<char> = s.chars().collect();
            let mut out = chars.clone();
            let i = rng.gen_range(0..chars.len() - 1);
            out.swap(i, i + 1);
            if out == chars {
                out.push('x');
            }
            Value::Str(out.into_iter().collect())
        }
        Value::Str(s) => Value::Str(format!("{s}x")),
        Value::Int(i) => {
            let delta = rng.gen_range(1..=3i64);
            Value::Int(if rng.gen_bool(0.5) {
                i + delta
            } else {
                i - delta
            })
        }
        Value::Float(x) => Value::Float(x + 1.0),
        Value::Bool(b) => Value::Bool(!b),
        Value::Null | Value::LabeledNull(_) => v.clone(),
    }
}

fn swap_in_column(table: &Table, cell: CellRef, rng: &mut StdRng) -> Option<Value> {
    let stats = ColumnStats::from_column(table, cell.attr);
    let current = table.get(cell);
    let mut others: Vec<&Value> = stats.ranked().iter().map(|(v, _)| *v).collect();
    others.retain(|v| *v != current);
    if others.is_empty() {
        None
    } else {
        Some(others[rng.gen_range(0..others.len())].clone())
    }
}

fn out_of_domain(v: &Value, serial: usize) -> Value {
    match v {
        Value::Int(_) => Value::Int(-9_000_000 - serial as i64),
        Value::Float(_) => Value::Float(-9e9 - serial as f64),
        _ => Value::Str(format!("__ERR_{serial}__")),
    }
}

/// Copy the same-column value of a Zipf-chosen donor row: draw a donor
/// rank (= row index; rank 0 is the hottest donor), then scan forward,
/// wrapping, to the first row whose value actually differs from the
/// victim's.
fn duplicate_value(
    table: &Table,
    cell: CellRef,
    zipf: &ZipfSampler,
    rng: &mut StdRng,
) -> Option<Value> {
    let n = table.num_rows();
    let start = zipf.sample(rng);
    let current = table.get(cell);
    for off in 0..n {
        let row = (start + off) % n;
        let v = table.value(row, cell.attr);
        if !v.is_null() && v != current {
            return Some(v.clone());
        }
    }
    None
}

/// Inject errors into a copy of `clean`.
///
/// Cells are chosen uniformly without replacement among the non-null cells
/// of the allowed columns. Deterministic per seed. See the module docs for
/// the two accounting modes; in both, every reported ground-truth cell
/// differs from the clean table (`apply(dirty, truth)` restores `clean`).
pub fn inject_errors(clean: &Table, config: &ErrorConfig) -> InjectionResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let allowed: Vec<usize> = if config.columns.is_empty() {
        (0..clean.arity()).collect()
    } else {
        config
            .columns
            .iter()
            .filter_map(|n| clean.schema().resolve(n).map(|a| a.0))
            .collect()
    };
    let mut eligible: Vec<CellRef> = clean
        .cells()
        .filter(|c| allowed.contains(&c.attr.0) && !clean.get(*c).is_null())
        .collect();

    // The per-cell kind plan. Exact mode lays the kinds out up front (the
    // cells they land on are random because the picks below are); weighted
    // mode draws a kind per cell, as before.
    let exact_plan: Option<Vec<ErrorKind>> = config.rates.map(|rates| {
        let counts = rates.counts(eligible.len());
        let mut plan = Vec::with_capacity(counts.iter().sum());
        for (i, &c) in counts.iter().enumerate() {
            plan.extend(std::iter::repeat_n(KIND_ORDER[i], c));
        }
        plan
    });
    let want = match &exact_plan {
        Some(plan) => plan.len(),
        None if config.rate <= 0.0 || eligible.is_empty() => 0,
        None => ((eligible.len() as f64 * config.rate) as usize).max(1),
    };
    // Partial Fisher–Yates to pick `want` distinct cells.
    let picks = want.min(eligible.len());
    for i in 0..picks {
        let j = rng.gen_range(i..eligible.len());
        eligible.swap(i, j);
    }
    let zipf = if clean.num_rows() > 0 {
        Some(ZipfSampler::new(clean.num_rows(), config.duplicate_skew))
    } else {
        None
    };
    let mut dirty = clean.clone();
    let mut truth = Vec::with_capacity(picks);
    for (serial, &cell) in eligible[..picks].iter().enumerate() {
        let original = clean.get(cell).clone();
        let kind = match &exact_plan {
            Some(plan) => plan[serial],
            None => pick_kind(&config.kind_weights, &mut rng),
        };
        let corrupted = match kind {
            ErrorKind::SwapInColumn => match swap_in_column(clean, cell, &mut rng) {
                Some(v) => v,
                None => out_of_domain(&original, serial),
            },
            ErrorKind::Typo => typo(&original, &mut rng),
            ErrorKind::OutOfDomain => out_of_domain(&original, serial),
            ErrorKind::Null => Value::Null,
            ErrorKind::Duplicate => {
                match duplicate_value(
                    clean,
                    cell,
                    zipf.as_ref().expect("non-empty table"),
                    &mut rng,
                ) {
                    Some(v) => v,
                    None => out_of_domain(&original, serial),
                }
            }
        };
        let corrupted = if corrupted == original {
            if exact_plan.is_some() {
                // Exact accounting: never skip — substitute a fresh token,
                // which by construction differs from every clean value.
                out_of_domain(&original, serial)
            } else {
                continue; // degenerate corruption; skip rather than lie
            }
        } else {
            corrupted
        };
        dirty.set(cell, corrupted.clone());
        truth.push(CellChange {
            cell,
            from: corrupted,
            to: original,
        });
    }
    InjectionResult { dirty, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soccer::{generate_clean, SoccerConfig};

    fn clean() -> Table {
        generate_clean(&SoccerConfig {
            countries: 3,
            cities_per_country: 2,
            teams_per_city: 2,
            years: 2,
            seed: 1,
        })
    }

    #[test]
    fn injects_about_the_requested_rate() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                ..Default::default()
            },
        );
        let expected = (c.num_cells() as f64 * 0.1) as usize;
        assert!(res.truth.len() <= expected);
        assert!(res.truth.len() >= expected.saturating_sub(3));
    }

    #[test]
    fn truth_diff_restores_the_clean_table() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.2,
                seed: 7,
                ..Default::default()
            },
        );
        let restored = trex_table::apply(&res.dirty, &res.truth);
        assert_eq!(restored, c);
        // And the reported truth matches the actual diff.
        let diff = trex_table::diff(&res.dirty, &c);
        assert_eq!(diff.len(), res.truth.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = clean();
        let cfg = ErrorConfig {
            rate: 0.15,
            seed: 99,
            ..Default::default()
        };
        let a = inject_errors(&c, &cfg);
        let b = inject_errors(&c, &cfg);
        assert_eq!(a.dirty, b.dirty);
    }

    #[test]
    fn column_restriction_respected() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.3,
                columns: vec!["Country".to_string()],
                seed: 5,
                ..Default::default()
            },
        );
        let country = c.schema().id("Country");
        assert!(!res.truth.is_empty());
        assert!(res.truth.iter().all(|ch| ch.cell.attr == country));
    }

    #[test]
    fn null_kind_produces_nulls() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 0, 0, 1, 0],
                seed: 3,
                ..Default::default()
            },
        );
        assert!(!res.truth.is_empty());
        assert!(res.truth.iter().all(|ch| ch.from.is_null()));
    }

    #[test]
    fn out_of_domain_values_are_fresh() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 0, 1, 0, 0],
                seed: 3,
                ..Default::default()
            },
        );
        for ch in &res.truth {
            // The corrupted value must not appear anywhere in the clean table.
            assert!(c.cells_with_values().all(|(_, v)| v != &ch.from));
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.0,
                ..Default::default()
            },
        );
        assert!(res.truth.is_empty());
        assert_eq!(res.dirty, c);
    }

    #[test]
    fn typos_change_values() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 1, 0, 0, 0],
                seed: 11,
                ..Default::default()
            },
        );
        for ch in &res.truth {
            assert_ne!(ch.from, ch.to);
        }
    }

    #[test]
    fn duplicate_kind_copies_existing_column_values() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.1,
                kind_weights: [0, 0, 0, 0, 1],
                duplicate_skew: 1.2,
                seed: 13,
                ..Default::default()
            },
        );
        assert!(!res.truth.is_empty());
        for ch in &res.truth {
            assert_ne!(ch.from, ch.to);
            // The corrupted value is some other value of the same column.
            let col = ch.cell.attr;
            let in_column = (0..c.num_rows()).any(|r| c.value(r, col) == &ch.from);
            assert!(in_column, "{} is not a column value", ch.from);
        }
    }

    #[test]
    fn exact_rates_hit_the_floor_count_exactly() {
        let c = clean();
        let rates = ErrorRates {
            swap: 0.031,
            typo: 0.017,
            out_of_domain: 0.011,
            null: 0.023,
            duplicate: 0.013,
        };
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rates: Some(rates),
                seed: 5,
                ..Default::default()
            },
        );
        let eligible = c.num_cells(); // no nulls in the clean table
        let want = (eligible as f64 * rates.total()).floor() as usize;
        assert_eq!(res.truth.len(), want, "exact accounting must not drift");
        // Every ground-truth cell really differs from the clean table.
        assert_eq!(trex_table::diff(&res.dirty, &c).len(), want);
    }

    #[test]
    fn exact_counts_apportion_by_largest_remainder() {
        let rates = ErrorRates {
            swap: 0.015,
            typo: 0.015,
            out_of_domain: 0.0,
            null: 0.0,
            duplicate: 0.0,
        };
        // 100 eligible: quotas 1.5/1.5, total 3.0 → counts must sum to 3.
        let counts = rates.counts(100);
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert_eq!(counts[0], 2, "first tie in kind order gets the top-up");
        assert_eq!(counts[1], 1);
    }

    #[test]
    fn zero_exact_rates_are_a_no_op() {
        let c = clean();
        let res = inject_errors(
            &c,
            &ErrorConfig {
                rate: 0.9, // must be ignored in exact mode
                rates: Some(ErrorRates::default()),
                seed: 2,
                ..Default::default()
            },
        );
        assert!(res.truth.is_empty());
        assert_eq!(res.dirty, c);
    }
}
