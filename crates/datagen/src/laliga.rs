//! The paper's running example: the La Liga standings table of Figure 2,
//! the four denial constraints of Figure 1, and the paper's Algorithm 1.
//!
//! The table is 6 rows × 6 attributes `(Team, City, Country, League, Year,
//! Place)` — Example 2.4's coalition counting pins these dimensions down
//! exactly (8 "pair" cells + `t5[League]` + 27 remaining = 36 cells). The
//! dirty cells (red in Figure 2a) are `t5[City] = "Capital"` and
//! `t5[Country] = "España"`; the clean table (Figure 2b) has `"Madrid"` and
//! `"Spain"` there.
//!
//! Row contents are reconstructed from every constraint the paper states:
//!
//! * `t5[Team] = t3[Team] = "Real Madrid"` and `t3[City] = "Madrid"`,
//!   `t3[Country] = "Spain"` (the C1&C2 repair route of Example 2.4);
//! * rows `t1, t2, t3, t6` carry the pair `(League, Country) = ("La Liga",
//!   "Spain")` (the C3 route, `i ∈ {1,2,3,6}`);
//! * `t6[Team] = "Real Madrid"` (Example 1.1: a changed `t6[City]` would
//!   contradict `t3` under C1);
//! * `t4` must *not* carry the La Liga/Spain pair (it is not in Example
//!   2.4's index set), so it is a Premier League row;
//! * no two same-league/same-year rows share a `Place` (C4 is violation-free
//!   — its Shapley value is 0 in Figure 1).

use trex_constraints::{parse_dcs, DenialConstraint};
use trex_repair::{FixAction, Rule, RuleRepair};
use trex_table::{CellRef, DType, Table, TableBuilder, Value};

/// Attribute names of the standings schema, in order.
pub const ATTRS: [&str; 6] = ["Team", "City", "Country", "League", "Year", "Place"];

fn base_rows() -> Vec<[&'static str; 4]> {
    // (Team, City, Country, League) per row; Year/Place added below.
    vec![
        ["FC Barcelona", "Barcelona", "Spain", "La Liga"],
        ["Atletico Madrid", "Madrid", "Spain", "La Liga"],
        ["Real Madrid", "Madrid", "Spain", "La Liga"],
        ["Manchester City", "Manchester", "England", "Premier League"],
        ["Real Madrid", "Capital", "España", "La Liga"],
        ["Real Madrid", "Madrid", "Spain", "La Liga"],
    ]
}

const YEARS: [i64; 6] = [2019, 2019, 2019, 2019, 2018, 2017];
const PLACES: [i64; 6] = [1, 2, 3, 1, 1, 1];

fn build(rows: Vec<[&'static str; 4]>) -> Table {
    let mut b = TableBuilder::new()
        .column("Team", DType::Str)
        .column("City", DType::Str)
        .column("Country", DType::Str)
        .column("League", DType::Str)
        .column("Year", DType::Int)
        .column("Place", DType::Int);
    for (i, r) in rows.into_iter().enumerate() {
        b = b.row([
            Value::str(r[0]),
            Value::str(r[1]),
            Value::str(r[2]),
            Value::str(r[3]),
            Value::int(YEARS[i]),
            Value::int(PLACES[i]),
        ]);
    }
    b.build()
}

/// The dirty table `T^d` of Figure 2a.
pub fn dirty_table() -> Table {
    build(base_rows())
}

/// The clean table `T^c` of Figure 2b: `t5[City] → "Madrid"`,
/// `t5[Country] → "Spain"`.
pub fn clean_table() -> Table {
    let mut rows = base_rows();
    rows[4][1] = "Madrid";
    rows[4][2] = "Spain";
    build(rows)
}

/// The four denial constraints of Figure 1.
///
/// * C1: same `Team` ⇒ same `City`
/// * C2: same `City` ⇒ same `Country`
/// * C3: same `League` ⇒ same `Country`
/// * C4: two different teams of the same league cannot finish in the same
///   place in the same year
pub fn constraints() -> Vec<DenialConstraint> {
    parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
         C3: !(t1.League = t2.League & t1.Country != t2.Country)\n\
         C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)\n",
    )
    .expect("the paper's constraints parse")
}

/// The paper's Algorithm 1, as a [`RuleRepair`]:
///
/// 1. C1 violation ⇒ `City ← argmax_c P[City = c]`
/// 2. C2 violation ⇒ `Country ← argmax_c P[Country = c | City = t[City]]`
/// 3. C3 violation ⇒ `Country ← argmax_c P[Country = c]`
/// 4. C4 violation ⇒ `Place ← argmax_p P[Place = p | Team = t[Team]]`
pub fn algorithm1() -> RuleRepair {
    RuleRepair::new(vec![
        Rule::new(
            "C1",
            FixAction::MostCommon {
                attr: "City".to_string(),
            },
        ),
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".to_string(),
                given: "City".to_string(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".to_string(),
            },
        ),
        Rule::new(
            "C4",
            FixAction::MostCommonGiven {
                attr: "Place".to_string(),
                given: "Team".to_string(),
            },
        ),
    ])
}

/// Scale the paper's single-league world to ≈ `rows` standings rows: one
/// country (Spain / La Liga), 20 teams in 10 cities, one season per 20
/// rows (`rows` is rounded up to a whole season). Clean by construction
/// for all four [`constraints`].
///
/// Note the scan-cost caveat: with a single league, C3's equality bucket
/// is the *entire table*, so violation detection is quadratic in `rows` —
/// useful as a worst-case stress shape (that is what the giant-bucket
/// splitter spreads across workers), but keep row counts modest. The
/// multi-league [`crate::soccer`] generator is the linear-scaling
/// counterpart.
pub fn generate_standings(rows: usize, seed: u64) -> Table {
    let config = crate::soccer::SoccerConfig {
        countries: 1,
        cities_per_country: 10,
        teams_per_city: 2,
        years: rows.div_ceil(20).max(1),
        seed,
    };
    crate::soccer::generate_clean(&config)
}

/// The paper's cell of interest: `t5[Country]` (0-based row 4).
pub fn cell_of_interest(table: &Table) -> CellRef {
    CellRef::new(4, table.schema().id("Country"))
}

/// The other repaired cell: `t5[City]` (Example 2.2's cell).
pub fn city_cell(table: &Table) -> CellRef {
    CellRef::new(4, table.schema().id("City"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::{find_violations, is_clean};
    use trex_repair::RepairAlgorithm;

    #[test]
    fn dimensions_match_example_2_4() {
        let t = dirty_table();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.arity(), 6);
        assert_eq!(t.num_cells(), 36);
    }

    #[test]
    fn dirty_cells_are_as_in_figure_2a() {
        let t = dirty_table();
        assert_eq!(t.get(city_cell(&t)), &Value::str("Capital"));
        assert_eq!(t.get(cell_of_interest(&t)), &Value::str("España"));
    }

    #[test]
    fn clean_table_is_figure_2b() {
        let d = dirty_table();
        let c = clean_table();
        let diff = trex_table::diff(&d, &c);
        assert_eq!(diff.len(), 2);
        assert_eq!(c.get(city_cell(&c)), &Value::str("Madrid"));
        assert_eq!(c.get(cell_of_interest(&c)), &Value::str("Spain"));
    }

    #[test]
    fn clean_table_satisfies_all_constraints() {
        let c = clean_table();
        let resolved: Vec<DenialConstraint> = constraints()
            .iter()
            .map(|d| d.resolved(c.schema()).unwrap())
            .collect();
        assert!(is_clean(&resolved, &c));
    }

    #[test]
    fn the_c3_pairs_are_rows_1_2_3_6() {
        // Example 2.4: the (League, Country) = (La Liga, Spain) pairs sit in
        // rows t1, t2, t3, t6 (1-based).
        let t = dirty_table();
        let league = t.schema().id("League");
        let country = t.schema().id("Country");
        let pair_rows: Vec<usize> = (0..6)
            .filter(|&r| {
                t.value(r, league) == &Value::str("La Liga")
                    && t.value(r, country) == &Value::str("Spain")
            })
            .collect();
        assert_eq!(pair_rows, vec![0, 1, 2, 5]);
    }

    #[test]
    fn c4_has_no_violations_in_the_dirty_table() {
        // Figure 1 assigns C4 Shapley value 0; it must not even fire.
        let t = dirty_table();
        let c4 = constraints()[3].resolved(t.schema()).unwrap();
        assert!(find_violations(&c4, &t).is_empty());
    }

    #[test]
    fn algorithm1_repairs_figure_2a_to_figure_2b() {
        let r = algorithm1().repair(&constraints(), &dirty_table());
        assert_eq!(r.clean, clean_table());
        assert_eq!(r.changes.len(), 2);
    }

    #[test]
    fn example_2_2_with_and_without_c1() {
        // Alg|t5[City]({C1,C2,C3}, T^d) = 1 but ({C2,C3}, T^d) = 0.
        let t = dirty_table();
        let alg = algorithm1();
        let cs = constraints();
        let cell = city_cell(&t);
        let madrid = Value::str("Madrid");
        assert!(trex_repair::repairs_cell_to(
            &alg,
            &cs[..3],
            &t,
            cell,
            &madrid
        ));
        assert!(!trex_repair::repairs_cell_to(
            &alg,
            &cs[1..3],
            &t,
            cell,
            &madrid
        ));
    }

    #[test]
    fn repair_happens_iff_c3_or_c1c2_present() {
        // The characteristic function of Example 2.3, enumerated over all
        // 16 constraint subsets.
        let t = dirty_table();
        let alg = algorithm1();
        let cs = constraints();
        let cell = cell_of_interest(&t);
        let spain = Value::str("Spain");
        for mask in 0u32..16 {
            let subset: Vec<DenialConstraint> = (0..4)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| cs[i].clone())
                .collect();
            let expected = (mask >> 2 & 1 == 1) || (mask & 0b11 == 0b11);
            let got = trex_repair::repairs_cell_to(&alg, &subset, &t, cell, &spain);
            assert_eq!(got, expected, "mask {mask:#06b}");
        }
    }
}
