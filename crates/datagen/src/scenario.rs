//! The unified scenario corpus: one config, four schemas, ground truth.
//!
//! Every generator in this crate (the paper's [`crate::laliga`] world, the
//! multi-league [`crate::soccer`] scraper shape, the census
//! [`crate::adult`] domain, and the Zipf-skewed [`crate::sensor`]
//! telemetry) is parameterized here behind one [`ScenarioConfig`]: a
//! schema, a target row count, a seed, and the error model. One call to
//! [`generate`] yields the clean table, the dirtied table with its
//! ground-truth diff, the schema's denial constraints, and the
//! schema-matched Algorithm 1 — everything `exp_stress`, the CLI `datagen`
//! subcommand, and the corpus determinism tests need.
//!
//! Scaling characters differ by schema and are intentional (the composite
//! equality-bucket sizes drive violation-scan cost):
//!
//! * `soccer` and `sensor` scale to millions of rows (bounded or
//!   Zipf-tailed buckets);
//! * `laliga` keeps the paper's single league, so its C3 bucket is the
//!   whole table (quadratic scan — a worst-case stress shape, keep row
//!   counts modest);
//! * `adult` has only six `Education` values, so D1's buckets are
//!   `rows / 6` (quadratic beyond ~50k rows).

use std::fmt;
use std::str::FromStr;

use crate::errors::{inject_errors, ErrorConfig, InjectionResult};
use crate::sensor::SensorConfig;
use crate::soccer::SoccerConfig;
use crate::{adult, laliga, sensor, soccer};
use trex_constraints::DenialConstraint;
use trex_repair::RuleRepair;
use trex_table::Table;

/// The four corpus schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaKind {
    /// The paper's single-league standings world at scale
    /// ([`laliga::generate_standings`]).
    Laliga,
    /// Multi-league standings ([`soccer::generate_clean`]).
    Soccer,
    /// Census rows ([`adult::generate_census`]).
    Adult,
    /// Zipf-skewed sensor readings ([`sensor::generate_readings`]).
    Sensor,
}

impl SchemaKind {
    /// All schemas, in a stable order.
    pub const ALL: [SchemaKind; 4] = [
        SchemaKind::Laliga,
        SchemaKind::Soccer,
        SchemaKind::Adult,
        SchemaKind::Sensor,
    ];

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            SchemaKind::Laliga => "laliga",
            SchemaKind::Soccer => "soccer",
            SchemaKind::Adult => "adult",
            SchemaKind::Sensor => "sensor",
        }
    }
}

impl fmt::Display for SchemaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchemaKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchemaKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown schema {s:?} (known: laliga, soccer, adult, sensor)"))
    }
}

/// Per-schema shape knobs of the [`SchemaKind::Soccer`] generator (the
/// country count is derived from the scenario's row target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoccerKnobs {
    /// Cities per country.
    pub cities_per_country: usize,
    /// Teams per city.
    pub teams_per_city: usize,
    /// Seasons per league.
    pub years: usize,
}

impl Default for SoccerKnobs {
    fn default() -> Self {
        SoccerKnobs {
            cities_per_country: 3,
            teams_per_city: 2,
            years: 2,
        }
    }
}

/// Per-schema shape knobs of the [`SchemaKind::Sensor`] generator (the
/// sensor count is derived from the scenario's row target).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorKnobs {
    /// Average rows per sensor: `sensors = rows / rows_per_sensor`
    /// (at least one).
    pub rows_per_sensor: usize,
    /// Number of distinct sites.
    pub sites: usize,
    /// Zipf exponent of the per-row sensor draw; the knob that grows one
    /// giant equality bucket.
    pub skew: f64,
}

impl Default for SensorKnobs {
    fn default() -> Self {
        SensorKnobs {
            rows_per_sensor: 5,
            sites: 10,
            skew: 1.0,
        }
    }
}

/// The unified scenario configuration: `(schema, rows, seed, error model,
/// per-schema knobs)` pins a corpus member byte-for-byte.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which schema to generate.
    pub schema: SchemaKind,
    /// Target row count. Structured generators round to a whole unit
    /// (season, country); read the actual count off the generated table.
    pub rows: usize,
    /// Seed for both the clean generator and the error injector.
    pub seed: u64,
    /// The error model ([`ErrorConfig::seed`] is overridden by
    /// [`ScenarioConfig::seed`] so one seed pins the whole scenario).
    pub error: ErrorConfig,
    /// Soccer/laliga shape knobs.
    pub soccer: SoccerKnobs,
    /// Sensor shape knobs.
    pub sensor: SensorKnobs,
}

impl ScenarioConfig {
    /// A scenario with default knobs and the default error model.
    pub fn new(schema: SchemaKind, rows: usize, seed: u64) -> Self {
        ScenarioConfig {
            schema,
            rows,
            seed,
            error: ErrorConfig::default(),
            soccer: SoccerKnobs::default(),
            sensor: SensorKnobs::default(),
        }
    }
}

/// A generated corpus member: everything the end-to-end pipeline needs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The clean table (ground truth target).
    pub clean: Table,
    /// The injected-error result: dirty table + ground-truth diff.
    pub injection: InjectionResult,
    /// The schema's denial constraints (unresolved, as the session APIs
    /// expect).
    pub constraints: Vec<DenialConstraint>,
    /// The schema-matched Algorithm 1.
    pub repairer: RuleRepair,
}

impl Scenario {
    /// The dirty table (shorthand for `injection.dirty`).
    pub fn dirty(&self) -> &Table {
        &self.injection.dirty
    }

    /// An FNV-1a fingerprint over the clean CSV bytes, the dirty CSV
    /// bytes, and the rendered ground-truth diff — the byte-identity
    /// invariant the corpus determinism tests pin across runs, processes,
    /// and `TREX_TEST_THREADS` values.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix_bytes(trex_table::write_csv(&self.clean).as_bytes());
        mix_bytes(trex_table::write_csv(&self.injection.dirty).as_bytes());
        for ch in &self.injection.truth {
            mix_bytes(format!("{} {} {}\n", ch.cell, ch.from, ch.to).as_bytes());
        }
        h
    }
}

/// Generate one corpus member from its config. Deterministic: the same
/// `(seed, ScenarioConfig)` yields a byte-identical [`Scenario`].
pub fn generate(config: &ScenarioConfig) -> Scenario {
    let (clean, constraints, repairer) = match config.schema {
        SchemaKind::Laliga => (
            laliga::generate_standings(config.rows, config.seed),
            laliga::constraints(),
            soccer::soccer_algorithm1(),
        ),
        SchemaKind::Soccer => {
            let soccer_cfg = SoccerConfig {
                countries: 1, // overridden by the row target below
                cities_per_country: config.soccer.cities_per_country,
                teams_per_city: config.soccer.teams_per_city,
                years: config.soccer.years,
                seed: config.seed,
            }
            .with_target_rows(config.rows);
            (
                soccer::generate_clean(&soccer_cfg),
                soccer::soccer_constraints(),
                soccer::soccer_algorithm1(),
            )
        }
        SchemaKind::Adult => (
            adult::generate_census(&adult::CensusConfig {
                rows: config.rows,
                seed: config.seed,
            }),
            adult::census_constraints(),
            adult::census_algorithm1(),
        ),
        SchemaKind::Sensor => (
            sensor::generate_readings(&SensorConfig {
                rows: config.rows,
                sensors: (config.rows / config.sensor.rows_per_sensor.max(1)).max(1),
                sites: config.sensor.sites,
                skew: config.sensor.skew,
                seed: config.seed,
            }),
            sensor::sensor_constraints(),
            sensor::sensor_algorithm1(),
        ),
    };
    let error = ErrorConfig {
        seed: config.seed,
        ..config.error.clone()
    };
    let injection = inject_errors(&clean, &error);
    Scenario {
        clean,
        injection,
        constraints,
        repairer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::is_clean_par;
    use trex_repair::RepairAlgorithm;

    fn cfg(schema: SchemaKind) -> ScenarioConfig {
        let mut c = ScenarioConfig::new(schema, 600, 42);
        c.error.rate = 0.01;
        c
    }

    #[test]
    fn every_schema_generates_a_clean_table_and_a_real_diff() {
        for schema in SchemaKind::ALL {
            let s = generate(&cfg(schema));
            assert!(s.clean.num_rows() >= 500, "{schema}: too few rows");
            let resolved: Vec<DenialConstraint> = s
                .constraints
                .iter()
                .map(|d| d.resolved(s.clean.schema()).unwrap())
                .collect();
            assert!(
                is_clean_par(&resolved, &s.clean, 2),
                "{schema}: clean table is dirty"
            );
            assert!(
                !s.injection.truth.is_empty(),
                "{schema}: no errors injected"
            );
            assert_eq!(
                trex_table::apply(s.dirty(), &s.injection.truth),
                s.clean,
                "{schema}: truth diff must restore the clean table"
            );
        }
    }

    #[test]
    fn same_config_is_byte_identical() {
        for schema in SchemaKind::ALL {
            let a = generate(&cfg(schema));
            let b = generate(&cfg(schema));
            assert_eq!(a.clean, b.clean, "{schema}");
            assert_eq!(a.injection, b.injection, "{schema}");
            assert_eq!(a.fingerprint(), b.fingerprint(), "{schema}");
        }
    }

    #[test]
    fn seed_changes_the_scenario() {
        for schema in SchemaKind::ALL {
            let a = generate(&cfg(schema));
            let mut other = cfg(schema);
            other.seed = 43;
            let b = generate(&other);
            assert_ne!(a.fingerprint(), b.fingerprint(), "{schema}");
        }
    }

    #[test]
    fn schema_names_round_trip() {
        for schema in SchemaKind::ALL {
            assert_eq!(schema.name().parse::<SchemaKind>().unwrap(), schema);
        }
        assert!("nope".parse::<SchemaKind>().is_err());
    }

    #[test]
    fn repairer_fixes_a_country_error_scenario() {
        // The scenario's own Algorithm 1 repairs a column-targeted
        // out-of-domain injection back to the clean table.
        let mut c = ScenarioConfig::new(SchemaKind::Soccer, 120, 7);
        c.error = ErrorConfig {
            rate: 0.02,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            ..Default::default()
        };
        let s = generate(&c);
        assert!(!s.injection.truth.is_empty());
        let r = s.repairer.repair(&s.constraints, s.dirty());
        assert_eq!(r.clean, s.clean);
    }

    #[test]
    fn soccer_and_sensor_hit_the_row_target_closely() {
        for schema in [SchemaKind::Soccer, SchemaKind::Sensor, SchemaKind::Adult] {
            let s = generate(&ScenarioConfig::new(schema, 5000, 1));
            let rows = s.clean.num_rows();
            assert!(
                (4800..=5200).contains(&rows),
                "{schema}: {rows} rows is far from the 5000 target"
            );
        }
    }
}
