//! Synthetic soccer-standings generator.
//!
//! The demo scrapes league standings from Wikipedia (§4); this generator
//! reproduces that workload shape at arbitrary scale: a world of countries,
//! each with one league and several cities, each city with a few teams;
//! rows are `(Team, City, Country, League, Year, Place)` standings entries.
//! Generated tables satisfy the paper's four constraints by construction
//! (the error injector then dirties them while keeping ground truth).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_constraints::DenialConstraint;
use trex_table::{DType, Table, TableBuilder, Value};

/// Configuration of the standings generator.
#[derive(Debug, Clone)]
pub struct SoccerConfig {
    /// Number of countries (each has one league).
    pub countries: usize,
    /// Cities per country.
    pub cities_per_country: usize,
    /// Teams per city.
    pub teams_per_city: usize,
    /// Seasons (years) generated per league.
    pub years: usize,
    /// RNG seed (shuffles which teams appear in which season).
    pub seed: u64,
}

impl Default for SoccerConfig {
    fn default() -> Self {
        SoccerConfig {
            countries: 3,
            cities_per_country: 3,
            teams_per_city: 2,
            years: 2,
            seed: 0,
        }
    }
}

impl SoccerConfig {
    /// Derive the country count that brings the generated table to
    /// ≈ `target_rows` rows with this config's per-country shape
    /// (`cities_per_country × teams_per_city × years` rows per country,
    /// at least one country). Per-country bucket sizes stay constant, so
    /// violation detection scales linearly in the target — the
    /// million-row-friendly counterpart to
    /// [`crate::laliga::generate_standings`].
    pub fn with_target_rows(mut self, target_rows: usize) -> Self {
        let per_country = self.cities_per_country * self.teams_per_city * self.years;
        assert!(per_country > 0, "per-country shape must be non-empty");
        self.countries = (target_rows / per_country).max(1);
        self
    }
}

/// Country names used by the generator, cycled with numeric suffixes when
/// more are requested.
const COUNTRY_POOL: [&str; 8] = [
    "Spain",
    "England",
    "Italy",
    "Germany",
    "France",
    "Portugal",
    "Netherlands",
    "Argentina",
];
const LEAGUE_POOL: [&str; 8] = [
    "La Liga",
    "Premier League",
    "Serie A",
    "Bundesliga",
    "Ligue 1",
    "Primeira Liga",
    "Eredivisie",
    "Primera Division",
];

fn country_name(i: usize) -> String {
    let base = COUNTRY_POOL[i % COUNTRY_POOL.len()];
    if i < COUNTRY_POOL.len() {
        base.to_string()
    } else {
        format!("{base} {}", i / COUNTRY_POOL.len() + 1)
    }
}

fn league_name(i: usize) -> String {
    let base = LEAGUE_POOL[i % LEAGUE_POOL.len()];
    if i < LEAGUE_POOL.len() {
        base.to_string()
    } else {
        format!("{base} {}", i / LEAGUE_POOL.len() + 1)
    }
}

/// Generate a clean standings table.
///
/// Every (league, year) season lists all of the country's teams with
/// distinct places 1..n in a seed-shuffled order, so C4 ("no two teams of a
/// league share a place in a year") holds; `Team → City`, `City → Country`,
/// and `League → Country` hold by construction.
pub fn generate_clean(config: &SoccerConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TableBuilder::new()
        .column("Team", DType::Str)
        .column("City", DType::Str)
        .column("Country", DType::Str)
        .column("League", DType::Str)
        .column("Year", DType::Int)
        .column("Place", DType::Int);

    for c in 0..config.countries {
        let country = country_name(c);
        let league = league_name(c);
        // The country's teams with their home cities.
        let mut teams: Vec<(String, String)> = Vec::new();
        for ci in 0..config.cities_per_country {
            let city = format!("{country} City {}", ci + 1);
            for t in 0..config.teams_per_city {
                teams.push((format!("{city} FC {}", t + 1), city.clone()));
            }
        }
        for y in 0..config.years {
            let year = 2000 + y as i64;
            // Shuffle standings for this season.
            let mut order: Vec<usize> = (0..teams.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for (place, &ti) in order.iter().enumerate() {
                let (team, city) = &teams[ti];
                b = b.row([
                    Value::str(team.clone()),
                    Value::str(city.clone()),
                    Value::str(country.clone()),
                    Value::str(league.clone()),
                    Value::int(year),
                    Value::int(place as i64 + 1),
                ]);
            }
        }
    }
    b.build()
}

/// The paper's four constraints (same shapes as Figure 1), which generated
/// tables satisfy by construction.
pub fn soccer_constraints() -> Vec<DenialConstraint> {
    crate::laliga::constraints()
}

/// Algorithm 1 adapted to multi-country tables.
///
/// The paper's literal step 3 repairs a C3 violation with the *globally*
/// most common country — fine for its single-country-dominated example
/// table, catastrophic on a balanced multi-league table (a single error
/// would drag a whole league to another country's name). The natural
/// generalization conditions each fix on the violated constraint's join
/// attribute:
///
/// 1. C1 ⇒ `City ← argmax P[City | Team]`
/// 2. C2 ⇒ `Country ← argmax P[Country | City]`
/// 3. C3 ⇒ `Country ← argmax P[Country | League]`
/// 4. C4 ⇒ `Place ← argmax P[Place | Team]`
pub fn soccer_algorithm1() -> trex_repair::RuleRepair {
    use trex_repair::{FixAction, Rule, RuleRepair};
    RuleRepair::new(vec![
        Rule::new(
            "C1",
            FixAction::MostCommonGiven {
                attr: "City".to_string(),
                given: "Team".to_string(),
            },
        ),
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".to_string(),
                given: "City".to_string(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommonGiven {
                attr: "Country".to_string(),
                given: "League".to_string(),
            },
        ),
        Rule::new(
            "C4",
            FixAction::MostCommonGiven {
                attr: "Place".to_string(),
                given: "Team".to_string(),
            },
        ),
    ])
    .with_name("algorithm1-conditioned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::is_clean;

    #[test]
    fn generated_table_has_expected_shape() {
        let cfg = SoccerConfig::default();
        let t = generate_clean(&cfg);
        let rows = cfg.countries * cfg.cities_per_country * cfg.teams_per_city * cfg.years;
        assert_eq!(t.num_rows(), rows);
        assert_eq!(t.arity(), 6);
    }

    #[test]
    fn generated_table_satisfies_all_constraints() {
        let t = generate_clean(&SoccerConfig {
            countries: 4,
            cities_per_country: 3,
            teams_per_city: 2,
            years: 3,
            seed: 9,
        });
        let dcs: Vec<DenialConstraint> = soccer_constraints()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        assert!(is_clean(&dcs, &t));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SoccerConfig {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate_clean(&cfg), generate_clean(&cfg));
        let other = generate_clean(&SoccerConfig {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(generate_clean(&cfg), other);
    }

    #[test]
    fn many_countries_get_distinct_names() {
        let t = generate_clean(&SoccerConfig {
            countries: 10,
            cities_per_country: 1,
            teams_per_city: 1,
            years: 1,
            seed: 0,
        });
        let country = t.schema().id("Country");
        let mut names: Vec<String> = (0..t.num_rows())
            .map(|r| t.value(r, country).as_str().unwrap().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn conditioned_algorithm_repairs_an_injected_country_error() {
        use trex_repair::RepairAlgorithm;
        let clean = generate_clean(&SoccerConfig {
            countries: 3,
            cities_per_country: 3,
            teams_per_city: 2,
            years: 1,
            seed: 31,
        });
        let injected = crate::errors::inject_errors(
            &clean,
            &crate::errors::ErrorConfig {
                rate: 0.02,
                kind_weights: [0, 0, 1, 0, 0],
                columns: vec!["Country".to_string()],
                seed: 77,
                ..Default::default()
            },
        );
        let r = soccer_algorithm1().repair(&soccer_constraints(), &injected.dirty);
        assert_eq!(r.clean, clean, "exactly the injected error is undone");
    }

    #[test]
    fn places_within_a_season_are_distinct() {
        let t = generate_clean(&SoccerConfig::default());
        let league = t.schema().id("League");
        let year = t.schema().id("Year");
        let place = t.schema().id("Place");
        for i in 0..t.num_rows() {
            for j in (i + 1)..t.num_rows() {
                if t.value(i, league) == t.value(j, league) && t.value(i, year) == t.value(j, year)
                {
                    assert_ne!(t.value(i, place), t.value(j, place));
                }
            }
        }
    }
}
