//! A census-shaped second domain.
//!
//! HoloClean's own evaluation uses census-style datasets (Adult/Hospital);
//! to show the explanation pipeline generalizes beyond the soccer domain we
//! generate a census-like table `(Education, EducationYears, MaritalStatus,
//! Relationship, AgeBand, Country)` whose columns are linked by functional
//! dependencies and realistic correlations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_table::{DType, Table, TableBuilder, Value};

/// Configuration for the census generator.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig { rows: 100, seed: 0 }
    }
}

/// `(Education, EducationYears)` pairs — the FD `Education →
/// EducationYears` holds by construction.
const EDUCATION: [(&str, i64); 6] = [
    ("HS-grad", 9),
    ("Some-college", 10),
    ("Bachelors", 13),
    ("Masters", 14),
    ("Doctorate", 16),
    ("11th", 7),
];

/// `(MaritalStatus, Relationship)` pairs — `MaritalStatus → Relationship`
/// in this simplified world.
const MARITAL: [(&str, &str); 4] = [
    ("Married", "Husband"),
    ("Never-married", "Not-in-family"),
    ("Divorced", "Unmarried"),
    ("Widowed", "Unmarried"),
];

const AGE_BANDS: [&str; 4] = ["18-30", "31-45", "46-60", "61+"];
const COUNTRIES: [&str; 4] = ["United-States", "Mexico", "Germany", "India"];

/// Generate a clean census-like table.
pub fn generate_census(config: &CensusConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TableBuilder::new()
        .column("Education", DType::Str)
        .column("EducationYears", DType::Int)
        .column("MaritalStatus", DType::Str)
        .column("Relationship", DType::Str)
        .column("AgeBand", DType::Str)
        .column("Country", DType::Str);
    for _ in 0..config.rows {
        let (edu, years) = EDUCATION[rng.gen_range(0..EDUCATION.len())];
        let (marital, rel) = MARITAL[rng.gen_range(0..MARITAL.len())];
        // Age correlates with education (doctorates skew older).
        let age_idx = match edu {
            "Doctorate" | "Masters" => rng.gen_range(1..AGE_BANDS.len()),
            "11th" => rng.gen_range(0..2),
            _ => rng.gen_range(0..AGE_BANDS.len()),
        };
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        b = b.row([
            Value::str(edu),
            Value::int(years),
            Value::str(marital),
            Value::str(rel),
            Value::str(AGE_BANDS[age_idx]),
            Value::str(country),
        ]);
    }
    b.build()
}

/// The census constraints: two FDs plus a sanity range rule.
///
/// * D1: `Education → EducationYears`
/// * D2: `MaritalStatus → Relationship`
/// * D3: education years are positive (unary)
pub fn census_constraints() -> Vec<DenialConstraint> {
    parse_dcs(
        "D1: !(t1.Education = t2.Education & t1.EducationYears != t2.EducationYears)\n\
         D2: !(t1.MaritalStatus = t2.MaritalStatus & t1.Relationship != t2.Relationship)\n\
         D3: !(t1.EducationYears < 1)\n",
    )
    .expect("census constraints parse")
}

/// Algorithm 1 for the census domain, conditioned like
/// [`crate::soccer::soccer_algorithm1`]:
///
/// 1. D1 ⇒ `EducationYears ← argmax P[EducationYears | Education]`
/// 2. D2 ⇒ `Relationship ← argmax P[Relationship | MaritalStatus]`
/// 3. D3 ⇒ `EducationYears ← argmax P[EducationYears | Education]`
pub fn census_algorithm1() -> trex_repair::RuleRepair {
    use trex_repair::{FixAction, Rule, RuleRepair};
    RuleRepair::new(vec![
        Rule::new(
            "D1",
            FixAction::MostCommonGiven {
                attr: "EducationYears".to_string(),
                given: "Education".to_string(),
            },
        ),
        Rule::new(
            "D2",
            FixAction::MostCommonGiven {
                attr: "Relationship".to_string(),
                given: "MaritalStatus".to_string(),
            },
        ),
        Rule::new(
            "D3",
            FixAction::MostCommonGiven {
                attr: "EducationYears".to_string(),
                given: "Education".to_string(),
            },
        ),
    ])
    .with_name("census-algorithm1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::is_clean;

    #[test]
    fn generated_census_is_clean() {
        let t = generate_census(&CensusConfig { rows: 200, seed: 4 });
        assert_eq!(t.num_rows(), 200);
        let dcs: Vec<DenialConstraint> = census_constraints()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        assert!(is_clean(&dcs, &t));
    }

    #[test]
    fn fds_hold_by_construction() {
        let t = generate_census(&CensusConfig::default());
        use trex_constraints::FunctionalDependency;
        assert!(FunctionalDependency::new(["Education"], "EducationYears").holds(&t));
        assert!(FunctionalDependency::new(["MaritalStatus"], "Relationship").holds(&t));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CensusConfig { rows: 50, seed: 8 };
        assert_eq!(generate_census(&cfg), generate_census(&cfg));
    }

    #[test]
    fn values_come_from_the_declared_domains() {
        let t = generate_census(&CensusConfig::default());
        let edu = t.schema().id("Education");
        for r in 0..t.num_rows() {
            let v = t.value(r, edu).as_str().unwrap().to_string();
            assert!(EDUCATION.iter().any(|(e, _)| *e == v), "{v}");
        }
    }
}
