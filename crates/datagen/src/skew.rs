//! Zipfian (power-law) rank sampling for skewed key distributions.
//!
//! Real scraped tables are not uniform: a handful of hot keys (popular
//! teams, chatty sensors) own a disproportionate share of the rows, which
//! is exactly what stresses the equality-bucket splitter behind
//! `find_violations_par` — one giant bucket instead of many small ones.
//! [`ZipfSampler`] draws ranks `0..n` with `P(rank = k) ∝ 1/(k+1)^s`,
//! deterministically per RNG stream, via a precomputed CDF and binary
//! search (`O(n)` setup, `O(log n)` per draw).

use rand::RngCore;

/// A deterministic sampler over ranks `0..n` with Zipfian weights
/// `(k+1)^{-s}`. `s = 0` degenerates to the uniform distribution; larger
/// `s` concentrates mass on the low ranks (rank 0 is always the hottest).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0, got {s}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        // Guard against floating-point rounding leaving the last entry a
        // hair under 1.0, which would make a draw of u ≈ 1.0 fall off the
        // end of the binary search.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// The number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The probability mass of `rank`.
    pub fn share(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draw one rank. Deterministic per RNG stream (one `next_u64` call
    /// per draw).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // 53 uniform mantissa bits in [0, 1), the same construction the
        // rand shim's `gen_bool` uses.
        let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        // First rank whose CDF reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(sampler: &ZipfSampler, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; sampler.num_ranks()];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn deterministic_per_seed() {
        let z = ZipfSampler::new(100, 1.1);
        assert_eq!(histogram(&z, 1000, 7), histogram(&z, 1000, 7));
        assert_ne!(histogram(&z, 1000, 7), histogram(&z, 1000, 8));
    }

    #[test]
    fn shares_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(50, 1.5);
        let total: f64 = (0..50).map(|k| z.share(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.share(k) <= z.share(k - 1), "share must decay with rank");
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.share(k) - 0.1).abs() < 1e-9);
        }
        // Empirically roughly flat too.
        let counts = histogram(&z, 20_000, 3);
        for &c in &counts {
            assert!(
                (1500..=2500).contains(&c),
                "uniform draw count {c} out of band"
            );
        }
    }

    #[test]
    fn high_exponent_concentrates_on_rank_zero() {
        let z = ZipfSampler::new(1000, 1.2);
        let counts = histogram(&z, 10_000, 11);
        // Rank 0's analytic share dominates; the empirical count must too.
        assert!(z.share(0) > 0.15);
        assert!(counts[0] > counts[999] * 10);
        assert!(counts[0] as f64 > 10_000.0 * z.share(0) * 0.7);
    }

    #[test]
    fn every_rank_is_reachable() {
        let z = ZipfSampler::new(4, 1.0);
        let counts = histogram(&z, 5000, 5);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }
}
