//! # trex-datagen
//!
//! Workloads for the T-REx reproduction.
//!
//! * [`laliga`] — the paper's running example, byte-for-byte: the Figure 2
//!   dirty/clean tables, the Figure 1 constraints, and Algorithm 1. This is
//!   the oracle dataset every paper-example test asserts against.
//! * [`soccer`] — a synthetic standings generator reproducing the demo's
//!   Wikipedia-scrape workload shape at arbitrary scale (clean by
//!   construction).
//! * [`errors`] — reproducible error injection with ground truth, standing
//!   in for the demo's "errors will be manually added" protocol (§4).
//! * [`adult`] — a census-shaped second domain (HoloClean's home turf) to
//!   show the pipeline generalizes.

#![warn(missing_docs)]

pub mod adult;
pub mod errors;
pub mod laliga;
pub mod soccer;

pub use adult::{census_constraints, generate_census, CensusConfig};
pub use errors::{inject_errors, ErrorConfig, ErrorKind, InjectionResult};
pub use soccer::{generate_clean, soccer_algorithm1, soccer_constraints, SoccerConfig};
