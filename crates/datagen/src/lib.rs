//! # trex-datagen
//!
//! Workloads for the T-REx reproduction.
//!
//! * [`laliga`] — the paper's running example, byte-for-byte: the Figure 2
//!   dirty/clean tables, the Figure 1 constraints, and Algorithm 1. This is
//!   the oracle dataset every paper-example test asserts against.
//! * [`soccer`] — a synthetic standings generator reproducing the demo's
//!   Wikipedia-scrape workload shape at arbitrary scale (clean by
//!   construction).
//! * [`errors`] — reproducible error injection with ground truth, standing
//!   in for the demo's "errors will be manually added" protocol (§4).
//! * [`adult`] — a census-shaped second domain (HoloClean's home turf) to
//!   show the pipeline generalizes.
//! * [`sensor`] — Zipf-skewed sensor telemetry: the hot-key workload that
//!   stresses the equality-bucket splitter, plus unary range constraints.
//! * [`skew`] — the deterministic Zipfian rank sampler behind the sensor
//!   keys and the duplicate-donor error kind.
//! * [`scenario`] — the unified corpus: one [`ScenarioConfig`] spanning
//!   all four schemas with ground truth, constraints, and the
//!   schema-matched repairer (what `exp_stress` and `trex datagen` run).

#![warn(missing_docs)]

pub mod adult;
pub mod errors;
pub mod laliga;
pub mod scenario;
pub mod sensor;
pub mod skew;
pub mod soccer;

pub use adult::{census_algorithm1, census_constraints, generate_census, CensusConfig};
pub use errors::{inject_errors, ErrorConfig, ErrorKind, ErrorRates, InjectionResult};
pub use scenario::{generate as generate_scenario, Scenario, ScenarioConfig, SchemaKind};
pub use sensor::{generate_readings, sensor_algorithm1, sensor_constraints, SensorConfig};
pub use skew::ZipfSampler;
pub use soccer::{generate_clean, soccer_algorithm1, soccer_constraints, SoccerConfig};
