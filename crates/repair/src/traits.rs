//! The black-box repair interface.
//!
//! T-REx "treats the repair algorithm as a black box and only queries it"
//! (§1): the entire explanation machinery sees a repair algorithm only
//! through two operations —
//!
//! * `Alg(C, T^d) = T^c` — run a full repair ([`RepairAlgorithm::repair`]);
//! * `Alg|t[A](C, T^d) ∈ {0, 1}` — did the repair set cell `t[A]` to a given
//!   target value? ([`repairs_cell_to`], §2.1's binary view).
//!
//! Shapley computation evaluates the binary view on thousands of coalition
//! variants of `(C, T^d)`; [`CachedOracle`] memoizes those queries keyed by
//! `(constraints, table, cell, target)` fingerprints so that coalitions
//! revisited by different permutation samples are computed once (ablation
//! A1 of DESIGN.md measures the effect). [`ShardedOracle`] is the
//! thread-safe variant behind the parallel sampling engine: the same
//! memoization split over mutex-guarded shards so concurrent permutation
//! workers share hits without serializing on one lock, with single-flight
//! dedup of concurrent cold keys (one computation, all waiters share the
//! answer) and a batching layer ([`ShardedOracle::query_keyed_batch`]) that
//! forms bounded, cost-ordered batches for an optional
//! [`crate::backend::OracleBackend`].

use crate::backend::{CoalitionQuery, OracleBackend};
use std::cell::RefCell;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use trex_constraints::DenialConstraint;
use trex_table::{CellChange, CellRef, Table, Value};

/// The output of one repair run: the clean table and the cell-level diff.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The repaired table `T^c`.
    pub clean: Table,
    /// The repaired cells (`dirty → clean` diff), in cell order.
    pub changes: Vec<CellChange>,
}

impl RepairResult {
    /// Build a result from the dirty table and its repaired copy, computing
    /// the diff.
    pub fn from_tables(dirty: &Table, clean: Table) -> Self {
        let changes = trex_table::diff(dirty, &clean);
        RepairResult { clean, changes }
    }

    /// The change applied to `cell`, if any.
    pub fn change_at(&self, cell: CellRef) -> Option<&CellChange> {
        self.changes.iter().find(|c| c.cell == cell)
    }
}

/// A table-repair algorithm, as the paper's `Alg : (C, T^d) → T^c`.
///
/// Implementations must be deterministic functions of their inputs
/// (randomized repairers should fix their seed per instance): Shapley values
/// of a non-deterministic characteristic function are not well defined, and
/// the memoizing oracle assumes query stability.
///
/// Implementations never mutate the input and never add/remove rows — the
/// paper's repair model is cell updates only.
///
/// `Send + Sync` are supertraits: the parallel Shapley engine evaluates
/// coalition games from several worker threads that share one
/// `&dyn RepairAlgorithm`, and a long-lived `trex` session (the server's
/// in particular) owns its boxed engine while request threads borrow it.
/// Repairers are pure functions of their inputs, so this costs nothing for
/// honest implementations; per-query interior mutability (counters, caches)
/// must use atomics or locks (see [`PanicGuard`], [`ShardedOracle`]).
pub trait RepairAlgorithm: Send + Sync {
    /// A short identifier for reports and experiment output.
    fn name(&self) -> &str;

    /// Run a full repair of `dirty` under the constraint set `dcs`.
    ///
    /// `dcs` may be unresolved; implementations resolve names against
    /// `dirty.schema()` themselves. Constraints mentioning attributes that
    /// do not exist in the schema are a caller bug and may panic.
    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult;

    /// Apply the shared execution configuration
    /// ([`trex_shapley::ExecConfig`]) to this engine at construction time.
    ///
    /// The default ignores the config — most engines have no execution
    /// knobs. Engines that parallelize their violation scans
    /// ([`crate::RuleRepair`], [`crate::HoloCleanStyle`],
    /// [`crate::HolisticRepair`]) override it to take the thread count;
    /// every engine ignores the config's schedule, oracle capacity, and
    /// seed, which configure the explanation layers instead. Builder-style
    /// (consumes and returns `self`), so it is only callable on concrete
    /// engines, not `dyn RepairAlgorithm`.
    fn with_exec(self, _cfg: &trex_shapley::ExecConfig) -> Self
    where
        Self: Sized,
    {
        self
    }
}

/// Boxed algorithms are algorithms: forwards `name`/`repair` to the boxed
/// engine so `Box<dyn RepairAlgorithm>` satisfies generic `RepairAlgorithm`
/// bounds (e.g. [`crate::MockRemoteRepair`] wraps a boxed engine).
/// `with_exec` keeps its identity default — configure the engine *before*
/// boxing it.
impl<A: RepairAlgorithm + ?Sized> RepairAlgorithm for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        (**self).repair(dcs, dirty)
    }
}

/// The binary view `Alg|t[A](C, T^d)` of §2.1: `true` iff running the repair
/// changes `cell` from its (different) dirty value to exactly `target`.
///
/// When the dirty value already equals `target`, the answer is `false` — the
/// paper's `1` signals "the value *is repaired* to `t^c[A]`", which requires
/// a change.
pub fn repairs_cell_to(
    alg: &dyn RepairAlgorithm,
    dcs: &[DenialConstraint],
    dirty: &Table,
    cell: CellRef,
    target: &Value,
) -> bool {
    if dirty.get(cell) == target {
        return false;
    }
    let result = alg.repair(dcs, dirty);
    result.clean.get(cell) == target
}

/// Order-sensitive hash of a DC list (by display form). Part of the oracle
/// cache key; public so games can pre-hash per-DC components and assemble
/// subset keys without cloning the subset (see [`ShardedOracle::query_keyed`]).
pub fn hash_dcs(dcs: &[DenialConstraint]) -> u64 {
    let mut h = DefaultHasher::new();
    dcs.len().hash(&mut h);
    for dc in dcs {
        dc.to_string().hash(&mut h);
    }
    h.finish()
}

/// Hash of a single value, as used in the oracle cache key.
pub fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Cache statistics of a [`CachedOracle`] / [`ShardedOracle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that ran the underlying repair.
    pub misses: usize,
    /// Entries evicted to stay under the capacity bound (always 0 for
    /// [`CachedOracle`], which stops inserting instead of evicting, and for
    /// a [`ShardedOracle`] that never exceeded its capacity).
    pub evictions: usize,
}

impl OracleStats {
    /// Total queries.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of queries served from cache (0 when no queries).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A memoizing wrapper around the binary repair oracle.
///
/// Keys are `(dcs, table, cell, target)` fingerprints. The cache is bounded:
/// once `capacity` entries are stored, further distinct queries are computed
/// but not inserted (coalition spaces are enormous; an unbounded cache could
/// eat the heap during long sampling runs).
pub struct CachedOracle<'a> {
    alg: &'a dyn RepairAlgorithm,
    capacity: usize,
    cache: RefCell<HashMap<(u64, u64, CellRef, u64), bool>>,
    stats: RefCell<OracleStats>,
}

impl<'a> CachedOracle<'a> {
    /// Default cache capacity (entries).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Wrap `alg` with the default capacity.
    pub fn new(alg: &'a dyn RepairAlgorithm) -> Self {
        Self::with_capacity(alg, Self::DEFAULT_CAPACITY)
    }

    /// Wrap `alg` with an explicit cache capacity.
    pub fn with_capacity(alg: &'a dyn RepairAlgorithm, capacity: usize) -> Self {
        CachedOracle {
            alg,
            capacity,
            cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(OracleStats::default()),
        }
    }

    /// The underlying algorithm.
    pub fn algorithm(&self) -> &dyn RepairAlgorithm {
        self.alg
    }

    /// Memoized `Alg|cell(dcs, table) == target` query.
    pub fn repairs_cell_to(
        &self,
        dcs: &[DenialConstraint],
        table: &Table,
        cell: CellRef,
        target: &Value,
    ) -> bool {
        let key = (hash_dcs(dcs), table.fingerprint(), cell, hash_value(target));
        if let Some(hit) = self.cache.borrow().get(&key) {
            self.stats.borrow_mut().hits += 1;
            return *hit;
        }
        let answer = repairs_cell_to(self.alg, dcs, table, cell, target);
        self.stats.borrow_mut().misses += 1;
        let mut cache = self.cache.borrow_mut();
        if cache.len() < self.capacity {
            if let Entry::Vacant(e) = cache.entry(key) {
                e.insert(answer);
            }
        }
        answer
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> OracleStats {
        *self.stats.borrow()
    }

    /// Drop all cached entries and reset statistics.
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
        *self.stats.borrow_mut() = OracleStats::default();
    }
}

/// The memoization key: `(dcs, table, cell, target)` fingerprints.
///
/// Callers with a cheaper way to fingerprint a query than hashing a
/// materialized table — the Shapley games fingerprint coalitions as packed
/// dictionary-code vectors — build one of these directly and go through
/// [`ShardedOracle::query_keyed`]; the key layout is theirs to define as
/// long as equal keys mean equal queries.
pub type OracleKey = (u64, u64, CellRef, u64);

/// One cached answer plus its second-chance reference bit.
struct CacheSlot {
    answer: bool,
    referenced: bool,
}

/// Wait/notify cell of one in-flight oracle computation — the single-flight
/// rendezvous. The leader computes and [`Flight::resolve`]s; every other
/// thread wanting the same key [`Flight::wait`]s and shares the answer.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader installed this answer.
    Done(bool),
    /// The leader unwound without answering; a waiter must take over.
    Poisoned,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Publish the leader's answer and wake every waiter.
    fn resolve(&self, answer: bool) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        *state = FlightState::Done(answer);
        self.cv.notify_all();
    }

    /// Mark the flight failed (leader unwound) and wake every waiter —
    /// unless it already resolved.
    fn poison(&self) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Poisoned;
            self.cv.notify_all();
        }
    }

    /// Block until the flight resolves. `None` means the leader failed and
    /// the caller must retake the key.
    fn wait(&self) -> Option<bool> {
        let mut state = self.state.lock().expect("flight lock poisoned");
        loop {
            match *state {
                FlightState::Pending => {
                    state = self.cv.wait(state).expect("flight lock poisoned");
                }
                FlightState::Done(answer) => return Some(answer),
                FlightState::Poisoned => return None,
            }
        }
    }
}

/// The shareable state of a [`ShardedOracle`]: the sharded memo maps, the
/// single-flight registries, and the hit/miss/eviction/dispatch counters —
/// everything except the algorithm and backend borrows.
///
/// A `ShardedOracle` built through [`ShardedOracle::new`] (or the other
/// capacity constructors) owns a private cache, exactly as before. Long-lived
/// owners — a `trex` `Session` serving many explanation requests, or the
/// `trex-server` multiplexing concurrent clients — instead build one
/// `Arc<OracleCache>` up front and hand clones to
/// every per-request oracle via [`ShardedOracle::with_shared_cache`], so all
/// requests against the same (table, constraints) pair warm one bounded
/// cache. Sharing is safe because the games' [`OracleKey`]s fingerprint the
/// full query (constraint set, coalition table, cell, target): two requests
/// can only collide on a key when they ask the same question, and the answer
/// is then identical by the oracle's determinism contract.
///
/// Capacity distribution, eviction policy, and the statistics contract are
/// documented on [`ShardedOracle`]; they are properties of this struct and
/// hold for every oracle sharing it.
pub struct OracleCache {
    /// Per-shard capacity quotas; index-aligned with `shards` and summing
    /// to the constructor's total capacity.
    shard_caps: Vec<usize>,
    shards: Vec<Mutex<OracleShard>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    batches: AtomicUsize,
    batched_queries: AtomicUsize,
}

impl OracleCache {
    /// A cache with the default capacity and shard count
    /// ([`ShardedOracle::DEFAULT_CAPACITY`], [`ShardedOracle::DEFAULT_SHARDS`]).
    pub fn new() -> Self {
        Self::with_config(
            ShardedOracle::DEFAULT_CAPACITY,
            ShardedOracle::DEFAULT_SHARDS,
        )
    }

    /// A cache with an explicit total capacity (0 disables caching) and the
    /// default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_config(capacity, ShardedOracle::DEFAULT_SHARDS)
    }

    /// A cache with an explicit total capacity and shard count; see
    /// [`ShardedOracle::with_config`] for the quota distribution and the
    /// shard-count guidance.
    ///
    /// # Panics
    /// If `shards` is 0 (there would be no shard to hold an entry).
    pub fn with_config(capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        // A tiny capacity takes fewer shards than requested: every shard
        // must hold at least one entry, or the keys hashing to a quota-0
        // shard would recompute on every query forever — far worse than a
        // true N-entry cache. (Capacity 0 means caching is off; the shard
        // count is then irrelevant.)
        let shards = if capacity > 0 {
            shards.min(capacity)
        } else {
            shards
        };
        // Distribute the capacity exactly: quotas sum to `capacity`, so the
        // bound on total live entries is the number the caller asked for.
        let base = capacity / shards;
        let extra = capacity % shards;
        let shard_caps = (0..shards).map(|i| base + usize::from(i < extra)).collect();
        OracleCache {
            shard_caps,
            shards: (0..shards)
                .map(|_| Mutex::new(OracleShard::default()))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            batched_queries: AtomicUsize::new(0),
        }
    }

    /// The number of shards this cache was built with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity (the sum of the per-shard quotas): the hard bound on
    /// [`OracleCache::len`].
    pub fn capacity(&self) -> usize {
        self.shard_caps.iter().sum()
    }

    /// Number of live cached entries across all shards (always ≤
    /// [`OracleCache::capacity`]).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("oracle shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated cache statistics so far; see [`ShardedOracle::stats`] for
    /// the scheduling-independence contract.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Batched-dispatch telemetry so far (see [`BatchStats`]).
    pub fn batch_stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.batched_queries.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries and reset statistics. In-flight computations
    /// (single-flight registrations) are untouched — they resolve normally.
    ///
    /// This is the session-invalidation hook: owners that mutate the table
    /// or the constraint set between explanations call this so the next
    /// request starts from a cold (but definitely fresh) cache. Stale
    /// answers were already unreachable — keys embed the table fingerprint
    /// and the constraint-set hash, so an edit changes every key — but
    /// flushing also frees the dead pre-edit entries and removes even the
    /// 64-bit-collision corner from the contract.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("oracle shard poisoned");
            shard.map.clear();
            shard.clock.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batched_queries.store(0, Ordering::Relaxed);
    }
}

impl Default for OracleCache {
    fn default() -> Self {
        Self::new()
    }
}

/// One mutex-guarded shard: the memo map, the clock queue ordering its
/// eviction candidates (the queue always holds exactly the map's keys), and
/// the single-flight registry of keys currently being computed.
#[derive(Default)]
struct OracleShard {
    map: HashMap<OracleKey, CacheSlot>,
    clock: VecDeque<OracleKey>,
    /// Keys some thread is computing right now: later arrivals wait on the
    /// registered flight instead of recomputing. Disjoint from `map` — a
    /// key moves from here into the map when its leader installs it.
    inflight: HashMap<OracleKey, Arc<Flight>>,
}

impl OracleShard {
    /// Evict one entry by the second-chance (clock) policy: sweep from the
    /// oldest entry, giving each recently-hit entry one reprieve (clear its
    /// bit, rotate it to the back) and evicting the first entry found
    /// unreferenced. Bounded by one full lap — a lap clears every bit, so
    /// the lap's survivor at the front is evictable.
    fn evict_one(&mut self) {
        for _ in 0..self.clock.len() {
            let key = self.clock.pop_front().expect("clock tracks map keys");
            let slot = self.map.get_mut(&key).expect("clock tracks map keys");
            if slot.referenced {
                slot.referenced = false;
                self.clock.push_back(key);
            } else {
                self.map.remove(&key);
                return;
            }
        }
        let key = self.clock.pop_front().expect("clock tracks map keys");
        self.map.remove(&key);
    }
}

/// Thread-safe memoizing oracle: the [`CachedOracle`] contract behind a
/// sharded lock so the parallel sampling workers can query it concurrently.
///
/// The key space is split across a configurable number of mutex-guarded
/// shards ([`ShardedOracle::DEFAULT_SHARDS`] by default) selected by the
/// coalition-table fingerprint, so workers evaluating different coalitions
/// almost never contend, yet every worker sees every other worker's cached
/// answers. Hit/miss statistics are aggregated with relaxed atomics and are
/// **scheduling-independent**: a query counts as a miss only when it is the
/// one that installs the key (see [`ShardedOracle::repairs_cell_to`]), so
/// the same workload yields the same [`OracleStats`] at any thread count.
///
/// **Bounded memory.** The capacity is a hard bound on live entries: the
/// per-shard quotas sum to exactly `capacity` (shard `i` gets
/// `capacity / shards`, plus one of the remainder entries for the first
/// `capacity % shards` shards; a non-zero capacity below the shard count
/// clamps the shard count so every shard can hold at least one entry), and
/// a shard at quota **evicts** by a
/// per-shard second-chance (clock) policy before inserting — recently
/// re-queried entries survive the sweep, cold entries go first. Long
/// sampling runs over tables with millions of coalition variants therefore
/// stop growing the cache instead of eating the heap, at the price of
/// recomputing an evicted key if it is queried again (the recompute is
/// counted as a fresh miss, and every eviction increments
/// [`OracleStats::evictions`]). Results are *always* identical to an
/// unbounded oracle — eviction only ever costs time, never changes an
/// answer — and a capacity at least the live-key count of the workload
/// evicts nothing at all.
///
/// **Single-flight & batching.** Concurrent queries of the same cold key
/// dedup via single-flight: the first arrival computes, everyone else
/// blocks on its flight and shares the answer — one repair run per key no
/// matter how many workers race. [`ShardedOracle::query_keyed_batch`]
/// additionally forms bounded batches of cold keys (size capped by
/// [`ShardedOracle::with_batch`]), orders them most-expensive-scan-first
/// when the caller supplies static cost estimates, and dispatches them to
/// an optional [`OracleBackend`] ([`ShardedOracle::with_backend`]) so
/// per-call-latency backends amortize their round trip across the batch.
pub struct ShardedOracle<'a> {
    alg: &'a dyn RepairAlgorithm,
    /// Batch transport; `None` answers batches with `alg` locally.
    backend: Option<&'a dyn OracleBackend>,
    /// Max queries per backend dispatch in `query_keyed_batch`.
    batch: usize,
    /// The memo maps and counters — private to this oracle through the
    /// capacity constructors, or shared across oracles through
    /// [`ShardedOracle::with_shared_cache`].
    cache: Arc<OracleCache>,
}

/// Batched-dispatch statistics of a [`ShardedOracle`]: how many backend
/// dispatches the batcher issued and how many (deduplicated) queries they
/// carried. Kept separate from [`OracleStats`], whose hit/miss/eviction
/// totals are a pinned scheduling-independent contract — dispatch counts
/// legitimately depend on batch size and arrival order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Dispatches issued by [`ShardedOracle::query_keyed_batch`] (one
    /// `answer_batch` round trip each when a backend is attached).
    pub batches: usize,
    /// Total queries those dispatches carried. Only genuine misses reach a
    /// dispatch — cache hits and single-flight joins never do.
    pub queries: usize,
}

/// One registered single-flight lead of a batched call: the query's
/// position in the caller's key slice plus the flight to resolve.
struct Lead {
    slot: usize,
    key: OracleKey,
    shard: usize,
    flight: Arc<Flight>,
    resolved: bool,
}

/// Unwind guard over a call's registered leads: any lead still unresolved
/// when the guard drops (the compute or backend panicked) is deregistered
/// and poisoned, so waiters on other threads wake and retake the key
/// instead of deadlocking behind a dead leader.
struct FlightLease<'o, 'a> {
    oracle: &'o ShardedOracle<'a>,
    leads: Vec<Lead>,
}

impl FlightLease<'_, '_> {
    /// Install lead `j`'s answer in the cache and wake its waiters.
    fn resolve(&mut self, j: usize, answer: bool) {
        let lead = &mut self.leads[j];
        lead.resolved = true;
        self.oracle
            .install_and_resolve(lead.shard, lead.key, &lead.flight, answer);
    }
}

impl Drop for FlightLease<'_, '_> {
    fn drop(&mut self) {
        for lead in &self.leads {
            if lead.resolved {
                continue;
            }
            // `if let Ok`: a poisoned shard mutex while already unwinding
            // must not escalate into a double-panic abort.
            if let Ok(mut shard) = self.oracle.cache.shards[lead.shard].lock() {
                shard.inflight.remove(&lead.key);
            }
            lead.flight.poison();
        }
    }
}

impl<'a> ShardedOracle<'a> {
    /// Default total cache capacity (entries), matching [`CachedOracle`].
    pub const DEFAULT_CAPACITY: usize = CachedOracle::DEFAULT_CAPACITY;

    /// Default number of independent shards.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Wrap `alg` with the default capacity and shard count.
    pub fn new(alg: &'a dyn RepairAlgorithm) -> Self {
        Self::with_config(alg, Self::DEFAULT_CAPACITY, Self::DEFAULT_SHARDS)
    }

    /// Wrap `alg` with an explicit total cache capacity (0 disables caching)
    /// and the default shard count.
    pub fn with_capacity(alg: &'a dyn RepairAlgorithm, capacity: usize) -> Self {
        Self::with_config(alg, capacity, Self::DEFAULT_SHARDS)
    }

    /// Wrap `alg` with an explicit total capacity and shard count. More
    /// shards cut lock contention on many-core machines; `shards = 1`
    /// degenerates to a single-lock cache (useful as a contention baseline
    /// and in tests).
    ///
    /// Any shard count ≥ 1 is valid — zero is rejected (there would be no
    /// shard to hold an entry). Non-power-of-two counts are deliberately
    /// *not* rounded up: shard selection reduces the key hash with a
    /// modulo (see [`Self::shard_of`]), not a bitmask, so an odd count
    /// distributes keys just as uniformly, and silently rounding would
    /// change the per-shard capacity quotas behind the caller's back.
    ///
    /// The default of [`ShardedOracle::DEFAULT_SHARDS`] (16) comes from the
    /// `oracle_cache` bench's contention sweep (1/4/16/64 shards hammered
    /// by up to 8 workers): 1 shard serializes every worker on one lock,
    /// 4 still collide measurably at 8 workers, while 16 is within noise
    /// of 64 on every machine profiled — so 16 takes the smallest
    /// per-entry bookkeeping that already removes the contention.
    pub fn with_config(alg: &'a dyn RepairAlgorithm, capacity: usize, shards: usize) -> Self {
        Self::with_shared_cache(alg, Arc::new(OracleCache::with_config(capacity, shards)))
    }

    /// Wrap `alg` around an existing (typically shared) [`OracleCache`].
    ///
    /// This is the long-lived-session constructor: a `Session` or server
    /// builds one `Arc<OracleCache>` and every per-request oracle clones the
    /// handle, so concurrent explanations of the same (table, constraints)
    /// pair warm and hit one bounded cache. Answers, eviction behavior, and
    /// the statistics contract are identical to a private cache — the
    /// counters simply aggregate across every oracle sharing the handle.
    pub fn with_shared_cache(alg: &'a dyn RepairAlgorithm, cache: Arc<OracleCache>) -> Self {
        ShardedOracle {
            alg,
            backend: None,
            batch: usize::MAX,
            cache,
        }
    }

    /// The cache handle this oracle queries; clone it to share the cache
    /// with another oracle (see [`ShardedOracle::with_shared_cache`]).
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// Route batched dispatches ([`ShardedOracle::query_keyed_batch`])
    /// through `backend` instead of the local algorithm.
    ///
    /// The backend must honor the [`OracleBackend`] transport contract —
    /// answer exactly what the local algorithm would — so attaching one
    /// never changes an answer, only where (and how many at a time) the
    /// misses are computed. Per-query paths
    /// ([`ShardedOracle::repairs_cell_to`], [`ShardedOracle::query_keyed`])
    /// stay on their caller-supplied compute.
    pub fn with_backend(mut self, backend: &'a dyn OracleBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Bound the number of queries per batched dispatch (default:
    /// unbounded — one dispatch carries every miss of a
    /// [`ShardedOracle::query_keyed_batch`] call).
    ///
    /// # Panics
    /// If `batch` is 0 (a dispatch must be able to carry a query).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        self.batch = batch;
        self
    }

    /// The attached backend's name, if one is attached.
    pub fn backend_name(&self) -> Option<&str> {
        self.backend.map(|b| b.name())
    }

    /// The underlying algorithm.
    pub fn algorithm(&self) -> &dyn RepairAlgorithm {
        self.alg
    }

    /// The number of shards this oracle's cache was built with.
    pub fn num_shards(&self) -> usize {
        self.cache.num_shards()
    }

    /// Total capacity (the sum of the per-shard quotas): the hard bound on
    /// [`ShardedOracle::len`].
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of live cached entries across all shards (always ≤
    /// [`ShardedOracle::capacity`]).
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    fn shard_of(&self, key: &OracleKey) -> usize {
        // The table fingerprint is the high-entropy component: coalition
        // variants of one explanation differ almost exclusively there.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.cache.shards.len()
    }

    /// Memoized `Alg|cell(dcs, table) == target` query; safe to call from
    /// many threads at once.
    ///
    /// The shard lock is *not* held while the underlying repair runs.
    /// Concurrent queries of the same brand-new key dedup via
    /// *single-flight*: the first arrival (the leader) registers a flight
    /// and computes; every later arrival blocks on that flight and shares
    /// the leader's answer — one repair run per key, no matter how many
    /// workers race. Statistics classify per *key*: the leader that
    /// installs a key records the miss; every waiter records a hit,
    /// exactly as if it had arrived after the insertion. Hit/miss totals
    /// are therefore a function of the workload alone (as long as the
    /// cache is not capacity-saturated), identical across runs and thread
    /// counts. If a leader panics before answering, its flight is poisoned
    /// and one waiter takes over as the new leader — an answer is never
    /// fabricated.
    pub fn repairs_cell_to(
        &self,
        dcs: &[DenialConstraint],
        table: &Table,
        cell: CellRef,
        target: &Value,
    ) -> bool {
        let key = (hash_dcs(dcs), table.fingerprint(), cell, hash_value(target));
        self.query_keyed(key, || repairs_cell_to(self.alg, dcs, table, cell, target))
    }

    /// [`ShardedOracle::repairs_cell_to`] with a caller-built [`OracleKey`]:
    /// the cache is consulted first and `compute` runs only on a genuine
    /// miss. This is the hot path of the Shapley games — a hit costs one
    /// key hash and one shard lock, never a coalition-table clone or a
    /// repair run. Lock/eviction/statistics behavior is identical to
    /// [`ShardedOracle::repairs_cell_to`] (the stats contract documented
    /// there is this method's contract; `compute` must be deterministic and
    /// equal keys must mean equal queries).
    pub fn query_keyed(&self, key: OracleKey, compute: impl FnOnce() -> bool) -> bool {
        // `compute` must survive wait-retry laps (a poisoned flight sends a
        // waiter back around the loop); it is taken exactly once, on the
        // lead path, which always returns.
        let mut compute = Some(compute);
        let shard_idx = self.shard_of(&key);
        enum Turn {
            Wait(Arc<Flight>),
            Lead(Arc<Flight>),
        }
        loop {
            let turn = {
                let mut shard = self.cache.shards[shard_idx]
                    .lock()
                    .expect("oracle shard poisoned");
                if let Some(slot) = shard.map.get_mut(&key) {
                    slot.referenced = true; // a hit earns its second chance
                    let answer = slot.answer;
                    drop(shard);
                    self.cache.hits.fetch_add(1, Ordering::Relaxed);
                    return answer;
                }
                if let Some(flight) = shard.inflight.get(&key) {
                    Turn::Wait(Arc::clone(flight))
                } else {
                    let flight = Flight::new();
                    shard.inflight.insert(key, Arc::clone(&flight));
                    Turn::Lead(flight)
                }
            };
            match turn {
                Turn::Wait(flight) => {
                    if let Some(answer) = flight.wait() {
                        self.cache.hits.fetch_add(1, Ordering::Relaxed);
                        return answer;
                    }
                    // The leader unwound before answering; go around and
                    // retake the key.
                }
                Turn::Lead(flight) => {
                    let mut lease = FlightLease {
                        oracle: self,
                        leads: vec![Lead {
                            slot: 0,
                            key,
                            shard: shard_idx,
                            flight,
                            resolved: false,
                        }],
                    };
                    let answer = (compute.take().expect("the lead path runs at most once"))();
                    lease.resolve(0, answer);
                    return answer;
                }
            }
        }
    }

    /// Answer a whole batch of caller-keyed queries, index-aligned with
    /// `keys` — the batching/coalescing layer in front of an
    /// [`OracleBackend`].
    ///
    /// Per key this resolves exactly like [`ShardedOracle::query_keyed`]
    /// (cache hit, single-flight join, or lead), but all of the call's
    /// *leads* — the genuine misses, including the first occurrence of any
    /// intra-batch duplicate — are dispatched together in bounded chunks
    /// ([`ShardedOracle::with_batch`]) instead of one at a time:
    /// to the attached backend's `answer_batch` when one is attached
    /// ([`ShardedOracle::with_backend`]), else to the local algorithm.
    /// `materialize(i)` builds the full [`CoalitionQuery`] for `keys[i]`
    /// and is called only for queries that actually need computing.
    ///
    /// `costs` (optional, index-aligned with `keys`) are static
    /// scan-cost estimates — the analyzer's `DcPlan` pair counts summed
    /// over the coalition — and order dispatch most-expensive-first
    /// (stable on ties) so the slowest scans start earliest; they never
    /// affect *what* is computed, only the order, and answers always come
    /// back in key order.
    ///
    /// Answers and [`ShardedOracle::stats`] are byte-identical to issuing
    /// the same keys through `query_keyed` one at a time, at any batch
    /// size and thread count: one miss per installed key, a hit for every
    /// other query of it. Dispatch telemetry is reported separately via
    /// [`ShardedOracle::batch_stats`].
    ///
    /// # Panics
    /// If `costs` is present but not index-aligned with `keys`, or if the
    /// backend answers a different number of queries than it was sent.
    pub fn query_keyed_batch<'q>(
        &self,
        keys: &[OracleKey],
        costs: Option<&[u64]>,
        materialize: impl Fn(usize) -> CoalitionQuery<'q>,
    ) -> Vec<bool> {
        if let Some(costs) = costs {
            assert_eq!(costs.len(), keys.len(), "need one cost per key");
        }
        let mut answers = vec![false; keys.len()];
        // Single-flight joins: queries some other call (or an earlier
        // duplicate in this one) is already computing.
        let mut joins: Vec<(usize, Arc<Flight>)> = Vec::new();
        let mut lease = FlightLease {
            oracle: self,
            leads: Vec::new(),
        };
        for (slot, key) in keys.iter().enumerate() {
            let shard_idx = self.shard_of(key);
            let mut shard = self.cache.shards[shard_idx]
                .lock()
                .expect("oracle shard poisoned");
            if let Some(cached) = shard.map.get_mut(key) {
                cached.referenced = true;
                let answer = cached.answer;
                drop(shard);
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                answers[slot] = answer;
            } else if let Some(flight) = shard.inflight.get(key) {
                joins.push((slot, Arc::clone(flight)));
            } else {
                let flight = Flight::new();
                shard.inflight.insert(*key, Arc::clone(&flight));
                lease.leads.push(Lead {
                    slot,
                    key: *key,
                    shard: shard_idx,
                    flight,
                    resolved: false,
                });
            }
        }
        // Dispatch order: most expensive scans first when the caller gave
        // cost estimates, arrival order otherwise (stable on ties, so the
        // order — and with it every downstream number — is deterministic).
        let mut order: Vec<usize> = (0..lease.leads.len()).collect();
        if let Some(costs) = costs {
            order.sort_by(|&a, &b| {
                costs[lease.leads[b].slot]
                    .cmp(&costs[lease.leads[a].slot])
                    .then(lease.leads[a].slot.cmp(&lease.leads[b].slot))
            });
        }
        for group in order.chunks(self.batch) {
            let queries: Vec<CoalitionQuery<'q>> = group
                .iter()
                .map(|&j| materialize(lease.leads[j].slot))
                .collect();
            let got: Vec<bool> = match self.backend {
                Some(backend) => backend.answer_batch(&queries),
                None => queries
                    .iter()
                    .map(|q| repairs_cell_to(self.alg, &q.dcs, &q.table, q.cell, &q.target))
                    .collect(),
            };
            assert_eq!(
                got.len(),
                queries.len(),
                "backend must answer every query in the batch"
            );
            self.cache.batches.fetch_add(1, Ordering::Relaxed);
            self.cache
                .batched_queries
                .fetch_add(queries.len(), Ordering::Relaxed);
            for (&j, answer) in group.iter().zip(got) {
                answers[lease.leads[j].slot] = answer;
                lease.resolve(j, answer);
            }
        }
        // Every lead of this call resolved above, so joins can only block
        // on *other* calls' leaders — never on ourselves.
        for (slot, flight) in joins {
            answers[slot] = match flight.wait() {
                Some(answer) => {
                    self.cache.hits.fetch_add(1, Ordering::Relaxed);
                    answer
                }
                // The foreign leader unwound: retake this key per-query.
                None => self.query_keyed(keys[slot], || self.compute_one(&materialize(slot))),
            };
        }
        answers
    }

    /// Answer one materialized query outside the batch loop (the fallback
    /// when a foreign leader failed): through the backend as a batch of
    /// one when attached, else the local algorithm.
    fn compute_one(&self, q: &CoalitionQuery<'_>) -> bool {
        match self.backend {
            Some(backend) => {
                let got = backend.answer_batch(std::slice::from_ref(q));
                assert_eq!(got.len(), 1, "backend must answer every query in the batch");
                self.cache.batches.fetch_add(1, Ordering::Relaxed);
                self.cache.batched_queries.fetch_add(1, Ordering::Relaxed);
                got[0]
            }
            None => repairs_cell_to(self.alg, &q.dcs, &q.table, q.cell, &q.target),
        }
    }

    /// Install a freshly computed answer (the installer's miss), deregister
    /// its flight, and wake the waiters. This is the cache's single
    /// insertion point, shared by the per-query and batched paths — the
    /// quota/eviction logic lives only here.
    fn install_and_resolve(&self, shard_idx: usize, key: OracleKey, flight: &Flight, answer: bool) {
        {
            let mut shard = self.cache.shards[shard_idx]
                .lock()
                .expect("oracle shard poisoned");
            shard.inflight.remove(&key);
            let quota = self.cache.shard_caps[shard_idx];
            if quota > 0 {
                if shard.map.len() >= quota {
                    shard.evict_one();
                    self.cache.evictions.fetch_add(1, Ordering::Relaxed);
                }
                shard.map.insert(
                    key,
                    CacheSlot {
                        answer,
                        referenced: false,
                    },
                );
                shard.clock.push_back(key);
            }
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        flight.resolve(answer);
    }

    /// Aggregated cache statistics so far.
    ///
    /// `hits + misses` always equals the number of queries answered.
    /// Scheduling-independent below capacity: each distinct key accounts
    /// for exactly one miss (the query that installed it — see
    /// [`ShardedOracle::repairs_cell_to`]), every other query of that key
    /// is a hit, so repeated runs of the same workload report identical
    /// hit/miss totals at any thread count and `evictions` stays 0. Once
    /// capacity pressure triggers evictions, a re-queried evicted key
    /// recomputes (a fresh miss) and which key was evicted can depend on
    /// query interleaving, so only the invariants — not the exact split —
    /// are schedule-independent under pressure. An oracle on a shared
    /// cache reports the cache's aggregate counters, i.e. the combined
    /// pressure of every oracle sharing the handle.
    pub fn stats(&self) -> OracleStats {
        self.cache.stats()
    }

    /// Batched-dispatch telemetry so far (see [`BatchStats`]).
    pub fn batch_stats(&self) -> BatchStats {
        self.cache.batch_stats()
    }

    /// Drop all cached entries and reset statistics. In-flight computations
    /// (single-flight registrations) are untouched — they resolve normally.
    pub fn clear(&self) {
        self.cache.clear()
    }
}

/// Failure-isolation wrapper: catches panics in the wrapped algorithm and
/// degrades to "no repair" (identity) for that query.
///
/// The Shapley engines feed black boxes thousands of *weird* coalition
/// tables (mostly-null, mixed-type after random replacement); a brittle
/// third-party repairer must not take the whole explanation down. A panic
/// maps to the clean answer "this coalition repairs nothing", which is the
/// conservative reading — and the number of caught panics is reported so
/// callers can decide whether the explanation is trustworthy.
pub struct PanicGuard<A> {
    inner: A,
    panics: AtomicUsize,
}

impl<A: RepairAlgorithm> PanicGuard<A> {
    /// Wrap an algorithm.
    pub fn new(inner: A) -> Self {
        PanicGuard {
            inner,
            panics: AtomicUsize::new(0),
        }
    }

    /// How many repair invocations panicked so far.
    pub fn panic_count(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: RepairAlgorithm> RepairAlgorithm for PanicGuard<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        // The panic counter (an atomic) is only touched after the unwind is
        // caught, so asserting unwind safety over the closure is sound.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.repair(dcs, dirty)
        }));
        match result {
            Ok(r) => r,
            Err(_) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                RepairResult {
                    clean: dirty.clone(),
                    changes: Vec::new(),
                }
            }
        }
    }
}

/// A trivial repair algorithm that changes nothing — the identity black box.
/// Useful as a degenerate case in tests: every Shapley value it induces is 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpRepair;

impl RepairAlgorithm for NoOpRepair {
    fn name(&self) -> &str {
        "noop"
    }

    fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        RepairResult {
            clean: dirty.clone(),
            changes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::{AttrId, TableBuilder};

    /// Test double: repairs cell (0,0) to "FIXED" iff at least `need` DCs
    /// are passed; counts invocations (atomically — `RepairAlgorithm` is
    /// `Sync`).
    struct CountingRepair {
        need: usize,
        calls: AtomicUsize,
    }

    impl CountingRepair {
        fn calls(&self) -> usize {
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl RepairAlgorithm for CountingRepair {
        fn name(&self) -> &str {
            "counting"
        }
        fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let mut clean = dirty.clone();
            if dcs.len() >= self.need {
                clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            }
            RepairResult::from_tables(dirty, clean)
        }
    }

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["A"])
            .str_row(["dirty"])
            .build()
    }

    fn dc() -> DenialConstraint {
        trex_constraints::parse_dc("!(t1.A != t2.A)").unwrap()
    }

    #[test]
    fn repairs_cell_to_checks_target() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        assert!(repairs_cell_to(
            &alg,
            &[dc()],
            &t,
            cell,
            &Value::str("FIXED")
        ));
        assert!(!repairs_cell_to(
            &alg,
            &[dc()],
            &t,
            cell,
            &Value::str("OTHER")
        ));
        assert!(!repairs_cell_to(&alg, &[], &t, cell, &Value::str("FIXED")));
    }

    #[test]
    fn already_target_counts_as_not_repaired() {
        let alg = NoOpRepair;
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        assert!(!repairs_cell_to(&alg, &[], &t, cell, &Value::str("dirty")));
    }

    #[test]
    fn cached_oracle_deduplicates() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..5 {
            assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
        }
        assert_eq!(alg.calls(), 1);
        let stats = oracle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cache_keys_distinguish_inputs() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let mut t2 = t.clone();
        t2.set(CellRef::new(0, AttrId(0)), Value::str("other"));
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        let _ = oracle.repairs_cell_to(&dcs, &t2, cell, &Value::str("FIXED"));
        let _ = oracle.repairs_cell_to(&[], &t, cell, &Value::str("FIXED"));
        // Three distinct inputs → three misses, three underlying runs.
        assert_eq!(alg.calls(), 3);
        assert_eq!(oracle.stats().misses, 3);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = CachedOracle::with_capacity(&alg, 0);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..3 {
            let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        }
        assert_eq!(alg.calls(), 3);
        assert_eq!(oracle.stats().hits, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let _ = oracle.repairs_cell_to(&[dc()], &t, cell, &Value::str("FIXED"));
        oracle.clear();
        assert_eq!(oracle.stats(), OracleStats::default());
        let _ = oracle.repairs_cell_to(&[dc()], &t, cell, &Value::str("FIXED"));
        assert_eq!(alg.calls(), 2);
    }

    #[test]
    fn sharded_oracle_deduplicates_and_counts() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..5 {
            assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
        }
        assert_eq!(alg.calls(), 1);
        let stats = oracle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        oracle.clear();
        assert_eq!(oracle.stats(), OracleStats::default());
        let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        assert_eq!(alg.calls(), 2);
    }

    #[test]
    fn sharded_oracle_capacity_zero_disables_caching() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::with_capacity(&alg, 0);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..3 {
            let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        }
        assert_eq!(alg.calls(), 3);
        assert_eq!(oracle.stats().hits, 0);
        assert_eq!(oracle.algorithm().name(), "counting");
    }

    #[test]
    fn sharded_oracle_agrees_with_cached_oracle() {
        // Same queries, same answers, same hit/miss totals: the sharded
        // oracle is a drop-in for the serial one.
        let alg = CountingRepair {
            need: 2,
            calls: AtomicUsize::new(0),
        };
        let serial = CachedOracle::new(&alg);
        let sharded = ShardedOracle::new(&alg);
        let t = table();
        let mut t2 = t.clone();
        t2.set(CellRef::new(0, AttrId(0)), Value::str("other"));
        let cell = CellRef::new(0, AttrId(0));
        let queries: Vec<(Vec<DenialConstraint>, &Table)> = vec![
            (vec![dc()], &t),
            (vec![], &t),
            (vec![dc(), dc()], &t),
            (vec![dc()], &t2),
            (vec![dc()], &t),
        ];
        for (dcs, table) in &queries {
            let a = serial.repairs_cell_to(dcs, table, cell, &Value::str("FIXED"));
            let b = sharded.repairs_cell_to(dcs, table, cell, &Value::str("FIXED"));
            assert_eq!(a, b);
        }
        assert_eq!(serial.stats(), sharded.stats());
    }

    #[test]
    fn sharded_oracle_shares_hits_across_threads() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        // Warm the key once, then hammer it from several threads: every
        // concurrent query must be a hit.
        let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
                    }
                });
            }
        });
        assert_eq!(alg.calls(), 1);
        let stats = oracle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 200);
    }

    #[test]
    fn sharded_oracle_stats_are_scheduling_independent() {
        // Several workers hammer the same *cold* keys simultaneously; racing
        // computations must not inflate the miss count. Per distinct key the
        // stats record exactly one miss — whichever query installed it — so
        // repeated runs of this workload always report the same totals.
        let distinct_tables: Vec<Table> = (0..6)
            .map(|i| {
                let mut t = table();
                t.set(CellRef::new(0, AttrId(0)), Value::str(format!("v{i}")));
                t
            })
            .collect();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let run = || {
            let alg = CountingRepair {
                need: 1,
                calls: AtomicUsize::new(0),
            };
            let oracle = ShardedOracle::new(&alg);
            let barrier = std::sync::Barrier::new(4);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        barrier.wait(); // maximize cold-key racing
                        for _ in 0..5 {
                            for t in &distinct_tables {
                                let _ = oracle.repairs_cell_to(&dcs, t, cell, &Value::str("FIXED"));
                            }
                        }
                    });
                }
            });
            oracle.stats()
        };
        for _ in 0..3 {
            let stats = run();
            assert_eq!(stats.misses, 6, "one miss per distinct key");
            assert_eq!(stats.hits, 4 * 5 * 6 - 6);
        }
    }

    #[test]
    fn single_shard_oracle_aggregates_stats_correctly() {
        // shards = 1 degenerates to one lock but must keep the exact
        // CachedOracle stats contract.
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::with_config(&alg, ShardedOracle::DEFAULT_CAPACITY, 1);
        assert_eq!(oracle.num_shards(), 1);
        let serial_alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let serial = CachedOracle::new(&serial_alg);
        let t = table();
        let mut t2 = t.clone();
        t2.set(CellRef::new(0, AttrId(0)), Value::str("other"));
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for (tbl, target) in [
            (&t, "FIXED"),
            (&t, "FIXED"),
            (&t2, "FIXED"),
            (&t, "OTHER"),
            (&t2, "FIXED"),
        ] {
            let a = oracle.repairs_cell_to(&dcs, tbl, cell, &Value::str(target));
            let b = serial.repairs_cell_to(&dcs, tbl, cell, &Value::str(target));
            assert_eq!(a, b);
        }
        assert_eq!(oracle.stats(), serial.stats());
        assert_eq!(oracle.stats().misses, 3);
        assert_eq!(oracle.stats().hits, 2);
    }

    #[test]
    fn sharded_oracle_capacity_is_a_hard_bound() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        // One shard so the whole capacity is one clock; 64 distinct keys
        // through a capacity of 5.
        let oracle = ShardedOracle::with_config(&alg, 5, 1);
        assert_eq!(oracle.capacity(), 5);
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for i in 0..64 {
            let mut t = table();
            t.set(cell, Value::str(format!("v{i}")));
            let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
            assert!(oracle.len() <= 5, "len {} after key {i}", oracle.len());
        }
        let stats = oracle.stats();
        assert_eq!(stats.misses, 64);
        assert_eq!(stats.evictions, 64 - 5);
        assert_eq!(oracle.len(), 5);
        assert!(!oracle.is_empty());
    }

    #[test]
    fn second_chance_keeps_the_hot_key() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::with_config(&alg, 2, 1);
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let keyed = |i: usize| {
            let mut t = table();
            t.set(cell, Value::str(format!("v{i}")));
            t
        };
        let hot = keyed(0);
        let _ = oracle.repairs_cell_to(&dcs, &hot, cell, &Value::str("FIXED"));
        // Cycle cold keys through the second slot, re-touching the hot key
        // between installs: its reference bit must survive every sweep.
        for i in 1..12 {
            let _ = oracle.repairs_cell_to(&dcs, &keyed(i), cell, &Value::str("FIXED"));
            let calls_before = alg.calls();
            let _ = oracle.repairs_cell_to(&dcs, &hot, cell, &Value::str("FIXED"));
            assert_eq!(alg.calls(), calls_before, "hot key was evicted at {i}");
        }
    }

    #[test]
    fn evicted_key_recomputes_the_same_answer() {
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::with_config(&alg, 1, 1);
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let t = table();
        let mut t2 = table();
        t2.set(cell, Value::str("other"));
        let first = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        let _ = oracle.repairs_cell_to(&dcs, &t2, cell, &Value::str("FIXED")); // evicts t's key
        let again = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        assert_eq!(first, again);
        let stats = oracle.stats();
        assert_eq!(stats.misses, 3, "the re-query recomputes");
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits + stats.misses, 3, "every query is counted");
    }

    #[test]
    fn capacity_below_shard_count_clamps_shards_and_bounds_exactly() {
        // 3 entries through a requested 16 shards: the shard count clamps
        // to 3 so every shard can hold an entry (a quota-0 shard would
        // recompute its keys on every query forever), and the cache always
        // fills to — never past — its full capacity under key pressure.
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::with_config(&alg, 3, 16);
        assert_eq!(oracle.capacity(), 3);
        assert_eq!(oracle.num_shards(), 3, "shards clamp to capacity");
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for i in 0..40 {
            let mut t = table();
            t.set(cell, Value::str(format!("v{i}")));
            let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
            assert!(oracle.len() <= 3, "len {} after key {i}", oracle.len());
        }
        assert_eq!(oracle.len(), 3, "every shard holds its one entry");
        // Capacity 0 still disables caching without touching shard count.
        let off = ShardedOracle::with_config(&alg, 0, 16);
        assert_eq!(off.num_shards(), 16);
        assert_eq!(off.capacity(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let alg = NoOpRepair;
        let _ = ShardedOracle::with_config(&alg, 16, 0);
    }

    #[test]
    fn non_power_of_two_shard_counts_are_exact() {
        // Shard selection is a modulo, not a bitmask: an odd shard count
        // must keep count, answers, and stats identical to any other —
        // which is why with_config does not round to a power of two.
        let t = table();
        let mut t2 = t.clone();
        t2.set(CellRef::new(0, AttrId(0)), Value::str("other"));
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let queries = [(&t, "FIXED"), (&t, "FIXED"), (&t2, "FIXED"), (&t2, "OTHER")];
        let run = |shards: usize| {
            let alg = CountingRepair {
                need: 1,
                calls: AtomicUsize::new(0),
            };
            let oracle = ShardedOracle::with_config(&alg, ShardedOracle::DEFAULT_CAPACITY, shards);
            assert_eq!(oracle.num_shards(), shards);
            let answers: Vec<bool> = queries
                .iter()
                .map(|(tbl, target)| oracle.repairs_cell_to(&dcs, tbl, cell, &Value::str(*target)))
                .collect();
            (answers, oracle.stats())
        };
        let (base_answers, base_stats) = run(16);
        for shards in [1usize, 3, 7, 13] {
            let (answers, stats) = run(shards);
            assert_eq!(answers, base_answers, "{shards} shards");
            assert_eq!(stats, base_stats, "{shards} shards");
        }
        assert_eq!(base_stats.misses, 3);
        assert_eq!(base_stats.hits, 1);
    }

    /// A repairer that panics whenever the table contains a null — the kind
    /// of brittleness coalition tables provoke.
    struct Brittle;

    impl RepairAlgorithm for Brittle {
        fn name(&self) -> &str {
            "brittle"
        }
        fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            assert!(
                dirty.cells_with_values().all(|(_, v)| !v.is_null()),
                "brittle repairer cannot handle nulls"
            );
            let mut clean = dirty.clone();
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            RepairResult::from_tables(dirty, clean)
        }
    }

    #[test]
    fn panic_guard_degrades_to_identity() {
        let guard = PanicGuard::new(Brittle);
        let ok = table();
        let r = guard.repair(&[], &ok);
        assert_eq!(r.changes.len(), 1);
        assert_eq!(guard.panic_count(), 0);

        let mut with_null = table();
        with_null.set(CellRef::new(0, AttrId(0)), Value::Null);
        // Silence the default panic hook for this expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = guard.repair(&[], &with_null);
        std::panic::set_hook(prev);
        assert!(r.changes.is_empty());
        assert_eq!(r.clean, with_null);
        assert_eq!(guard.panic_count(), 1);
        assert_eq!(guard.name(), "brittle");
        assert_eq!(guard.inner().name(), "brittle");
    }

    #[test]
    fn noop_repair_is_identity() {
        let t = table();
        let r = NoOpRepair.repair(&[dc()], &t);
        assert_eq!(r.clean, t);
        assert!(r.changes.is_empty());
        assert_eq!(NoOpRepair.name(), "noop");
    }

    #[test]
    fn repair_result_change_at() {
        let t = table();
        let mut clean = t.clone();
        let cell = CellRef::new(0, AttrId(0));
        clean.set(cell, Value::str("x"));
        let r = RepairResult::from_tables(&t, clean);
        assert_eq!(r.changes.len(), 1);
        assert!(r.change_at(cell).is_some());
        assert_eq!(r.change_at(cell).unwrap().to, Value::str("x"));
    }

    #[test]
    fn boxed_algorithm_forwards() {
        let boxed: Box<dyn RepairAlgorithm> = Box::new(NoOpRepair);
        assert_eq!(RepairAlgorithm::name(&boxed), "noop");
        let t = table();
        let r = RepairAlgorithm::repair(&boxed, &[dc()], &t);
        assert!(r.changes.is_empty());
        // And a Box satisfies generic bounds, e.g. as an oracle's engine.
        let oracle = ShardedOracle::new(&boxed);
        let cell = CellRef::new(0, AttrId(0));
        assert!(!oracle.repairs_cell_to(&[dc()], &t, cell, &Value::str("FIXED")));
    }

    /// Test double with an artificially slow repair: makes cold-key races
    /// all but certain once a barrier lines the workers up.
    struct SlowRepair {
        delay: std::time::Duration,
        calls: AtomicUsize,
    }

    impl RepairAlgorithm for SlowRepair {
        fn name(&self) -> &str {
            "slow"
        }
        fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            self.calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.delay);
            let mut clean = dirty.clone();
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            RepairResult::from_tables(dirty, clean)
        }
    }

    #[test]
    fn single_flight_computes_concurrent_identical_coalitions_once() {
        // Barrier-hammered identical cold key: without single-flight every
        // worker would run the (slow) repair; with it exactly one does and
        // the waiters share the answer.
        let alg = SlowRepair {
            delay: std::time::Duration::from_millis(40),
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
                });
            }
        });
        assert_eq!(alg.calls.load(Ordering::Relaxed), 1, "one computation");
        let stats = oracle.stats();
        assert_eq!(stats.misses, 1, "the leader's install");
        assert_eq!(stats.hits, 7, "every waiter shares the flight's answer");
    }

    /// Panics on the first repair call, succeeds afterwards.
    struct FailsOnce {
        calls: AtomicUsize,
    }

    impl RepairAlgorithm for FailsOnce {
        fn name(&self) -> &str {
            "fails-once"
        }
        fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            if self.calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            let mut clean = dirty.clone();
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            RepairResult::from_tables(dirty, clean)
        }
    }

    #[test]
    fn poisoned_flight_hands_leadership_to_a_waiter() {
        let alg = FailsOnce {
            calls: AtomicUsize::new(0),
        };
        let oracle = ShardedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let barrier = std::sync::Barrier::new(2);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcomes: Vec<Result<bool, ()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"))
                        }))
                        .map_err(|_| ())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("catch_unwind already caught the panic"))
                .collect()
        });
        std::panic::set_hook(prev);
        // Exactly one thread was the first leader and saw the transient
        // panic; the flight was poisoned and the other thread retook the
        // key and computed the real answer — no deadlock, no fabricated
        // answer.
        assert_eq!(outcomes.iter().filter(|r| r.is_err()).count(), 1);
        assert!(outcomes.contains(&Ok(true)));
        // The key ends installed with the correct answer and stays hot.
        assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
        assert_eq!(
            oracle.stats().misses,
            1,
            "only the successful install counts"
        );
    }

    fn keyed_query<'q>(
        dcs: &'q [DenialConstraint],
        t: &'q Table,
        cell: CellRef,
        target: &'q Value,
    ) -> (OracleKey, crate::backend::CoalitionQuery<'q>) {
        use std::borrow::Cow;
        let key = (hash_dcs(dcs), t.fingerprint(), cell, hash_value(target));
        let query = crate::backend::CoalitionQuery {
            dcs: Cow::Borrowed(dcs),
            table: Cow::Borrowed(t),
            cell,
            target: Cow::Borrowed(target),
        };
        (key, query)
    }

    #[test]
    fn batched_queries_match_per_query_answers_and_stats() {
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let target = Value::str("FIXED");
        let tables: Vec<Table> = (0..5)
            .map(|i| {
                let mut t = table();
                t.set(cell, Value::str(format!("v{i}")));
                t
            })
            .collect();
        // Workload with an intra-batch duplicate: tables[0] twice.
        let picks = [0usize, 1, 0, 2, 3, 4];
        let run_batched = |batch: usize| {
            let alg = CountingRepair {
                need: 1,
                calls: AtomicUsize::new(0),
            };
            let oracle = ShardedOracle::new(&alg).with_batch(batch);
            let keyed: Vec<(OracleKey, crate::backend::CoalitionQuery<'_>)> = picks
                .iter()
                .map(|&i| keyed_query(&dcs, &tables[i], cell, &target))
                .collect();
            let keys: Vec<OracleKey> = keyed.iter().map(|(k, _)| *k).collect();
            let answers = oracle.query_keyed_batch(&keys, None, |i| {
                let q = &keyed[i].1;
                crate::backend::CoalitionQuery {
                    dcs: q.dcs.clone(),
                    table: q.table.clone(),
                    cell: q.cell,
                    target: q.target.clone(),
                }
            });
            (answers, oracle.stats(), oracle.batch_stats(), alg.calls())
        };
        // Per-query reference.
        let alg = CountingRepair {
            need: 1,
            calls: AtomicUsize::new(0),
        };
        let reference = ShardedOracle::new(&alg);
        let expect: Vec<bool> = picks
            .iter()
            .map(|&i| reference.repairs_cell_to(&dcs, &tables[i], cell, &target))
            .collect();
        for batch in [1usize, 2, 3, usize::MAX] {
            let (answers, stats, batch_stats, calls) = run_batched(batch);
            assert_eq!(answers, expect, "batch size {batch}");
            assert_eq!(stats, reference.stats(), "batch size {batch}");
            assert_eq!(calls, 5, "one computation per distinct key");
            assert_eq!(batch_stats.queries, 5, "only misses reach dispatch");
            let expected_batches = if batch == usize::MAX {
                1
            } else {
                5usize.div_ceil(batch)
            };
            assert_eq!(batch_stats.batches, expected_batches, "batch size {batch}");
        }
        // The intra-batch duplicate joined its own flight: one hit.
        assert_eq!(reference.stats().misses, 5);
        assert_eq!(reference.stats().hits, 1);
    }

    /// Backend double recording the order queries arrive in (by the dirty
    /// value of cell (0,0)), to observe cost-ordered dispatch.
    struct RecordingBackend {
        inner: NoOpRepair,
        seen: Mutex<Vec<String>>,
    }

    impl crate::backend::OracleBackend for RecordingBackend {
        fn name(&self) -> &str {
            "recording"
        }
        fn answer_batch(&self, batch: &[crate::backend::CoalitionQuery<'_>]) -> Vec<bool> {
            let mut seen = self.seen.lock().unwrap();
            for q in batch {
                seen.push(q.table.get(CellRef::new(0, AttrId(0))).to_string());
            }
            batch
                .iter()
                .map(|q| repairs_cell_to(&self.inner, &q.dcs, &q.table, q.cell, &q.target))
                .collect()
        }
    }

    #[test]
    fn batched_dispatch_orders_by_descending_cost() {
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let target = Value::str("FIXED");
        let tables: Vec<Table> = (0..4)
            .map(|i| {
                let mut t = table();
                t.set(cell, Value::str(format!("v{i}")));
                t
            })
            .collect();
        let backend = RecordingBackend {
            inner: NoOpRepair,
            seen: Mutex::new(Vec::new()),
        };
        let alg = NoOpRepair;
        let oracle = ShardedOracle::new(&alg).with_backend(&backend);
        assert_eq!(oracle.backend_name(), Some("recording"));
        let keyed: Vec<(OracleKey, crate::backend::CoalitionQuery<'_>)> = tables
            .iter()
            .map(|t| keyed_query(&dcs, t, cell, &target))
            .collect();
        let keys: Vec<OracleKey> = keyed.iter().map(|(k, _)| *k).collect();
        // v2 is the most expensive scan, then v0; v1 and v3 tie at 1 and
        // keep arrival order.
        let costs = [7u64, 1, 90, 1];
        let answers = oracle.query_keyed_batch(&keys, Some(&costs), |i| {
            let q = &keyed[i].1;
            crate::backend::CoalitionQuery {
                dcs: q.dcs.clone(),
                table: q.table.clone(),
                cell: q.cell,
                target: q.target.clone(),
            }
        });
        assert_eq!(answers, vec![false; 4], "noop repairs nothing");
        assert_eq!(
            *backend.seen.lock().unwrap(),
            vec!["v2", "v0", "v1", "v3"],
            "most expensive first, stable on ties"
        );
        assert_eq!(oracle.batch_stats().batches, 1);
        // Answers land back in key order regardless of dispatch order, and
        // the cache is warm: a second pass is all hits, no new dispatch.
        let again = oracle.query_keyed_batch(&keys, Some(&costs), |_| unreachable!("all hits"));
        assert_eq!(again, answers);
        assert_eq!(oracle.batch_stats().batches, 1);
        assert_eq!(oracle.stats().hits, 4);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_rejected() {
        let alg = NoOpRepair;
        let _ = ShardedOracle::new(&alg).with_batch(0);
    }
}
