//! The black-box repair interface.
//!
//! T-REx "treats the repair algorithm as a black box and only queries it"
//! (§1): the entire explanation machinery sees a repair algorithm only
//! through two operations —
//!
//! * `Alg(C, T^d) = T^c` — run a full repair ([`RepairAlgorithm::repair`]);
//! * `Alg|t[A](C, T^d) ∈ {0, 1}` — did the repair set cell `t[A]` to a given
//!   target value? ([`repairs_cell_to`], §2.1's binary view).
//!
//! Shapley computation evaluates the binary view on thousands of coalition
//! variants of `(C, T^d)`; [`CachedOracle`] memoizes those queries keyed by
//! `(constraints, table, cell, target)` fingerprints so that coalitions
//! revisited by different permutation samples are computed once (ablation
//! A1 of DESIGN.md measures the effect).

use std::cell::RefCell;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use trex_constraints::DenialConstraint;
use trex_table::{CellChange, CellRef, Table, Value};

/// The output of one repair run: the clean table and the cell-level diff.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The repaired table `T^c`.
    pub clean: Table,
    /// The repaired cells (`dirty → clean` diff), in cell order.
    pub changes: Vec<CellChange>,
}

impl RepairResult {
    /// Build a result from the dirty table and its repaired copy, computing
    /// the diff.
    pub fn from_tables(dirty: &Table, clean: Table) -> Self {
        let changes = trex_table::diff(dirty, &clean);
        RepairResult { clean, changes }
    }

    /// The change applied to `cell`, if any.
    pub fn change_at(&self, cell: CellRef) -> Option<&CellChange> {
        self.changes.iter().find(|c| c.cell == cell)
    }
}

/// A table-repair algorithm, as the paper's `Alg : (C, T^d) → T^c`.
///
/// Implementations must be deterministic functions of their inputs
/// (randomized repairers should fix their seed per instance): Shapley values
/// of a non-deterministic characteristic function are not well defined, and
/// the memoizing oracle assumes query stability.
///
/// Implementations never mutate the input and never add/remove rows — the
/// paper's repair model is cell updates only.
pub trait RepairAlgorithm {
    /// A short identifier for reports and experiment output.
    fn name(&self) -> &str;

    /// Run a full repair of `dirty` under the constraint set `dcs`.
    ///
    /// `dcs` may be unresolved; implementations resolve names against
    /// `dirty.schema()` themselves. Constraints mentioning attributes that
    /// do not exist in the schema are a caller bug and may panic.
    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult;
}

/// The binary view `Alg|t[A](C, T^d)` of §2.1: `true` iff running the repair
/// changes `cell` from its (different) dirty value to exactly `target`.
///
/// When the dirty value already equals `target`, the answer is `false` — the
/// paper's `1` signals "the value *is repaired* to `t^c[A]`", which requires
/// a change.
pub fn repairs_cell_to(
    alg: &dyn RepairAlgorithm,
    dcs: &[DenialConstraint],
    dirty: &Table,
    cell: CellRef,
    target: &Value,
) -> bool {
    if dirty.get(cell) == target {
        return false;
    }
    let result = alg.repair(dcs, dirty);
    result.clean.get(cell) == target
}

fn hash_dcs(dcs: &[DenialConstraint]) -> u64 {
    let mut h = DefaultHasher::new();
    dcs.len().hash(&mut h);
    for dc in dcs {
        dc.to_string().hash(&mut h);
    }
    h.finish()
}

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Cache statistics of a [`CachedOracle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that ran the underlying repair.
    pub misses: usize,
}

impl OracleStats {
    /// Total queries.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of queries served from cache (0 when no queries).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A memoizing wrapper around the binary repair oracle.
///
/// Keys are `(dcs, table, cell, target)` fingerprints. The cache is bounded:
/// once `capacity` entries are stored, further distinct queries are computed
/// but not inserted (coalition spaces are enormous; an unbounded cache could
/// eat the heap during long sampling runs).
pub struct CachedOracle<'a> {
    alg: &'a dyn RepairAlgorithm,
    capacity: usize,
    cache: RefCell<HashMap<(u64, u64, CellRef, u64), bool>>,
    stats: RefCell<OracleStats>,
}

impl<'a> CachedOracle<'a> {
    /// Default cache capacity (entries).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Wrap `alg` with the default capacity.
    pub fn new(alg: &'a dyn RepairAlgorithm) -> Self {
        Self::with_capacity(alg, Self::DEFAULT_CAPACITY)
    }

    /// Wrap `alg` with an explicit cache capacity.
    pub fn with_capacity(alg: &'a dyn RepairAlgorithm, capacity: usize) -> Self {
        CachedOracle {
            alg,
            capacity,
            cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(OracleStats::default()),
        }
    }

    /// The underlying algorithm.
    pub fn algorithm(&self) -> &dyn RepairAlgorithm {
        self.alg
    }

    /// Memoized `Alg|cell(dcs, table) == target` query.
    pub fn repairs_cell_to(
        &self,
        dcs: &[DenialConstraint],
        table: &Table,
        cell: CellRef,
        target: &Value,
    ) -> bool {
        let key = (hash_dcs(dcs), table.fingerprint(), cell, hash_value(target));
        if let Some(hit) = self.cache.borrow().get(&key) {
            self.stats.borrow_mut().hits += 1;
            return *hit;
        }
        let answer = repairs_cell_to(self.alg, dcs, table, cell, target);
        self.stats.borrow_mut().misses += 1;
        let mut cache = self.cache.borrow_mut();
        if cache.len() < self.capacity {
            if let Entry::Vacant(e) = cache.entry(key) {
                e.insert(answer);
            }
        }
        answer
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> OracleStats {
        *self.stats.borrow()
    }

    /// Drop all cached entries and reset statistics.
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
        *self.stats.borrow_mut() = OracleStats::default();
    }
}

/// Failure-isolation wrapper: catches panics in the wrapped algorithm and
/// degrades to "no repair" (identity) for that query.
///
/// The Shapley engines feed black boxes thousands of *weird* coalition
/// tables (mostly-null, mixed-type after random replacement); a brittle
/// third-party repairer must not take the whole explanation down. A panic
/// maps to the clean answer "this coalition repairs nothing", which is the
/// conservative reading — and the number of caught panics is reported so
/// callers can decide whether the explanation is trustworthy.
pub struct PanicGuard<A> {
    inner: A,
    panics: std::cell::Cell<usize>,
}

impl<A: RepairAlgorithm> PanicGuard<A> {
    /// Wrap an algorithm.
    pub fn new(inner: A) -> Self {
        PanicGuard {
            inner,
            panics: std::cell::Cell::new(0),
        }
    }

    /// How many repair invocations panicked so far.
    pub fn panic_count(&self) -> usize {
        self.panics.get()
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: RepairAlgorithm> RepairAlgorithm for PanicGuard<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        // The panic counter (a Cell) is only touched after the unwind is
        // caught, so asserting unwind safety over the closure is sound.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.repair(dcs, dirty)
        }));
        match result {
            Ok(r) => r,
            Err(_) => {
                self.panics.set(self.panics.get() + 1);
                RepairResult {
                    clean: dirty.clone(),
                    changes: Vec::new(),
                }
            }
        }
    }
}

/// A trivial repair algorithm that changes nothing — the identity black box.
/// Useful as a degenerate case in tests: every Shapley value it induces is 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpRepair;

impl RepairAlgorithm for NoOpRepair {
    fn name(&self) -> &str {
        "noop"
    }

    fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        RepairResult {
            clean: dirty.clone(),
            changes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use trex_table::{AttrId, TableBuilder};

    /// Test double: repairs cell (0,0) to "FIXED" iff at least `need` DCs
    /// are passed; counts invocations.
    struct CountingRepair {
        need: usize,
        calls: Cell<usize>,
    }

    impl RepairAlgorithm for CountingRepair {
        fn name(&self) -> &str {
            "counting"
        }
        fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            self.calls.set(self.calls.get() + 1);
            let mut clean = dirty.clone();
            if dcs.len() >= self.need {
                clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            }
            RepairResult::from_tables(dirty, clean)
        }
    }

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["A"])
            .str_row(["dirty"])
            .build()
    }

    fn dc() -> DenialConstraint {
        trex_constraints::parse_dc("!(t1.A != t2.A)").unwrap()
    }

    #[test]
    fn repairs_cell_to_checks_target() {
        let alg = CountingRepair {
            need: 1,
            calls: Cell::new(0),
        };
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        assert!(repairs_cell_to(
            &alg,
            &[dc()],
            &t,
            cell,
            &Value::str("FIXED")
        ));
        assert!(!repairs_cell_to(
            &alg,
            &[dc()],
            &t,
            cell,
            &Value::str("OTHER")
        ));
        assert!(!repairs_cell_to(&alg, &[], &t, cell, &Value::str("FIXED")));
    }

    #[test]
    fn already_target_counts_as_not_repaired() {
        let alg = NoOpRepair;
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        assert!(!repairs_cell_to(&alg, &[], &t, cell, &Value::str("dirty")));
    }

    #[test]
    fn cached_oracle_deduplicates() {
        let alg = CountingRepair {
            need: 1,
            calls: Cell::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..5 {
            assert!(oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED")));
        }
        assert_eq!(alg.calls.get(), 1);
        let stats = oracle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cache_keys_distinguish_inputs() {
        let alg = CountingRepair {
            need: 1,
            calls: Cell::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let mut t2 = t.clone();
        t2.set(CellRef::new(0, AttrId(0)), Value::str("other"));
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        let _ = oracle.repairs_cell_to(&dcs, &t2, cell, &Value::str("FIXED"));
        let _ = oracle.repairs_cell_to(&[], &t, cell, &Value::str("FIXED"));
        // Three distinct inputs → three misses, three underlying runs.
        assert_eq!(alg.calls.get(), 3);
        assert_eq!(oracle.stats().misses, 3);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let alg = CountingRepair {
            need: 1,
            calls: Cell::new(0),
        };
        let oracle = CachedOracle::with_capacity(&alg, 0);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let dcs = [dc()];
        for _ in 0..3 {
            let _ = oracle.repairs_cell_to(&dcs, &t, cell, &Value::str("FIXED"));
        }
        assert_eq!(alg.calls.get(), 3);
        assert_eq!(oracle.stats().hits, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let alg = CountingRepair {
            need: 1,
            calls: Cell::new(0),
        };
        let oracle = CachedOracle::new(&alg);
        let t = table();
        let cell = CellRef::new(0, AttrId(0));
        let _ = oracle.repairs_cell_to(&[dc()], &t, cell, &Value::str("FIXED"));
        oracle.clear();
        assert_eq!(oracle.stats(), OracleStats::default());
        let _ = oracle.repairs_cell_to(&[dc()], &t, cell, &Value::str("FIXED"));
        assert_eq!(alg.calls.get(), 2);
    }

    /// A repairer that panics whenever the table contains a null — the kind
    /// of brittleness coalition tables provoke.
    struct Brittle;

    impl RepairAlgorithm for Brittle {
        fn name(&self) -> &str {
            "brittle"
        }
        fn repair(&self, _dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            assert!(
                dirty.cells_with_values().all(|(_, v)| !v.is_null()),
                "brittle repairer cannot handle nulls"
            );
            let mut clean = dirty.clone();
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            RepairResult::from_tables(dirty, clean)
        }
    }

    #[test]
    fn panic_guard_degrades_to_identity() {
        let guard = PanicGuard::new(Brittle);
        let ok = table();
        let r = guard.repair(&[], &ok);
        assert_eq!(r.changes.len(), 1);
        assert_eq!(guard.panic_count(), 0);

        let mut with_null = table();
        with_null.set(CellRef::new(0, AttrId(0)), Value::Null);
        // Silence the default panic hook for this expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = guard.repair(&[], &with_null);
        std::panic::set_hook(prev);
        assert!(r.changes.is_empty());
        assert_eq!(r.clean, with_null);
        assert_eq!(guard.panic_count(), 1);
        assert_eq!(guard.name(), "brittle");
        assert_eq!(guard.inner().name(), "brittle");
    }

    #[test]
    fn noop_repair_is_identity() {
        let t = table();
        let r = NoOpRepair.repair(&[dc()], &t);
        assert_eq!(r.clean, t);
        assert!(r.changes.is_empty());
        assert_eq!(NoOpRepair.name(), "noop");
    }

    #[test]
    fn repair_result_change_at() {
        let t = table();
        let mut clean = t.clone();
        let cell = CellRef::new(0, AttrId(0));
        clean.set(cell, Value::str("x"));
        let r = RepairResult::from_tables(&t, clean);
        assert_eq!(r.changes.len(), 1);
        assert!(r.change_at(cell).is_some());
        assert_eq!(r.change_at(cell).unwrap().to, Value::str("x"));
    }
}
