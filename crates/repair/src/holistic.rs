//! Holistic repair baseline.
//!
//! In the style of Chu, Ilyas & Papotti's holistic cleaning ([3] in the
//! paper's references): instead of repairing constraint-by-constraint, build
//! the *conflict hypergraph* — every violation of any DC is a hyperedge over
//! the cells it implicates — and repair a (greedy, minimal) vertex cover of
//! it, choosing for each covered cell the replacement value that removes the
//! most remaining violations.
//!
//! The greedy loop:
//! 1. find all violations of all DCs; stop if none;
//! 2. pick the cell appearing in the most violations (ties: smaller cell);
//! 3. try every candidate value for it (the distinct non-null values of its
//!    column) and keep the one minimizing the number of violations that
//!    still involve any cell, tie-broken toward the most frequent value;
//! 4. if no candidate strictly reduces the violation count, *freeze* the
//!    cell (never reconsidered) to guarantee termination; else apply and
//!    loop.

use crate::traits::{RepairAlgorithm, RepairResult};
use std::collections::{HashMap, HashSet};
use trex_constraints::{find_all_violations_par, DenialConstraint};
use trex_table::{CellRef, Table, Value};

/// The holistic (conflict-hypergraph vertex-cover) repairer.
#[derive(Debug, Clone)]
pub struct HolisticRepair {
    max_steps: usize,
    threads: usize,
}

impl Default for HolisticRepair {
    fn default() -> Self {
        // Each step either fixes or freezes a cell, so #cells steps suffice;
        // this is a generous static bound for pathological inputs.
        HolisticRepair {
            max_steps: 10_000,
            threads: 1,
        }
    }
}

impl HolisticRepair {
    /// Build with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the step bound.
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps.max(1);
        self
    }

    /// Detect violations on `threads` workers (must be ≥ 1; resolve user
    /// input with `trex_shapley::resolve_threads` first). Detection output
    /// is identical at any thread count, so the repair result never depends
    /// on it — the greedy loop's violation counts drive *every* step, which
    /// makes this engine the biggest beneficiary of the parallel scan.
    #[deprecated(note = "build an ExecConfig and pass it to with_exec")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
        self.threads = threads;
        self
    }

    /// Count violations on `table`.
    fn violation_count(&self, dcs: &[DenialConstraint], table: &Table) -> usize {
        find_all_violations_par(dcs, table, self.threads).len()
    }

    /// The most conflicted cells not yet frozen (all cells tied at the
    /// maximum violation count, in ascending cell order).
    fn hottest_cells(
        &self,
        dcs: &[DenialConstraint],
        table: &Table,
        frozen: &HashSet<CellRef>,
    ) -> Vec<CellRef> {
        let mut counts: HashMap<CellRef, usize> = HashMap::new();
        for v in find_all_violations_par(dcs, table, self.threads) {
            for c in v.cells {
                if !frozen.contains(&c) {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
        }
        let Some(max) = counts.values().copied().max() else {
            return Vec::new();
        };
        let mut cells: Vec<CellRef> = counts
            .into_iter()
            .filter(|(_, n)| *n == max)
            .map(|(c, _)| c)
            .collect();
        cells.sort();
        cells
    }

    /// Candidate replacement values for a cell: the distinct non-null values
    /// of its column, most frequent first (deterministic order).
    fn candidates(table: &Table, cell: CellRef) -> Vec<Value> {
        let stats = trex_table::ColumnStats::from_column(table, cell.attr);
        stats
            .ranked()
            .into_iter()
            .map(|(v, _)| v.clone())
            .filter(|v| v != table.get(cell))
            .collect()
    }
}

impl RepairAlgorithm for HolisticRepair {
    fn name(&self) -> &str {
        "holistic"
    }

    fn with_exec(mut self, cfg: &trex_shapley::ExecConfig) -> Self {
        self.threads = cfg.threads();
        self
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        let resolved: Vec<DenialConstraint> = dcs
            .iter()
            .map(|dc| {
                dc.resolved(dirty.schema())
                    .unwrap_or_else(|e| panic!("cannot resolve constraint: {e}"))
            })
            .collect();
        let mut table = dirty.clone();
        let mut frozen: HashSet<CellRef> = HashSet::new();
        for _ in 0..self.max_steps {
            let current = self.violation_count(&resolved, &table);
            if current == 0 {
                break;
            }
            let hottest = self.hottest_cells(&resolved, &table, &frozen);
            if hottest.is_empty() {
                break; // every conflicted cell is frozen
            }
            // Among the tied hottest cells, take the (cell, candidate) pair
            // that minimizes the remaining violation count; candidates are
            // tried most-frequent-first, so equal counts keep the earlier
            // (more frequent) value.
            let mut best: Option<(usize, CellRef, Value)> = None;
            for &cell in &hottest {
                let original = table.get(cell).clone();
                for cand in Self::candidates(&table, cell) {
                    table.set(cell, cand.clone());
                    let count = self.violation_count(&resolved, &table);
                    let better = match &best {
                        None => count <= current,
                        Some((b, _, _)) => count < *b,
                    };
                    if better {
                        best = Some((count, cell, cand));
                    }
                }
                table.set(cell, original);
            }
            match best {
                Some((count, cell, winner)) => {
                    table.set(cell, winner);
                    if count >= current {
                        // Plateau move: trading one constraint's violations
                        // for another's can be necessary (a wrong City must
                        // first become right before the Country conflict it
                        // hides shows up), but to guarantee termination a
                        // cell moved without strict improvement is frozen.
                        frozen.insert(cell);
                    }
                }
                None => {
                    // No candidates at all at any hottest cell: freeze them
                    // so the loop makes progress.
                    frozen.extend(hottest);
                }
            }
        }
        RepairResult::from_tables(dirty, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::{is_clean, parse_dcs};
    use trex_table::TableBuilder;

    fn dcs() -> Vec<DenialConstraint> {
        parse_dcs(
            "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
             C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
        )
        .unwrap()
    }

    fn resolved(t: &Table) -> Vec<DenialConstraint> {
        dcs()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect()
    }

    fn dirty() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .build()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_threads_matches_with_exec() {
        // The legacy builder must configure exactly what with_exec does.
        let cfg = trex_shapley::ExecConfig::new().with_threads(4);
        let a = HolisticRepair::new()
            .with_threads(4)
            .repair(&dcs(), &dirty());
        let b = HolisticRepair::new()
            .with_exec(&cfg)
            .repair(&dcs(), &dirty());
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn eliminates_all_violations() {
        let r = HolisticRepair::new().repair(&dcs(), &dirty());
        assert!(is_clean(&resolved(&r.clean), &r.clean));
        let city = r.clean.schema().id("City");
        assert_eq!(r.clean.value(2, city), &Value::str("Madrid"));
        assert_eq!(r.changes.len(), 1);
    }

    #[test]
    fn minimal_repair_touches_the_hot_cell() {
        // Row 2's Capital participates in 4 ordered violations (2 with each
        // twin); the twins' Madrids see 2 each. So Capital is the vertex
        // chosen, not the Madrids.
        let r = HolisticRepair::new().repair(&dcs(), &dirty());
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.changes[0].cell.row, 2);
    }

    #[test]
    fn clean_input_untouched() {
        let clean = HolisticRepair::new().repair(&dcs(), &dirty()).clean;
        let again = HolisticRepair::new().repair(&dcs(), &clean);
        assert!(again.changes.is_empty());
    }

    #[test]
    fn cross_constraint_interaction() {
        // Fixing City=Capital→Madrid creates a C2 class where Countries
        // disagree; the greedy loop must continue and fix that too.
        let t = TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Narnia"])
            .build();
        let r = HolisticRepair::new().repair(&dcs(), &t);
        assert!(is_clean(&resolved(&r.clean), &r.clean));
        let country = t.schema().id("Country");
        assert_eq!(r.clean.value(2, country), &Value::str("Spain"));
    }

    #[test]
    fn unsolvable_conflicts_freeze_and_terminate() {
        // Two-row disagreement where every replacement keeps exactly one
        // violation pair alive is actually solvable (set equal); craft a
        // truly tight case: single column, DC forbids any two distinct
        // values, but also forbids the only shared value via a unary DC.
        let t = TableBuilder::new()
            .str_columns(["A"])
            .str_row(["x"])
            .str_row(["y"])
            .build();
        let dcs = parse_dcs(
            "P: !(t1.A != t2.A)\n\
             Q: !(t1.A = \"x\")\n\
             R: !(t1.A = \"y\")\n",
        )
        .unwrap();
        // Candidates are only {x, y}; every configuration violates
        // something, so the repair freezes and terminates.
        let r = HolisticRepair::new().repair(&dcs, &t);
        assert_eq!(r.clean.num_rows(), 2);
    }

    #[test]
    fn name_reported() {
        assert_eq!(HolisticRepair::new().name(), "holistic");
    }

    #[test]
    fn threaded_repair_is_identical_to_serial() {
        let serial = HolisticRepair::new().repair(&dcs(), &dirty());
        for threads in [2usize, 4] {
            let par = HolisticRepair::new()
                .with_exec(&trex_shapley::ExecConfig::new().with_threads(threads))
                .repair(&dcs(), &dirty());
            assert_eq!(serial.clean, par.clean, "threads {threads}");
            assert_eq!(serial.changes, par.changes);
        }
    }
}
