//! The paper's Algorithm 1: a simple rule-based repairer.
//!
//! Algorithm 1 associates each denial constraint with a *fix action*: "if
//! tuple `t` has a contradiction according to `Cᵢ` then attribute `A` will
//! be modified to the most common value" (or the most probable value
//! conditioned on another attribute of `t`). [`RuleRepair`] generalizes this
//! scheme to arbitrary constraint/action lists.
//!
//! # Semantics (pinned down where the paper is informal)
//!
//! * Rules are applied **in constraint order**; each rule sees the table as
//!   left by earlier rules. This is what makes the paper's Example 1.1 work:
//!   "C1 caused the change of *Capital* to *Madrid* first and then C2 caused
//!   the change of the value in the Country cell".
//! * Within one rule application, the violating rows are computed on a
//!   snapshot and all fixes derive from **that snapshot** (simultaneous
//!   application): fixes of one row never feed into another row's statistics
//!   in the same step, keeping the result independent of row order.
//! * Modes are computed over **all rows** (the row under repair votes too,
//!   matching `argmax_c P[...]` literally), but ties break **away from the
//!   row's current value**: the rule fired because that value is suspicious,
//!   and switching is the only resolution that can remove the violation.
//!   This is what makes single-witness coalitions in the cell game behave
//!   as Example 2.4 expects — the partner's value beats the dirty value
//!   instead of tying with it. Remaining ties break toward the smaller
//!   value, keeping the algorithm a deterministic function of its input.
//! * Nulls never vote and are never used as a repair value; a rule with no
//!   non-null evidence is skipped for that row.
//! * By default the rule list is applied in **one sequential pass**, exactly
//!   as Algorithm 1 is written; an optional round bound re-applies the pass
//!   until a fixpoint. (Degenerate 50/50 conflicts swap values every round
//!   under the tie-break, so fixpoint mode bounds rounds and stays
//!   deterministic.)

use crate::traits::{RepairAlgorithm, RepairResult};
use std::collections::HashMap;
use trex_constraints::{find_violations_par, DenialConstraint};
use trex_table::{AttrId, CellRef, Table, Value};

/// What to do to a violating tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum FixAction {
    /// Set `attr` to the most common value of that column
    /// (`argmax_c P[attr = c]`), with ties breaking away from the repaired
    /// row's current value.
    MostCommon {
        /// Attribute to overwrite.
        attr: String,
    },
    /// Set `attr` to the most probable value given the row's value of
    /// `given` (`argmax_c P[attr = c | given = t[given]]`), with the same
    /// tie-break.
    MostCommonGiven {
        /// Attribute to overwrite.
        attr: String,
        /// Conditioning attribute (read from the violating row).
        given: String,
    },
    /// Set `attr` to a fixed constant.
    SetConstant {
        /// Attribute to overwrite.
        attr: String,
        /// The value to write.
        value: Value,
    },
}

impl FixAction {
    fn target_attr(&self) -> &str {
        match self {
            FixAction::MostCommon { attr }
            | FixAction::MostCommonGiven { attr, .. }
            | FixAction::SetConstant { attr, .. } => attr,
        }
    }
}

/// One rule: when `constraint` (by name) is violated, apply `action` to each
/// violating tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Name of the constraint this rule reacts to.
    pub constraint: String,
    /// The fix applied to violating tuples.
    pub action: FixAction,
}

impl Rule {
    /// Construct a rule.
    pub fn new(constraint: impl Into<String>, action: FixAction) -> Self {
        Rule {
            constraint: constraint.into(),
            action,
        }
    }
}

/// The generalized Algorithm 1.
#[derive(Debug, Clone)]
pub struct RuleRepair {
    rules: Vec<Rule>,
    max_rounds: usize,
    name: String,
    threads: usize,
}

impl RuleRepair {
    /// Default number of rounds: **one**, matching the paper's Algorithm 1,
    /// which is a single sequential pass over the constraint list (rule `i`
    /// sees the fixes of rules `1..i−1`; that sequencing is all Example 1.1
    /// needs). More rounds can be requested via
    /// [`RuleRepair::with_max_rounds`]; note that simultaneous 1-vs-1 tie
    /// repairs *swap* the two values, so even round counts can undo them.
    pub const DEFAULT_MAX_ROUNDS: usize = 1;

    /// Build a repairer from rules (applied in the order of the constraint
    /// list passed to [`RepairAlgorithm::repair`], not rule order).
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleRepair {
            rules,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            name: "algorithm1".to_string(),
            threads: 1,
        }
    }

    /// Override the fixpoint round bound.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Detect violations on `threads` workers (must be ≥ 1; resolve user
    /// input with `trex_shapley::resolve_threads` first). The repair result
    /// is identical at any thread count — parallel detection returns the
    /// serial witness list — so this is purely a wall-time knob.
    #[deprecated(note = "build an ExecConfig and pass it to with_exec")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
        self.threads = threads;
        self
    }

    /// Override the reported name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The rule attached to a constraint name, if any.
    pub fn rule_for(&self, constraint: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.constraint == constraint)
    }

    /// Render the rule list in the [`RuleRepair::parse_rules`] syntax, one
    /// rule per line — `parse_rules(x.rules_text())` reconstructs the same
    /// rules. This is how `trex datagen` exports a scenario's Algorithm 1
    /// for the `--engine rules` pipeline.
    pub fn rules_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for rule in &self.rules {
            let _ = match &rule.action {
                FixAction::MostCommon { attr } => {
                    writeln!(out, "{}: {attr} <- most_common", rule.constraint)
                }
                FixAction::MostCommonGiven { attr, given } => {
                    writeln!(
                        out,
                        "{}: {attr} <- most_common_given({given})",
                        rule.constraint
                    )
                }
                FixAction::SetConstant { attr, value } => {
                    let rendered = match value {
                        Value::Int(n) => n.to_string(),
                        Value::Float(x) => x.to_string(),
                        other => format!("\"{other}\""),
                    };
                    writeln!(out, "{}: {attr} <- const({rendered})", rule.constraint)
                }
            };
        }
        out
    }

    /// Pick the argmax of `counts` with the repair tie-break: highest count;
    /// ties prefer values *different* from `current`; remaining ties prefer
    /// the smaller value.
    fn pick_mode(counts: HashMap<&Value, usize>, current: &Value) -> Option<Value> {
        counts
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| {
                ca.cmp(cb)
                    .then_with(|| (*va != current).cmp(&(*vb != current)))
                    .then_with(|| vb.cmp(va))
            })
            .map(|(v, _)| v.clone())
    }

    /// Mode of `attr` over all rows of `table`, with the repair tie-break
    /// relative to `current` (the repaired row's present value).
    fn mode(table: &Table, attr: AttrId, current: &Value) -> Option<Value> {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for r in 0..table.num_rows() {
            let v = table.value(r, attr);
            if v.is_concrete() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        Self::pick_mode(counts, current)
    }

    /// Conditional mode of `attr` given `given = g` over all rows, with the
    /// repair tie-break relative to `current`.
    fn conditional_mode(
        table: &Table,
        attr: AttrId,
        given: AttrId,
        g: &Value,
        current: &Value,
    ) -> Option<Value> {
        if !g.is_concrete() {
            return None;
        }
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for r in 0..table.num_rows() {
            if !table.value(r, given).sql_eq(g) {
                continue;
            }
            let v = table.value(r, attr);
            if v.is_concrete() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        Self::pick_mode(counts, current)
    }

    /// Apply one rule to the violations of one constraint on `table`.
    /// Returns the number of cells changed.
    fn apply_rule(&self, dc: &DenialConstraint, action: &FixAction, table: &mut Table) -> usize {
        let snapshot = table.clone();
        let mut rows: Vec<usize> = Vec::new();
        for v in find_violations_par(dc, &snapshot, self.threads) {
            for r in [Some(v.row1), v.row2].into_iter().flatten() {
                if !rows.contains(&r) {
                    rows.push(r);
                }
            }
        }
        rows.sort_unstable();

        let Some(attr) = snapshot.schema().resolve(action.target_attr()) else {
            return 0;
        };
        let mut changed = 0;
        for r in rows {
            let current = snapshot.value(r, attr).clone();
            let new_value = match action {
                FixAction::MostCommon { .. } => Self::mode(&snapshot, attr, &current),
                FixAction::MostCommonGiven { given, .. } => {
                    let Some(given_id) = snapshot.schema().resolve(given) else {
                        continue;
                    };
                    let g = snapshot.value(r, given_id).clone();
                    Self::conditional_mode(&snapshot, attr, given_id, &g, &current)
                }
                FixAction::SetConstant { value, .. } => Some(value.clone()),
            };
            if let Some(v) = new_value {
                let cell = CellRef::new(r, attr);
                if table.get(cell) != &v {
                    table.set(cell, v);
                    changed += 1;
                }
            }
        }
        changed
    }
}

/// Error from [`RuleRepair::parse_rules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rule parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for RuleParseError {}

impl RuleRepair {
    /// Parse a rule list from text, one rule per line:
    ///
    /// ```text
    /// # constraint: Attr <- action
    /// C1: City <- most_common
    /// C2: Country <- most_common_given(City)
    /// U:  City <- const("Madrid")
    /// ```
    ///
    /// Blank lines and `#` comments are skipped.
    pub fn parse_rules(input: &str) -> Result<RuleRepair, RuleParseError> {
        let mut rules = Vec::new();
        for (i, raw) in input.lines().enumerate() {
            let line = i + 1;
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let err = |message: &str| RuleParseError {
                line,
                message: message.to_string(),
            };
            let (constraint, rest) = text.split_once(':').ok_or_else(|| err("missing ':'"))?;
            let (attr, action) = rest.split_once("<-").ok_or_else(|| err("missing '<-'"))?;
            let constraint = constraint.trim().to_string();
            let attr = attr.trim().to_string();
            let action = action.trim();
            let fix = if action == "most_common" {
                FixAction::MostCommon { attr }
            } else if let Some(arg) = action
                .strip_prefix("most_common_given(")
                .and_then(|s| s.strip_suffix(')'))
            {
                FixAction::MostCommonGiven {
                    attr,
                    given: arg.trim().to_string(),
                }
            } else if let Some(arg) = action
                .strip_prefix("const(")
                .and_then(|s| s.strip_suffix(')'))
            {
                let arg = arg.trim();
                let value = if let Some(s) = arg.strip_prefix('"').and_then(|s| s.strip_suffix('"'))
                {
                    Value::str(s)
                } else if let Ok(n) = arg.parse::<i64>() {
                    Value::Int(n)
                } else if let Ok(x) = arg.parse::<f64>() {
                    Value::Float(x)
                } else {
                    return Err(err("const() takes a quoted string or a number"));
                };
                FixAction::SetConstant { attr, value }
            } else {
                return Err(err(
                    "unknown action (expected most_common, most_common_given(Attr), or const(v))",
                ));
            };
            rules.push(Rule::new(constraint, fix));
        }
        Ok(RuleRepair::new(rules))
    }
}

impl RepairAlgorithm for RuleRepair {
    fn name(&self) -> &str {
        &self.name
    }

    fn with_exec(mut self, cfg: &trex_shapley::ExecConfig) -> Self {
        self.threads = cfg.threads();
        self
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        let resolved: Vec<DenialConstraint> = dcs
            .iter()
            .map(|dc| {
                dc.resolved(dirty.schema())
                    .unwrap_or_else(|e| panic!("cannot resolve constraint: {e}"))
            })
            .collect();
        let mut table = dirty.clone();
        for _ in 0..self.max_rounds {
            let mut changed = 0;
            for dc in &resolved {
                if let Some(rule) = self.rule_for(&dc.name) {
                    changed += self.apply_rule(dc, &rule.action, &mut table);
                }
            }
            if changed == 0 {
                break;
            }
        }
        RepairResult::from_tables(dirty, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::parse_dcs;
    use trex_table::TableBuilder;

    /// The paper's running example, reduced: Team→City (C1), City→Country
    /// (C2), League→Country (C3).
    fn dcs() -> Vec<DenialConstraint> {
        parse_dcs(
            "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
             C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
             C3: !(t1.League = t2.League & t1.Country != t2.Country)\n",
        )
        .unwrap()
    }

    fn rules() -> RuleRepair {
        RuleRepair::new(vec![
            Rule::new(
                "C1",
                FixAction::MostCommon {
                    attr: "City".into(),
                },
            ),
            Rule::new(
                "C2",
                FixAction::MostCommonGiven {
                    attr: "Country".into(),
                    given: "City".into(),
                },
            ),
            Rule::new(
                "C3",
                FixAction::MostCommon {
                    attr: "Country".into(),
                },
            ),
        ])
    }

    fn dirty() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country", "League"])
            .str_row(["Barcelona", "Barcelona", "Spain", "La Liga"])
            .str_row(["Atletico Madrid", "Madrid", "Spain", "La Liga"])
            .str_row(["Real Madrid", "Madrid", "Spain", "La Liga"])
            .str_row(["Real Madrid", "Capital", "España", "La Liga"])
            .build()
    }

    #[test]
    fn repairs_the_running_example() {
        let r = rules().repair(&dcs(), &dirty());
        let t = &r.clean;
        let city = t.schema().id("City");
        let country = t.schema().id("Country");
        assert_eq!(t.value(3, city), &Value::str("Madrid"));
        assert_eq!(t.value(3, country), &Value::str("Spain"));
        assert_eq!(r.changes.len(), 2);
    }

    #[test]
    fn c1_fires_before_c2_sequentially() {
        // Drop C3: the Country repair then depends on C1 having fixed City.
        let two = &dcs()[..2];
        let r = rules().repair(two, &dirty());
        let t = &r.clean;
        assert_eq!(t.value(3, t.schema().id("City")), &Value::str("Madrid"));
        assert_eq!(t.value(3, t.schema().id("Country")), &Value::str("Spain"));
    }

    #[test]
    fn c2_alone_cannot_repair() {
        // "Capital" matches no other city, so City→Country never fires.
        let only_c2 = &dcs()[1..2];
        let r = rules().repair(only_c2, &dirty());
        assert!(r.changes.is_empty());
    }

    #[test]
    fn c3_alone_repairs_country_but_not_city() {
        let only_c3 = &dcs()[2..3];
        let r = rules().repair(only_c3, &dirty());
        let t = &r.clean;
        assert_eq!(t.value(3, t.schema().id("City")), &Value::str("Capital"));
        assert_eq!(t.value(3, t.schema().id("Country")), &Value::str("Spain"));
    }

    #[test]
    fn clean_table_is_a_fixpoint() {
        let r = rules().repair(&dcs(), &dirty());
        let again = rules().repair(&dcs(), &r.clean);
        assert!(again.changes.is_empty());
        assert_eq!(again.clean, r.clean);
    }

    #[test]
    fn empty_constraint_set_changes_nothing() {
        let r = rules().repair(&[], &dirty());
        assert!(r.changes.is_empty());
    }

    #[test]
    fn ties_break_away_from_the_current_value() {
        // Two rows conflict 1-vs-1: each row's repair prefers the *other*
        // value (the current one is suspicious), so a single round swaps
        // them. This is the behaviour Example 2.4's single-witness
        // coalitions rely on: the witness's value beats the dirty value.
        let t = TableBuilder::new()
            .str_columns(["League", "Country"])
            .str_row(["L", "Spain"])
            .str_row(["L", "España"])
            .build();
        let dcs = parse_dcs("C3: !(t1.League = t2.League & t1.Country != t2.Country)").unwrap();
        let alg = RuleRepair::new(vec![Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        )])
        .with_max_rounds(1);
        let r = alg.repair(&dcs, &t);
        let country = t.schema().id("Country");
        assert_eq!(r.clean.value(0, country), &Value::str("España"));
        assert_eq!(r.clean.value(1, country), &Value::str("Spain"));
        // And the unbounded version is still deterministic.
        let full = RuleRepair::new(alg.rules.clone());
        assert_eq!(full.repair(&dcs, &t).clean, full.repair(&dcs, &t).clean);
    }

    #[test]
    fn majority_beats_tie_break() {
        let t = TableBuilder::new()
            .str_columns(["League", "Country"])
            .str_row(["L", "Spain"])
            .str_row(["L", "Spain"])
            .str_row(["L", "España"])
            .build();
        let dcs = parse_dcs("C3: !(t1.League = t2.League & t1.Country != t2.Country)").unwrap();
        let alg = RuleRepair::new(vec![Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        )]);
        let r = alg.repair(&dcs, &t);
        assert_eq!(r.changes.len(), 1);
        assert_eq!(
            r.clean.value(2, t.schema().id("Country")),
            &Value::str("Spain")
        );
    }

    #[test]
    fn null_evidence_is_skipped() {
        let t = TableBuilder::new()
            .str_columns(["League", "Country"])
            .str_row(["L", "Spain"])
            .str_row(["L", ""])
            .build();
        // Make row1's Country null, row0 vs row1 do not even violate.
        let mut t = t;
        t.set(CellRef::new(1, t.schema().id("Country")), Value::Null);
        let dcs = parse_dcs("C3: !(t1.League = t2.League & t1.Country != t2.Country)").unwrap();
        let alg = RuleRepair::new(vec![Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        )]);
        let r = alg.repair(&dcs, &t);
        assert!(r.changes.is_empty());
    }

    #[test]
    fn set_constant_action() {
        let t = TableBuilder::new()
            .str_columns(["City"])
            .str_row(["Capital"])
            .str_row(["Madrid"])
            .build();
        let dcs = parse_dcs("U: !(t1.City = \"Capital\")").unwrap();
        let alg = RuleRepair::new(vec![Rule::new(
            "U",
            FixAction::SetConstant {
                attr: "City".into(),
                value: Value::str("Madrid"),
            },
        )]);
        let r = alg.repair(&dcs, &t);
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.clean.value(0, AttrId(0)), &Value::str("Madrid"));
    }

    #[test]
    fn constraints_without_rules_are_ignored() {
        let r = RuleRepair::new(vec![]).repair(&dcs(), &dirty());
        assert!(r.changes.is_empty());
    }

    #[test]
    fn conditional_with_null_given_is_skipped() {
        let mut t = dirty();
        let city = t.schema().id("City");
        t.set(CellRef::new(3, city), Value::Null);
        // C2 can't condition on a null City; C1's violation also vanishes
        // (null city). Only C3 fires.
        let r = rules().repair(&dcs(), &t);
        let country = t.schema().id("Country");
        assert_eq!(r.clean.value(3, country), &Value::str("Spain"));
        // City stays null: C1 has no violation to react to.
        assert_eq!(r.clean.value(3, city), &Value::Null);
    }

    #[test]
    fn max_rounds_bounds_oscillation() {
        let alg = rules().with_max_rounds(1);
        // One round is enough for the running example anyway.
        let r = alg.repair(&dcs(), &dirty());
        assert_eq!(r.changes.len(), 2);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(rules().name(), "algorithm1");
        assert_eq!(rules().with_name("alg1-variant").name(), "alg1-variant");
    }

    #[test]
    fn parse_rules_round_trip() {
        let alg = RuleRepair::parse_rules(
            "# Algorithm 1\n\
             C1: City <- most_common\n\
             C2: Country <- most_common_given(City)\n\
             U: City <- const(\"Madrid\")\n\
             N: Place <- const(1)\n",
        )
        .unwrap();
        assert_eq!(
            alg.rule_for("C1").unwrap().action,
            FixAction::MostCommon {
                attr: "City".into()
            }
        );
        assert_eq!(
            alg.rule_for("C2").unwrap().action,
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into()
            }
        );
        assert_eq!(
            alg.rule_for("U").unwrap().action,
            FixAction::SetConstant {
                attr: "City".into(),
                value: Value::str("Madrid")
            }
        );
        assert_eq!(
            alg.rule_for("N").unwrap().action,
            FixAction::SetConstant {
                attr: "Place".into(),
                value: Value::int(1)
            }
        );
    }

    #[test]
    fn rules_text_round_trips_through_parse_rules() {
        let text = "C1: City <- most_common\n\
                    C2: Country <- most_common_given(City)\n\
                    U: City <- const(\"Madrid\")\n\
                    N: Place <- const(1)\n";
        let alg = RuleRepair::parse_rules(text).unwrap();
        assert_eq!(alg.rules_text(), text);
        let reparsed = RuleRepair::parse_rules(&alg.rules_text()).unwrap();
        for name in ["C1", "C2", "U", "N"] {
            assert_eq!(reparsed.rule_for(name), alg.rule_for(name), "{name}");
        }
    }

    #[test]
    fn parse_rules_reports_errors_with_lines() {
        let err = RuleRepair::parse_rules("C1: City <- teleport").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown action"));
        let err = RuleRepair::parse_rules("\nCity most_common").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("':'"), "{err}");
        let err = RuleRepair::parse_rules("C1: City <- const(nope)").unwrap_err();
        assert!(err.message.contains("const()"));
    }

    #[test]
    fn threaded_detection_gives_identical_repairs() {
        let serial = rules().repair(&dcs(), &dirty());
        let cfg = trex_shapley::ExecConfig::new().with_threads(4);
        let par = rules().with_exec(&cfg).repair(&dcs(), &dirty());
        assert_eq!(serial.clean, par.clean);
        assert_eq!(serial.changes, par.changes);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_threads_matches_with_exec() {
        // The legacy builder must configure exactly what with_exec does.
        let cfg = trex_shapley::ExecConfig::new().with_threads(4);
        let a = rules().with_threads(4).repair(&dcs(), &dirty());
        let b = rules().with_exec(&cfg).repair(&dcs(), &dirty());
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.changes, b.changes);
    }
}
