//! # trex-repair
//!
//! The repair algorithms of the T-REx reproduction — the *black boxes* whose
//! behaviour the explanation layer explains.
//!
//! * [`traits`] — the black-box interface: `Alg(C, T^d) → T^c` and the
//!   binary view `Alg|t[A] ∈ {0,1}` of §2.1, plus the memoizing
//!   [`CachedOracle`] (ablation A1).
//! * [`simple`] — the paper's **Algorithm 1**, generalized to rule lists
//!   (`constraint → most-common / conditional-most-probable fix`).
//! * [`holoclean`] — a from-scratch **HoloClean-style** probabilistic
//!   cleaner (error detection → domain pruning → featurization → optional
//!   perceptron calibration → ICM inference), substituting for the Python
//!   HoloClean system the demo runs on (DESIGN.md §2).
//! * [`chase`] — FD-chase baseline (Bohannon et al. style).
//! * [`holistic`] — conflict-hypergraph / vertex-cover baseline (Chu et al.
//!   style).
//! * [`metrics`] — precision/recall/F1 of repairs against injected-error
//!   ground truth (experiment A4).
//!
//! Every engine is deterministic, never adds or drops rows, and is consumed
//! by `trex` (core) only through [`RepairAlgorithm`] — swapping engines is a
//! one-line change, which is the paper's black-box claim.

#![warn(missing_docs)]

pub mod backend;
pub mod chase;
pub mod holistic;
pub mod holoclean;
pub mod metrics;
pub mod simple;
pub mod traits;

pub use backend::{CoalitionQuery, LocalBackend, MockRemoteRepair, OracleBackend, RemoteRepair};
pub use chase::FdChaseRepair;
pub use holistic::HolisticRepair;
pub use holoclean::{HoloCleanConfig, HoloCleanStyle};
pub use metrics::{cell_accuracy, score_repair, score_tables, RepairQuality};
pub use simple::{FixAction, Rule, RuleParseError, RuleRepair};
pub use traits::{
    hash_dcs, hash_value, repairs_cell_to, BatchStats, CachedOracle, NoOpRepair, OracleCache,
    OracleKey, OracleStats, PanicGuard, RepairAlgorithm, RepairResult, ShardedOracle,
};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trex_constraints::{parse_dcs, DenialConstraint};
    use trex_table::{Schema, Table, Value};

    fn dcs() -> Vec<DenialConstraint> {
        parse_dcs(
            "C1: !(t1.A = t2.A & t1.B != t2.B)\n\
             C2: !(t1.B = t2.B & t1.C != t2.C)\n",
        )
        .unwrap()
    }

    fn algs() -> Vec<Box<dyn RepairAlgorithm>> {
        vec![
            Box::new(RuleRepair::new(vec![
                Rule::new(
                    "C1",
                    FixAction::MostCommon {
                        attr: "B".to_string(),
                    },
                ),
                Rule::new(
                    "C2",
                    FixAction::MostCommonGiven {
                        attr: "C".to_string(),
                        given: "B".to_string(),
                    },
                ),
            ])),
            Box::new(HoloCleanStyle::new()),
            Box::new(FdChaseRepair::new()),
            Box::new(HolisticRepair::new()),
            Box::new(NoOpRepair),
        ]
    }

    fn arb_table() -> impl Strategy<Value = Table> {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(Value::Null), (0i64..3).prop_map(Value::Int)],
                3,
            ),
            0..6,
        )
        .prop_map(|rows| {
            Table::from_rows(
                Schema::new([
                    ("A", trex_table::DType::Int),
                    ("B", trex_table::DType::Int),
                    ("C", trex_table::DType::Int),
                ]),
                rows,
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every engine preserves table shape and only rewrites cells.
        #[test]
        fn repairs_preserve_shape(t in arb_table()) {
            for alg in algs() {
                let r = alg.repair(&dcs(), &t);
                prop_assert_eq!(r.clean.num_rows(), t.num_rows());
                prop_assert_eq!(r.clean.arity(), t.arity());
                let diff = trex_table::diff(&t, &r.clean);
                prop_assert_eq!(diff.len(), r.changes.len());
            }
        }

        /// Every engine is deterministic.
        #[test]
        fn repairs_are_deterministic(t in arb_table()) {
            for alg in algs() {
                let a = alg.repair(&dcs(), &t);
                let b = alg.repair(&dcs(), &t);
                prop_assert_eq!(a.clean, b.clean, "{} not deterministic", alg.name());
            }
        }

        /// A table with no violations is a fixpoint for every engine.
        #[test]
        fn clean_tables_are_fixpoints(t in arb_table()) {
            let resolved: Vec<DenialConstraint> = dcs()
                .iter()
                .map(|d| d.resolved(t.schema()).unwrap())
                .collect();
            if trex_constraints::is_clean(&resolved, &t) {
                for alg in algs() {
                    let r = alg.repair(&dcs(), &t);
                    prop_assert!(r.changes.is_empty(),
                        "{} changed a clean table", alg.name());
                }
            }
        }

        /// The oracle's answer is stable under caching.
        #[test]
        fn cached_oracle_matches_uncached(t in arb_table()) {
            if t.num_rows() == 0 { return Ok(()); }
            let alg = HolisticRepair::new();
            let oracle = CachedOracle::new(&alg);
            let cell = t.cells().next().unwrap();
            let target = Value::Int(0);
            let plain = repairs_cell_to(&alg, &dcs(), &t, cell, &target);
            let cached1 = oracle.repairs_cell_to(&dcs(), &t, cell, &target);
            let cached2 = oracle.repairs_cell_to(&dcs(), &t, cell, &target);
            prop_assert_eq!(plain, cached1);
            prop_assert_eq!(cached1, cached2);
        }
    }
}
