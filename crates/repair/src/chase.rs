//! FD-chase repair baseline.
//!
//! In the style of Bohannon et al. ([1] in the paper's references): for each
//! functional dependency `X → Y`, group rows into equivalence classes by
//! their `X` value and force every class to agree on `Y` by rewriting the
//! minority to the class's plurality value. Classes are chased to a fixpoint
//! (a fix under one FD can merge or split classes of another).
//!
//! Only the FD-shaped subset of the constraint set is used; other DCs are
//! ignored (this is a *baseline*, and its blindness to non-FD constraints is
//! exactly what experiment A4 measures). Within a class, the plurality vote
//! breaks ties toward the smaller value for determinism.

use crate::traits::{RepairAlgorithm, RepairResult};
use std::collections::HashMap;
use trex_constraints::{fds_of, DenialConstraint, FunctionalDependency};
use trex_table::{AttrId, CellRef, Table, Value};

/// The FD-chase repairer.
#[derive(Debug, Clone)]
pub struct FdChaseRepair {
    max_rounds: usize,
}

impl Default for FdChaseRepair {
    fn default() -> Self {
        FdChaseRepair { max_rounds: 8 }
    }
}

impl FdChaseRepair {
    /// Build with the default round bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the fixpoint round bound.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// One chase step for one FD. Returns number of changed cells.
    fn chase_fd(fd: &FunctionalDependency, table: &mut Table) -> usize {
        let schema = table.schema().clone();
        let lhs: Option<Vec<AttrId>> = fd.lhs.iter().map(|a| schema.resolve(a)).collect();
        let (Some(lhs), Some(rhs)) = (lhs, schema.resolve(&fd.rhs)) else {
            return 0;
        };
        // Group rows by lhs key (null keys are out, as in DC semantics).
        let mut classes: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for r in 0..table.num_rows() {
            let mut key = Vec::with_capacity(lhs.len());
            let mut has_null = false;
            for a in &lhs {
                let v = table.value(r, *a);
                if !v.is_concrete() {
                    has_null = true;
                    break;
                }
                key.push(v.clone());
            }
            if !has_null {
                classes.entry(key).or_default().push(r);
            }
        }
        let mut changed = 0;
        let mut groups: Vec<Vec<usize>> = classes.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        for rows in groups {
            if rows.len() < 2 {
                continue;
            }
            // Plurality of non-null rhs values; smaller value wins ties.
            let mut counts: HashMap<&Value, usize> = HashMap::new();
            for &r in &rows {
                let v = table.value(r, rhs);
                if v.is_concrete() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            let Some(winner) = counts
                .into_iter()
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
                .map(|(v, _)| v.clone())
            else {
                continue;
            };
            for &r in &rows {
                let cell = CellRef::new(r, rhs);
                let v = table.get(cell);
                if v.is_concrete() && v != &winner {
                    table.set(cell, winner.clone());
                    changed += 1;
                }
            }
        }
        changed
    }
}

impl RepairAlgorithm for FdChaseRepair {
    fn name(&self) -> &str {
        "fd-chase"
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        let fds = fds_of(dcs);
        let mut table = dirty.clone();
        for _ in 0..self.max_rounds {
            let mut changed = 0;
            for fd in &fds {
                changed += Self::chase_fd(fd, &mut table);
            }
            if changed == 0 {
                break;
            }
        }
        RepairResult::from_tables(dirty, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::parse_dcs;
    use trex_table::TableBuilder;

    fn dcs() -> Vec<DenialConstraint> {
        parse_dcs(
            "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
             C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
        )
        .unwrap()
    }

    fn dirty() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Spain"])
            .str_row(["Barcelona", "Barcelona", "España"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .build()
    }

    #[test]
    fn chases_to_plurality_values() {
        let r = FdChaseRepair::new().repair(&dcs(), &dirty());
        let t = &r.clean;
        let city = t.schema().id("City");
        let country = t.schema().id("Country");
        // Team=Real Madrid class: City plurality Madrid (2-1).
        assert_eq!(t.value(2, city), &Value::str("Madrid"));
        // City=Barcelona class: Country plurality Spain (2-1).
        assert_eq!(t.value(3, country), &Value::str("Spain"));
        assert_eq!(r.changes.len(), 2);
    }

    #[test]
    fn cascading_fix_across_fds() {
        // Fixing City via C1 merges row 2 into the Madrid class of C2,
        // whose Country values then must agree.
        let t = TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Narnia"])
            .build();
        let r = FdChaseRepair::new().repair(&dcs(), &t);
        let country = t.schema().id("Country");
        assert_eq!(r.clean.value(2, country), &Value::str("Spain"));
    }

    #[test]
    fn ignores_non_fd_constraints() {
        let other = parse_dcs("X: !(t1.Country = \"Narnia\")").unwrap();
        let r = FdChaseRepair::new().repair(&other, &dirty());
        assert!(r.changes.is_empty());
    }

    #[test]
    fn clean_table_is_fixpoint() {
        let r = FdChaseRepair::new().repair(&dcs(), &dirty());
        let again = FdChaseRepair::new().repair(&dcs(), &r.clean);
        assert!(again.changes.is_empty());
    }

    #[test]
    fn null_keys_and_values_skipped() {
        let mut t = dirty();
        let team = t.schema().id("Team");
        let city = t.schema().id("City");
        t.set(CellRef::new(2, team), Value::Null);
        let r = FdChaseRepair::new().repair(&dcs(), &t);
        // Row 2 left the Real Madrid class; its Capital City survives.
        assert_eq!(r.clean.value(2, city), &Value::str("Capital"));
    }

    #[test]
    fn two_row_tie_breaks_to_smaller_value() {
        let t = TableBuilder::new()
            .str_columns(["Team", "City"])
            .str_row(["X", "Beta"])
            .str_row(["X", "Alpha"])
            .build();
        let dc = parse_dcs("C: !(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        let r = FdChaseRepair::new().repair(&dc, &t);
        let city = t.schema().id("City");
        assert_eq!(r.clean.value(0, city), &Value::str("Alpha"));
        assert_eq!(r.clean.value(1, city), &Value::str("Alpha"));
    }

    #[test]
    fn name_reported() {
        assert_eq!(FdChaseRepair::new().name(), "fd-chase");
    }
}
