//! Inference and weight training for the HoloClean-style engine.
//!
//! HoloClean grounds a factor graph and runs statistical inference to pick
//! each noisy cell's most probable value. Our pruned reproduction performs
//! **iterated conditional modes** (ICM): repeatedly sweep the noisy cells,
//! setting each to the candidate with the highest feature score given the
//! current assignment of every other cell, until a sweep changes nothing or
//! the round bound is hit. For the score models used here ICM converges to
//! the same local optimum MAP inference would, and is deterministic.
//!
//! [`train_weights`] implements HoloClean's "learn from the clean part of
//! the data" idea as a structured perceptron: for every *clean* cell
//! (one not implicated in any violation), the observed value should outscore
//! every other candidate in its domain; mistakes update the weights by the
//! feature difference. This keeps the engine self-calibrating across
//! domains without external training data.

use super::domain::{cell_domain, CellDomain, CooccurrenceModel, DomainConfig};
use super::features::{featurize, FeatureVector, FeatureWeights};
use trex_constraints::DenialConstraint;
use trex_table::{CellRef, ColumnStats, Table, Value};

/// One ICM sweep over the noisy cells: set every cell to its best-scoring
/// candidate given the current table. Returns the number of cells changed.
pub fn icm_sweep(
    dcs: &[DenialConstraint],
    table: &mut Table,
    model: &CooccurrenceModel,
    domains: &[CellDomain],
    weights: &FeatureWeights,
) -> usize {
    let mut changed = 0;
    for domain in domains {
        let cell = domain.cell;
        let stats = ColumnStats::from_column(table, cell.attr);
        let mut best: Option<(f64, &Value)> = None;
        for cand in &domain.candidates {
            let f = featurize(dcs, table, model, &stats, cell, cand);
            let score = f.score(weights);
            let better = match best {
                None => true,
                Some((b, bv)) => score > b + 1e-12 || (score > b - 1e-12 && cand < bv),
            };
            if better {
                best = Some((score, cand));
            }
        }
        if let Some((_, winner)) = best {
            if table.get(cell) != winner {
                let w = winner.clone();
                table.set(cell, w);
                changed += 1;
            }
        }
    }
    changed
}

/// Configuration of the perceptron trainer.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the clean cells.
    pub epochs: usize,
    /// Learning rate.
    pub rate: f64,
    /// Domain generation used to produce negative candidates.
    pub domain: DomainConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            rate: 0.1,
            domain: DomainConfig::default(),
        }
    }
}

/// Structured-perceptron weight training on the clean cells of `table`.
///
/// `noisy` lists the cells implicated in violations; every *other* non-null
/// cell is treated as ground truth: its observed value must outscore each
/// alternative candidate. Returns the trained weights (starting from
/// `initial`). The constraint feature's weight is clamped non-negative —
/// fewer violations must never be penalized, whatever the training data
/// says.
pub fn train_weights(
    dcs: &[DenialConstraint],
    table: &Table,
    noisy: &[CellRef],
    initial: FeatureWeights,
    config: &TrainConfig,
) -> FeatureWeights {
    let model = CooccurrenceModel::build(table);
    let mut w = initial.as_array();
    let mut scratch = table.clone();
    for _ in 0..config.epochs {
        let mut mistakes = 0usize;
        for cell in table.cells() {
            if noisy.contains(&cell) || !table.get(cell).is_concrete() {
                continue;
            }
            let observed = table.get(cell).clone();
            let domain = cell_domain(table, &model, cell, &config.domain);
            if domain.candidates.len() < 2 {
                continue;
            }
            let stats = ColumnStats::from_column(table, cell.attr);
            let feats: Vec<(Value, FeatureVector)> = domain
                .candidates
                .iter()
                .map(|c| {
                    (
                        c.clone(),
                        featurize(dcs, &mut scratch, &model, &stats, cell, c),
                    )
                })
                .collect();
            let weights = FeatureWeights::from_array(w);
            let (best_v, best_f) = feats
                .iter()
                .max_by(|(va, fa), (vb, fb)| {
                    fa.score(&weights)
                        .partial_cmp(&fb.score(&weights))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| vb.cmp(va))
                })
                .expect("domain has candidates");
            if *best_v != observed {
                mistakes += 1;
                let gold = feats
                    .iter()
                    .find(|(v, _)| *v == observed)
                    .map(|(_, f)| *f)
                    .expect("observed value is always in its own domain");
                let ga = gold.as_array();
                let ba = best_f.as_array();
                for k in 0..4 {
                    w[k] += config.rate * (ga[k] - ba[k]);
                }
            }
        }
        if mistakes == 0 {
            break;
        }
    }
    // Never reward violations.
    w[2] = w[2].max(0.0);
    FeatureWeights::from_array(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::{noisy_cells, parse_dcs};
    use trex_table::TableBuilder;

    fn setup() -> (Table, Vec<DenialConstraint>) {
        let t = TableBuilder::new()
            .str_columns(["City", "Country"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Paris", "France"])
            .str_row(["Madrid", "España"])
            .build();
        let dcs: Vec<DenialConstraint> =
            parse_dcs("C2: !(t1.City = t2.City & t1.Country != t2.Country)")
                .unwrap()
                .into_iter()
                .map(|d| d.resolved(t.schema()).unwrap())
                .collect();
        (t, dcs)
    }

    #[test]
    fn icm_fixes_the_dirty_cell() {
        let (t, dcs) = setup();
        let model = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let cell = CellRef::new(4, country);
        let domains = vec![cell_domain(&t, &model, cell, &DomainConfig::default())];
        let mut work = t.clone();
        let changed = icm_sweep(
            &dcs,
            &mut work,
            &model,
            &domains,
            &FeatureWeights::default(),
        );
        assert_eq!(changed, 1);
        assert_eq!(work.get(cell), &Value::str("Spain"));
    }

    #[test]
    fn icm_is_idempotent_once_converged() {
        let (t, dcs) = setup();
        let model = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let cell = CellRef::new(4, country);
        let domains = vec![cell_domain(&t, &model, cell, &DomainConfig::default())];
        let mut work = t.clone();
        let w = FeatureWeights::default();
        let _ = icm_sweep(&dcs, &mut work, &model, &domains, &w);
        let again = icm_sweep(&dcs, &mut work, &model, &domains, &w);
        assert_eq!(again, 0);
    }

    #[test]
    fn training_does_not_break_calibration() {
        let (t, dcs) = setup();
        let noisy = noisy_cells(&dcs, &t);
        let trained = train_weights(
            &dcs,
            &t,
            &noisy,
            FeatureWeights::default(),
            &TrainConfig::default(),
        );
        // Constraint weight stays non-negative and the trained weights still
        // repair the dirty cell.
        assert!(trained.constraint >= 0.0);
        let model = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let cell = CellRef::new(4, country);
        let domains = vec![cell_domain(&t, &model, cell, &DomainConfig::default())];
        let mut work = t.clone();
        let _ = icm_sweep(&dcs, &mut work, &model, &domains, &trained);
        assert_eq!(work.get(cell), &Value::str("Spain"));
    }

    #[test]
    fn training_with_adversarial_init_recovers_on_clean_cells() {
        // Clean cells need multi-candidate domains for the perceptron to
        // see mistakes: Barcelona rows share Country=Spain with the Madrid
        // rows, so their City cells have {Barcelona, Madrid} domains.
        let t = TableBuilder::new()
            .str_columns(["City", "Country"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Barcelona", "Spain"])
            .str_row(["Barcelona", "Spain"])
            .str_row(["Madrid", "España"])
            .build();
        let dcs: Vec<DenialConstraint> =
            parse_dcs("C2: !(t1.City = t2.City & t1.Country != t2.Country)")
                .unwrap()
                .into_iter()
                .map(|d| d.resolved(t.schema()).unwrap())
                .collect();
        let noisy = noisy_cells(&dcs, &t);
        // Start with weights that prefer *changing* values (negative
        // minimality): the perceptron should push minimality back up
        // because clean cells must keep their observed values.
        let bad = FeatureWeights {
            cooccurrence: 0.0,
            minimality: -1.0,
            constraint: 0.0,
            frequency: 0.0,
        };
        let trained = train_weights(
            &dcs,
            &t,
            &noisy,
            bad,
            &TrainConfig {
                epochs: 10,
                rate: 0.5,
                domain: DomainConfig::default(),
            },
        );
        assert!(trained.minimality > bad.minimality);
    }
}
