//! A HoloClean-style probabilistic repair engine.
//!
//! The paper demonstrates T-REx on top of HoloClean [5] — "a holistic data
//! repair system that repairs the input table based on a probabilistic
//! model involving machine learning techniques" (§3). HoloClean itself is a
//! Python/PostgreSQL system; per the substitution table in DESIGN.md §2 we
//! rebuild its pipeline from scratch in Rust:
//!
//! 1. **error detection** — cells implicated in DC violations are *noisy*
//!    ([`trex_constraints::noisy_cells`]);
//! 2. **domain generation** — pruned candidate sets via co-occurrence
//!    statistics ([`domain`]);
//! 3. **featurization** — co-occurrence, minimality, constraint and
//!    frequency signals ([`features`]);
//! 4. **learning** — optional structured-perceptron calibration of the
//!    feature weights on the clean portion of the data ([`infer`]);
//! 5. **inference** — iterated conditional modes over the noisy cells
//!    ([`infer`]).
//!
//! T-REx only ever consumes this engine through the black-box
//! [`RepairAlgorithm`] interface, exactly as it consumes Algorithm 1 — that
//! interchangeability is the point of the paper, and integration test
//! `black_box_swap` exercises it.

pub mod domain;
pub mod features;
pub mod infer;

pub use domain::{cell_domain, CellDomain, CooccurrenceModel, DomainConfig};
pub use features::{featurize, FeatureVector, FeatureWeights};
pub use infer::{icm_sweep, train_weights, TrainConfig};

use crate::traits::{RepairAlgorithm, RepairResult};
use trex_constraints::{noisy_cells_par, DenialConstraint};
use trex_table::Table;

/// Configuration of the full engine.
#[derive(Debug, Clone)]
pub struct HoloCleanConfig {
    /// Domain generation parameters.
    pub domain: DomainConfig,
    /// Scoring weights (ignored if `train` is set — training starts from
    /// them).
    pub weights: FeatureWeights,
    /// Run perceptron calibration on the clean cells before inference.
    pub train: bool,
    /// Maximum ICM sweeps per detection round.
    pub max_sweeps: usize,
    /// Maximum detect→infer rounds (repairs can surface new violations).
    pub max_rounds: usize,
    /// Worker threads for violation detection (must be ≥ 1). Detection
    /// output is identical at any thread count, so this is a wall-time
    /// knob only — repair results never depend on it.
    pub threads: usize,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        HoloCleanConfig {
            domain: DomainConfig::default(),
            weights: FeatureWeights::default(),
            train: false,
            max_sweeps: 4,
            max_rounds: 2,
            threads: 1,
        }
    }
}

/// The HoloClean-style repairer.
#[derive(Debug, Clone, Default)]
pub struct HoloCleanStyle {
    config: HoloCleanConfig,
}

impl HoloCleanStyle {
    /// Build with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build with explicit configuration.
    pub fn with_config(config: HoloCleanConfig) -> Self {
        HoloCleanStyle { config }
    }

    /// Enable perceptron weight training.
    pub fn with_training(mut self) -> Self {
        self.config.train = true;
        self
    }

    /// Detect violations on `threads` workers (must be ≥ 1; resolve user
    /// input with `trex_shapley::resolve_threads` first).
    #[deprecated(note = "build an ExecConfig and pass it to with_exec")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
        self.config.threads = threads;
        self
    }
}

impl RepairAlgorithm for HoloCleanStyle {
    fn name(&self) -> &str {
        "holoclean-style"
    }

    fn with_exec(mut self, cfg: &trex_shapley::ExecConfig) -> Self {
        self.config.threads = cfg.threads();
        self
    }

    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        let resolved: Vec<DenialConstraint> = dcs
            .iter()
            .map(|dc| {
                dc.resolved(dirty.schema())
                    .unwrap_or_else(|e| panic!("cannot resolve constraint: {e}"))
            })
            .collect();
        let mut table = dirty.clone();
        for _ in 0..self.config.max_rounds {
            // 1. error detection on the current table.
            let noisy = noisy_cells_par(&resolved, &table, self.config.threads);
            if noisy.is_empty() {
                break;
            }
            // 2. statistics + domains from the current snapshot.
            let model = CooccurrenceModel::build(&table);
            let domains: Vec<CellDomain> = noisy
                .iter()
                .map(|c| cell_domain(&table, &model, *c, &self.config.domain))
                .collect();
            // 3./4. weights, optionally trained on the clean cells.
            let weights = if self.config.train {
                train_weights(
                    &resolved,
                    &table,
                    &noisy,
                    self.config.weights,
                    &TrainConfig {
                        domain: self.config.domain,
                        ..TrainConfig::default()
                    },
                )
            } else {
                self.config.weights
            };
            // 5. ICM inference.
            let mut any_change = false;
            for _ in 0..self.config.max_sweeps {
                let changed = icm_sweep(&resolved, &mut table, &model, &domains, &weights);
                any_change |= changed > 0;
                if changed == 0 {
                    break;
                }
            }
            if !any_change {
                break;
            }
        }
        RepairResult::from_tables(dirty, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::{is_clean, parse_dcs};
    use trex_table::{CellRef, TableBuilder, Value};

    fn dcs() -> Vec<DenialConstraint> {
        parse_dcs(
            "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
             C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
        )
        .unwrap()
    }

    fn dirty() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Barcelona", "Barcelona", "España"])
            .build()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_threads_matches_with_exec() {
        // The legacy builder must configure exactly what with_exec does.
        let cfg = trex_shapley::ExecConfig::new().with_threads(4);
        let a = HoloCleanStyle::new()
            .with_threads(4)
            .repair(&dcs(), &dirty());
        let b = HoloCleanStyle::new()
            .with_exec(&cfg)
            .repair(&dcs(), &dirty());
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn repairs_both_errors() {
        let r = HoloCleanStyle::new().repair(&dcs(), &dirty());
        let t = &r.clean;
        let city = t.schema().id("City");
        let country = t.schema().id("Country");
        assert_eq!(t.value(2, city), &Value::str("Madrid"));
        assert_eq!(t.value(4, country), &Value::str("Spain"));
        let resolved: Vec<_> = dcs()
            .iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        assert!(is_clean(&resolved, t));
    }

    #[test]
    fn minimality_only_noisy_cells_change() {
        let r = HoloCleanStyle::new().repair(&dcs(), &dirty());
        assert_eq!(r.changes.len(), 2);
        let rows: Vec<usize> = r.changes.iter().map(|c| c.cell.row).collect();
        assert!(rows.contains(&2));
        assert!(rows.contains(&4));
    }

    #[test]
    fn clean_table_untouched() {
        let clean = HoloCleanStyle::new().repair(&dcs(), &dirty()).clean;
        let again = HoloCleanStyle::new().repair(&dcs(), &clean);
        assert!(again.changes.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = HoloCleanStyle::new().repair(&dcs(), &dirty());
        let b = HoloCleanStyle::new().repair(&dcs(), &dirty());
        assert_eq!(a.clean, b.clean);
    }

    #[test]
    fn trained_variant_still_repairs() {
        let r = HoloCleanStyle::new()
            .with_training()
            .repair(&dcs(), &dirty());
        let t = &r.clean;
        assert_eq!(t.value(2, t.schema().id("City")), &Value::str("Madrid"));
    }

    #[test]
    fn empty_constraints_change_nothing() {
        let r = HoloCleanStyle::new().repair(&[], &dirty());
        assert!(r.changes.is_empty());
    }

    #[test]
    fn threaded_detection_gives_identical_repairs() {
        let serial = HoloCleanStyle::new().repair(&dcs(), &dirty());
        let par = HoloCleanStyle::new()
            .with_exec(&trex_shapley::ExecConfig::new().with_threads(4))
            .repair(&dcs(), &dirty());
        assert_eq!(serial.clean, par.clean);
        assert_eq!(serial.changes, par.changes);
    }

    #[test]
    fn respects_null_cells() {
        let mut t = dirty();
        t.set(CellRef::new(2, t.schema().id("City")), Value::Null);
        let r = HoloCleanStyle::new().repair(&dcs(), &t);
        // The nulled cell creates no violation, so only the Country error
        // gets repaired.
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.changes[0].cell.row, 4);
    }
}
