//! Candidate-domain generation (HoloClean's "domain pruning").
//!
//! For every *noisy* cell (a cell implicated in some constraint violation)
//! we build a pruned set of candidate repair values. Following HoloClean
//! [5], a value `v` of attribute `A` is a candidate for cell `t[A]` when it
//! co-occurs sufficiently often with one of the row's other attribute
//! values: `P(A = v | B = t[B]) ≥ τ` for some attribute `B ≠ A`. The cell's
//! original value is always a candidate (the minimality prior needs it), and
//! the domain is capped at the `max_candidates` best-scoring values.

use std::collections::HashMap;
use trex_table::{AttrId, CellRef, ConditionalStats, Table, Value};

/// Domain-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DomainConfig {
    /// Co-occurrence threshold `τ`: minimum `P(A=v | B=t[B])` for `v` to
    /// enter the domain through attribute `B`.
    pub tau: f64,
    /// Maximum number of candidates per cell (the original value does not
    /// count against the cap).
    pub max_candidates: usize,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            tau: 0.05,
            max_candidates: 16,
        }
    }
}

/// Pairwise conditional statistics `P(target = v | given = g)` for every
/// ordered attribute pair, computed once per repair run.
#[derive(Debug)]
pub struct CooccurrenceModel {
    /// `stats[given][target]`, `given != target`.
    stats: Vec<Vec<Option<ConditionalStats>>>,
    arity: usize,
}

impl CooccurrenceModel {
    /// Build the model from a table snapshot.
    pub fn build(table: &Table) -> Self {
        let arity = table.arity();
        let mut stats: Vec<Vec<Option<ConditionalStats>>> = Vec::with_capacity(arity);
        for given in 0..arity {
            let mut row = Vec::with_capacity(arity);
            for target in 0..arity {
                if given == target {
                    row.push(None);
                } else {
                    row.push(Some(ConditionalStats::from_columns(
                        table,
                        AttrId(given),
                        AttrId(target),
                    )));
                }
            }
            stats.push(row);
        }
        CooccurrenceModel { stats, arity }
    }

    /// `P(target = v | given = g)`.
    pub fn probability(&self, given: AttrId, target: AttrId, g: &Value, v: &Value) -> f64 {
        match &self.stats[given.0][target.0] {
            Some(s) => s.probability_given(g, v),
            None => 0.0,
        }
    }

    /// Mean co-occurrence of `v` at `(row, attr)` over the row's other
    /// non-null attributes — the main signal of the scoring model.
    pub fn mean_cooccurrence(&self, table: &Table, cell: CellRef, v: &Value) -> f64 {
        let mut total = 0.0;
        let mut used = 0usize;
        for b in 0..self.arity {
            if b == cell.attr.0 {
                continue;
            }
            let g = table.value(cell.row, AttrId(b));
            if !g.is_concrete() {
                continue;
            }
            total += self.probability(AttrId(b), cell.attr, g, v);
            used += 1;
        }
        if used == 0 {
            0.0
        } else {
            total / used as f64
        }
    }
}

/// The candidate domain of one cell.
#[derive(Debug, Clone)]
pub struct CellDomain {
    /// The cell this domain belongs to.
    pub cell: CellRef,
    /// Candidate values, original value first, then by descending
    /// co-occurrence score (ties toward smaller values).
    pub candidates: Vec<Value>,
}

/// Build the candidate domain of `cell` from the co-occurrence model.
pub fn cell_domain(
    table: &Table,
    model: &CooccurrenceModel,
    cell: CellRef,
    config: &DomainConfig,
) -> CellDomain {
    let original = table.get(cell).clone();
    // Score every distinct column value by its best single-attribute
    // conditional probability; keep those crossing τ.
    let mut scores: HashMap<Value, f64> = HashMap::new();
    for r in 0..table.num_rows() {
        let v = table.value(r, cell.attr);
        if !v.is_concrete() || scores.contains_key(v) {
            continue;
        }
        let mut best = 0.0f64;
        for b in 0..table.arity() {
            if b == cell.attr.0 {
                continue;
            }
            let g = table.value(cell.row, AttrId(b));
            if !g.is_concrete() {
                continue;
            }
            best = best.max(model.probability(AttrId(b), cell.attr, g, v));
        }
        scores.insert(v.clone(), best);
    }
    let mut ranked: Vec<(Value, f64)> = scores
        .into_iter()
        .filter(|(v, s)| *s >= config.tau && *v != original)
        .collect();
    ranked.sort_by(|(va, sa), (vb, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| va.cmp(vb))
    });
    ranked.truncate(config.max_candidates);

    let mut candidates = Vec::with_capacity(ranked.len() + 1);
    if original.is_concrete() {
        candidates.push(original);
    }
    candidates.extend(ranked.into_iter().map(|(v, _)| v));
    CellDomain { cell, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["City", "Country"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Paris", "France"])
            .str_row(["Madrid", "España"])
            .build()
    }

    #[test]
    fn cooccurrence_probabilities() {
        let t = table();
        let m = CooccurrenceModel::build(&t);
        let city = t.schema().id("City");
        let country = t.schema().id("Country");
        let p = m.probability(city, country, &Value::str("Madrid"), &Value::str("Spain"));
        assert!((p - 0.75).abs() < 1e-12);
        let q = m.probability(city, country, &Value::str("Paris"), &Value::str("France"));
        assert!((q - 1.0).abs() < 1e-12);
        // Same-attribute pairs are undefined → 0.
        assert_eq!(
            m.probability(city, city, &Value::str("Madrid"), &Value::str("Madrid")),
            0.0
        );
    }

    #[test]
    fn mean_cooccurrence_of_candidate() {
        let t = table();
        let m = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let cell = CellRef::new(4, country); // the España row
        let spain = m.mean_cooccurrence(&t, cell, &Value::str("Spain"));
        let espana = m.mean_cooccurrence(&t, cell, &Value::str("España"));
        assert!(spain > espana, "{spain} vs {espana}");
    }

    #[test]
    fn domain_contains_original_and_cooccurring() {
        let t = table();
        let m = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let d = cell_domain(&t, &m, CellRef::new(4, country), &DomainConfig::default());
        assert_eq!(d.candidates[0], Value::str("España")); // original first
        assert!(d.candidates.contains(&Value::str("Spain")));
        // France never co-occurs with Madrid: pruned.
        assert!(!d.candidates.contains(&Value::str("France")));
    }

    #[test]
    fn cap_limits_domain_size() {
        let t = table();
        let m = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let d = cell_domain(
            &t,
            &m,
            CellRef::new(4, country),
            &DomainConfig {
                tau: 0.0,
                max_candidates: 1,
            },
        );
        // original + exactly one other.
        assert_eq!(d.candidates.len(), 2);
    }

    #[test]
    fn high_tau_prunes_everything_but_original() {
        let t = table();
        let m = CooccurrenceModel::build(&t);
        let country = t.schema().id("Country");
        let d = cell_domain(
            &t,
            &m,
            CellRef::new(4, country),
            &DomainConfig {
                tau: 1.1,
                max_candidates: 8,
            },
        );
        assert_eq!(d.candidates, vec![Value::str("España")]);
    }

    #[test]
    fn null_original_is_not_a_candidate() {
        let mut t = table();
        let country = t.schema().id("Country");
        t.set(CellRef::new(4, country), Value::Null);
        let m = CooccurrenceModel::build(&t);
        let d = cell_domain(&t, &m, CellRef::new(4, country), &DomainConfig::default());
        assert!(!d.candidates.iter().any(Value::is_null));
        assert!(d.candidates.contains(&Value::str("Spain")));
    }
}
