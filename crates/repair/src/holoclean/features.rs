//! Featurization of repair candidates.
//!
//! HoloClean [5] grounds a probabilistic model whose factors come from
//! several signals; we reproduce the three families that drive its observable
//! behaviour, plus a global-frequency prior:
//!
//! * **co-occurrence** — how well the candidate agrees with the row's other
//!   attribute values (`mean_cooccurrence` over the pairwise conditional
//!   model);
//! * **minimality** — a prior for keeping the original value (repairs should
//!   be minimal);
//! * **constraint** — (negated) number of violations the row would
//!   participate in if the cell took this value, normalized by row count;
//! * **frequency** — the candidate's marginal probability in its column.
//!
//! A candidate's score is the dot product with [`FeatureWeights`]; the
//! inference loop picks the argmax per cell.

use super::domain::CooccurrenceModel;
use trex_constraints::{violates_binding, DenialConstraint};
use trex_table::{CellRef, ColumnStats, Table, Value};

/// The feature vector of one `(cell, candidate)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// Mean conditional co-occurrence with the row's other values.
    pub cooccurrence: f64,
    /// 1.0 iff the candidate equals the cell's current value.
    pub minimality: f64,
    /// Violations (involving this row) per row if the candidate is placed,
    /// negated — higher is better, like every other feature.
    pub constraint: f64,
    /// Marginal column frequency of the candidate.
    pub frequency: f64,
}

impl FeatureVector {
    /// Dot product with weights.
    pub fn score(&self, w: &FeatureWeights) -> f64 {
        self.cooccurrence * w.cooccurrence
            + self.minimality * w.minimality
            + self.constraint * w.constraint
            + self.frequency * w.frequency
    }

    /// The vector as an array (training code iterates features).
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.cooccurrence,
            self.minimality,
            self.constraint,
            self.frequency,
        ]
    }
}

/// Learnable weights of the scoring model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureWeights {
    /// Weight of the co-occurrence feature.
    pub cooccurrence: f64,
    /// Weight of the minimality prior.
    pub minimality: f64,
    /// Weight of the (negated) violation count.
    pub constraint: f64,
    /// Weight of the frequency prior.
    pub frequency: f64,
}

impl Default for FeatureWeights {
    /// Hand-calibrated defaults. The constraint weight is deliberately
    /// *moderate*: in a 1-vs-1 conflict both sides can clear their
    /// violations by capitulating to the other's value, and only the
    /// frequency/minimality priors tell the clean majority cell to stand
    /// its ground while the dirty minority cell switches. With these
    /// weights a cell flips exactly when the violation relief plus
    /// frequency gain outweigh the minimality prior — majority wins.
    fn default() -> Self {
        FeatureWeights {
            cooccurrence: 2.0,
            minimality: 0.4,
            constraint: 1.0,
            frequency: 1.0,
        }
    }
}

impl FeatureWeights {
    /// Build from an array in [`FeatureVector::as_array`] order.
    pub fn from_array(a: [f64; 4]) -> Self {
        FeatureWeights {
            cooccurrence: a[0],
            minimality: a[1],
            constraint: a[2],
            frequency: a[3],
        }
    }

    /// The weights as an array.
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.cooccurrence,
            self.minimality,
            self.constraint,
            self.frequency,
        ]
    }
}

/// Number of violations row `cell.row` participates in (as either tuple)
/// when `cell` is set to `candidate`, counting ordered pairs once per
/// direction, plus unary violations of the row.
pub fn row_violations_with(
    dcs: &[DenialConstraint],
    table: &mut Table,
    cell: CellRef,
    candidate: &Value,
) -> usize {
    let original = table.set(cell, candidate.clone());
    let r = cell.row;
    let n = table.num_rows();
    let mut count = 0usize;
    for dc in dcs {
        if dc.is_binary() {
            for j in 0..n {
                if j == r {
                    continue;
                }
                if violates_binding(dc, table, r, j) {
                    count += 1;
                }
                if violates_binding(dc, table, j, r) {
                    count += 1;
                }
            }
        } else if violates_binding(dc, table, r, r) {
            count += 1;
        }
    }
    table.set(cell, original);
    count
}

/// Compute the feature vector of `(cell, candidate)`.
///
/// `table` is borrowed mutably only to place/restore the candidate while
/// counting violations; it is returned unchanged.
pub fn featurize(
    dcs: &[DenialConstraint],
    table: &mut Table,
    model: &CooccurrenceModel,
    column_stats: &ColumnStats,
    cell: CellRef,
    candidate: &Value,
) -> FeatureVector {
    let cooccurrence = model.mean_cooccurrence(table, cell, candidate);
    let minimality = if table.get(cell) == candidate {
        1.0
    } else {
        0.0
    };
    let violations = row_violations_with(dcs, table, cell, candidate);
    let rows = table.num_rows().max(1) as f64;
    FeatureVector {
        cooccurrence,
        minimality,
        constraint: -(violations as f64) / rows,
        frequency: column_stats.probability(candidate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_constraints::parse_dcs;
    use trex_table::TableBuilder;

    fn setup() -> (Table, Vec<DenialConstraint>) {
        let t = TableBuilder::new()
            .str_columns(["City", "Country"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "Spain"])
            .str_row(["Madrid", "España"])
            .build();
        let dcs = parse_dcs("C2: !(t1.City = t2.City & t1.Country != t2.Country)")
            .unwrap()
            .into_iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        (t, dcs)
    }

    #[test]
    fn violation_counting_with_candidate() {
        let (mut t, dcs) = setup();
        let country = t.schema().id("Country");
        let cell = CellRef::new(2, country);
        // Keeping España: conflicts with rows 0 and 1, both directions = 4.
        assert_eq!(
            row_violations_with(&dcs, &mut t, cell, &Value::str("España")),
            4
        );
        // Switching to Spain: zero.
        assert_eq!(
            row_violations_with(&dcs, &mut t, cell, &Value::str("Spain")),
            0
        );
        // Table restored.
        assert_eq!(t.get(cell), &Value::str("España"));
    }

    #[test]
    fn features_favor_the_consistent_candidate() {
        let (mut t, dcs) = setup();
        let country = t.schema().id("Country");
        let cell = CellRef::new(2, country);
        let model = CooccurrenceModel::build(&t);
        let stats = ColumnStats::from_column(&t, country);
        let f_spain = featurize(&dcs, &mut t, &model, &stats, cell, &Value::str("Spain"));
        let f_espana = featurize(&dcs, &mut t, &model, &stats, cell, &Value::str("España"));
        let w = FeatureWeights::default();
        assert!(f_spain.score(&w) > f_espana.score(&w));
        // Minimality is the only feature favoring España.
        assert_eq!(f_espana.minimality, 1.0);
        assert_eq!(f_spain.minimality, 0.0);
        assert!(f_spain.constraint > f_espana.constraint);
        assert!(f_spain.frequency > f_espana.frequency);
    }

    #[test]
    fn unary_constraints_count_once() {
        let t = TableBuilder::new()
            .str_columns(["City"])
            .str_row(["Capital"])
            .build();
        let dcs: Vec<DenialConstraint> = parse_dcs("U: !(t1.City = \"Capital\")")
            .unwrap()
            .into_iter()
            .map(|d| d.resolved(t.schema()).unwrap())
            .collect();
        let mut t = t;
        let cell = CellRef::new(0, t.schema().id("City"));
        assert_eq!(
            row_violations_with(&dcs, &mut t, cell, &Value::str("Capital")),
            1
        );
        assert_eq!(
            row_violations_with(&dcs, &mut t, cell, &Value::str("Madrid")),
            0
        );
    }

    #[test]
    fn weights_array_roundtrip() {
        let w = FeatureWeights::default();
        assert_eq!(FeatureWeights::from_array(w.as_array()), w);
        let f = FeatureVector {
            cooccurrence: 1.0,
            minimality: 0.0,
            constraint: -0.5,
            frequency: 0.25,
        };
        let expect = 1.0 * w.cooccurrence - 0.5 * w.constraint + 0.25 * w.frequency;
        assert!((f.score(&w) - expect).abs() < 1e-12);
    }
}
