//! Batched oracle backends: the transport boundary of the repair oracle.
//!
//! [`crate::RepairAlgorithm`] models a cheap, local, one-repair-at-a-time
//! black box. Production oracles are not like that: an ML inference service
//! or a HoloClean-style solver behind an RPC answers *batches* of queries
//! per round trip and charges per call, not per query. [`OracleBackend`] is
//! the trait for that boundary — it receives whole batches of coalition
//! queries ([`CoalitionQuery`]) and answers them index-aligned — and
//! [`RemoteRepair`] adapts any local algorithm into a per-call-latency
//! backend (one simulated round trip per `answer_batch` call), with
//! [`MockRemoteRepair`] as the boxed test/bench double.
//!
//! The batching layer in front of a backend lives in
//! [`crate::ShardedOracle`]: coalition queries accumulate into bounded
//! batches, concurrent identical coalitions dedup via single-flight, and
//! batch formation orders scans by static cost estimates. A backend only
//! ever sees deduplicated, bounded batches.
//!
//! **Contract.** A backend must answer exactly what the session's local
//! [`crate::RepairAlgorithm`] would answer for the same query — it is a
//! *transport* for the repair function, not a different oracle. Under that
//! contract batched output is byte-identical to per-call output at any
//! batch size and thread count (the oracle guarantees the rest:
//! deterministic keys, order-preserving scatter of batch answers).

use crate::traits::{repairs_cell_to, RepairAlgorithm};
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use trex_constraints::DenialConstraint;
use trex_table::{CellRef, Table, Value};

/// One coalition query of the binary view `Alg|cell(dcs, table) == target`
/// (§2.1), as shipped to an [`OracleBackend`].
///
/// Fields are [`Cow`]s because the two T-REx games own different halves of
/// a query: the constraint game owns its DC subset but borrows the dirty
/// table, the masked cell game owns its masked table but borrows the DC
/// list. Backends only read.
pub struct CoalitionQuery<'q> {
    /// The coalition's constraint set.
    pub dcs: Cow<'q, [DenialConstraint]>,
    /// The (possibly coalition-masked) dirty table to repair.
    pub table: Cow<'q, Table>,
    /// The cell whose repair is being asked about.
    pub cell: CellRef,
    /// The target value: the answer is whether the repair sets `cell` to
    /// exactly this (a no-op when the dirty value already equals it).
    pub target: Cow<'q, Value>,
}

/// A repair oracle that answers *batches* of coalition queries.
///
/// This is the redesigned oracle boundary: instead of one synchronous
/// [`crate::RepairAlgorithm::repair`] per coalition, a backend receives a
/// bounded, deduplicated batch and returns one boolean per query,
/// index-aligned. Per-call-latency backends (anything remote) amortize
/// their round trip across the whole batch; see [`RemoteRepair`].
///
/// `Send + Sync` are supertraits: the sharded oracle dispatches batches
/// from several sampling workers sharing one `&dyn OracleBackend`, and a
/// long-lived session owns its boxed backend while request threads borrow
/// it.
pub trait OracleBackend: Send + Sync {
    /// Short identifier for telemetry and experiment reports.
    fn name(&self) -> &str;

    /// Answer every query in `batch`, index-aligned.
    ///
    /// Must be a deterministic function of the batch contents and must
    /// return exactly `batch.len()` answers (the oracle asserts this).
    fn answer_batch(&self, batch: &[CoalitionQuery<'_>]) -> Vec<bool>;
}

/// Adapter exposing a local [`RepairAlgorithm`] as an [`OracleBackend`]:
/// each query in a batch runs one local repair, with no added latency.
///
/// Useful to exercise the batched dispatch path against an in-process
/// engine; a `ShardedOracle` without any backend behaves identically.
pub struct LocalBackend<A> {
    inner: A,
}

impl<A: RepairAlgorithm> LocalBackend<A> {
    /// Wrap a local algorithm.
    pub fn new(inner: A) -> Self {
        LocalBackend { inner }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: RepairAlgorithm> OracleBackend for LocalBackend<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn answer_batch(&self, batch: &[CoalitionQuery<'_>]) -> Vec<bool> {
        batch
            .iter()
            .map(|q| repairs_cell_to(&self.inner, &q.dcs, &q.table, q.cell, &q.target))
            .collect()
    }
}

/// Adapter for per-call-latency backends: wraps a local algorithm and
/// charges a fixed `latency` **once per [`OracleBackend::answer_batch`]
/// call** — one simulated round trip — regardless of how many queries the
/// batch carries. Batch size `B` therefore cuts the latency bill by `B×`
/// versus per-call dispatch, which is exactly the economics of a remote
/// repair service.
///
/// Call and query counters (relaxed atomics) expose the round-trip count
/// to benches and tests; answers come from the wrapped algorithm, so the
/// backend honors the [`OracleBackend`] transport contract by
/// construction.
pub struct RemoteRepair<A> {
    inner: A,
    name: String,
    latency: Duration,
    calls: AtomicUsize,
    queries: AtomicUsize,
}

impl<A: RepairAlgorithm> RemoteRepair<A> {
    /// Wrap `inner` behind a simulated remote boundary with the given
    /// per-call latency (use [`Duration::ZERO`] for a latency-free remote).
    pub fn new(inner: A, latency: Duration) -> Self {
        let name = format!("remote({})", inner.name());
        RemoteRepair {
            inner,
            name,
            latency,
            calls: AtomicUsize::new(0),
            queries: AtomicUsize::new(0),
        }
    }

    /// Number of `answer_batch` round trips so far (empty batches are
    /// answered locally and not counted).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total queries answered across all round trips.
    pub fn queries(&self) -> usize {
        self.queries.load(Ordering::Relaxed)
    }

    /// The simulated per-call latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: RepairAlgorithm> OracleBackend for RemoteRepair<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer_batch(&self, batch: &[CoalitionQuery<'_>]) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(batch.len(), Ordering::Relaxed);
        if !self.latency.is_zero() {
            // One round trip per call: the whole batch shares the sleep.
            std::thread::sleep(self.latency);
        }
        batch
            .iter()
            .map(|q| repairs_cell_to(&self.inner, &q.dcs, &q.table, q.cell, &q.target))
            .collect()
    }
}

/// The test/bench double named by the roadmap: a [`RemoteRepair`] over a
/// boxed engine, so fixtures can inject any algorithm plus any latency
/// without naming the engine type.
pub type MockRemoteRepair = RemoteRepair<Box<dyn RepairAlgorithm>>;

impl MockRemoteRepair {
    /// Box `alg` behind a simulated remote boundary with injectable
    /// latency.
    pub fn mock(alg: impl RepairAlgorithm + 'static, latency: Duration) -> Self {
        RemoteRepair::new(Box::new(alg) as Box<dyn RepairAlgorithm>, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{NoOpRepair, RepairResult};
    use trex_table::{AttrId, TableBuilder};

    struct Fixer;

    impl RepairAlgorithm for Fixer {
        fn name(&self) -> &str {
            "fixer"
        }
        fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
            let mut clean = dirty.clone();
            if !dcs.is_empty() {
                clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
            }
            RepairResult::from_tables(dirty, clean)
        }
    }

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["A"])
            .str_row(["dirty"])
            .build()
    }

    fn dc() -> DenialConstraint {
        trex_constraints::parse_dc("!(t1.A != t2.A)").unwrap()
    }

    fn query(dcs: Vec<DenialConstraint>, target: &str) -> CoalitionQuery<'static> {
        CoalitionQuery {
            dcs: Cow::Owned(dcs),
            table: Cow::Owned(table()),
            cell: CellRef::new(0, AttrId(0)),
            target: Cow::Owned(Value::str(target)),
        }
    }

    #[test]
    fn local_backend_answers_like_the_algorithm() {
        let backend = LocalBackend::new(Fixer);
        let batch = [
            query(vec![dc()], "FIXED"),
            query(vec![], "FIXED"),
            query(vec![dc()], "OTHER"),
            query(vec![dc()], "dirty"), // already the dirty value → false
        ];
        assert_eq!(
            backend.answer_batch(&batch),
            vec![true, false, false, false]
        );
        assert_eq!(backend.name(), "fixer");
        assert_eq!(backend.inner().name(), "fixer");
    }

    #[test]
    fn remote_repair_counts_one_call_per_batch() {
        let remote = RemoteRepair::new(Fixer, Duration::ZERO);
        let batch = [query(vec![dc()], "FIXED"), query(vec![], "FIXED")];
        assert_eq!(remote.answer_batch(&batch), vec![true, false]);
        assert_eq!(remote.answer_batch(&batch), vec![true, false]);
        assert_eq!(remote.calls(), 2, "one round trip per answer_batch call");
        assert_eq!(remote.queries(), 4);
        assert_eq!(remote.name(), "remote(fixer)");
        assert_eq!(remote.inner().name(), "fixer");
        // Empty batches are free: no round trip.
        assert!(remote.answer_batch(&[]).is_empty());
        assert_eq!(remote.calls(), 2);
    }

    #[test]
    fn remote_repair_pays_latency_once_per_call() {
        let remote = RemoteRepair::new(Fixer, Duration::from_millis(20));
        assert_eq!(remote.latency(), Duration::from_millis(20));
        let batch: Vec<CoalitionQuery<'_>> = (0..8).map(|_| query(vec![dc()], "FIXED")).collect();
        let start = std::time::Instant::now();
        let _ = remote.answer_batch(&batch);
        let elapsed = start.elapsed();
        // 8 queries, 1 sleep: well under the 160ms a per-query charge
        // would cost (generous upper bound against slow CI clocks).
        assert!(elapsed < Duration::from_millis(160), "{elapsed:?}");
        assert_eq!(remote.calls(), 1);
        assert_eq!(remote.queries(), 8);
    }

    #[test]
    fn mock_remote_repair_boxes_any_engine() {
        let mock = MockRemoteRepair::mock(NoOpRepair, Duration::ZERO);
        assert_eq!(mock.name(), "remote(noop)");
        let batch = [query(vec![dc()], "FIXED")];
        assert_eq!(mock.answer_batch(&batch), vec![false], "noop fixes nothing");
        assert_eq!(mock.calls(), 1);
    }
}
