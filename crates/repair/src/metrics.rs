//! Repair-quality metrics.
//!
//! The demo scenario (§4) evaluates whether acting on an explanation
//! "improves the repair of the specified table cell". To quantify that we
//! compare a repair's cell-level diff against the ground-truth diff of an
//! error-injected workload (the generator in `trex-datagen` keeps ground
//! truth): precision / recall / F1 over repaired cells, plus
//! value-correctness.

use trex_table::{CellChange, CellRef, Table};

/// Precision/recall-style quality of one repair against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairQuality {
    /// Cells changed by the repair.
    pub changed: usize,
    /// Cells that actually needed repair.
    pub needed: usize,
    /// Changed cells that needed repair *and* received exactly the true
    /// clean value.
    pub correct: usize,
    /// Changed cells that needed repair (regardless of the chosen value).
    pub detected: usize,
}

impl RepairQuality {
    /// Precision: fraction of performed changes that were exactly right.
    /// Defined as 1 when nothing was changed (no false positives).
    pub fn precision(&self) -> f64 {
        if self.changed == 0 {
            1.0
        } else {
            self.correct as f64 / self.changed as f64
        }
    }

    /// Recall: fraction of needed repairs performed exactly right. Defined
    /// as 1 when nothing needed repair.
    pub fn recall(&self) -> f64 {
        if self.needed == 0 {
            1.0
        } else {
            self.correct as f64 / self.needed as f64
        }
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Detection recall: fraction of erroneous cells the repair *touched*,
    /// even if the replacement value was wrong.
    pub fn detection_recall(&self) -> f64 {
        if self.needed == 0 {
            1.0
        } else {
            self.detected as f64 / self.needed as f64
        }
    }
}

/// Score `repair_changes` (the diff produced by a repair of the dirty
/// table) against `truth_changes` (the injected-error diff `dirty → true
/// clean`).
pub fn score_repair(repair_changes: &[CellChange], truth_changes: &[CellChange]) -> RepairQuality {
    let truth_at = |cell: CellRef| truth_changes.iter().find(|c| c.cell == cell);
    let mut correct = 0usize;
    let mut detected = 0usize;
    for ch in repair_changes {
        if let Some(truth) = truth_at(ch.cell) {
            detected += 1;
            if ch.to == truth.to {
                correct += 1;
            }
        }
    }
    RepairQuality {
        changed: repair_changes.len(),
        needed: truth_changes.len(),
        correct,
        detected,
    }
}

/// Convenience: score a repaired table against the true clean table, both
/// relative to the same dirty table.
pub fn score_tables(dirty: &Table, repaired: &Table, truth: &Table) -> RepairQuality {
    score_repair(
        &trex_table::diff(dirty, repaired),
        &trex_table::diff(dirty, truth),
    )
}

/// Fraction of *all* cells whose repaired value equals the true clean value.
pub fn cell_accuracy(repaired: &Table, truth: &Table) -> f64 {
    assert_eq!(repaired.num_cells(), truth.num_cells(), "shape mismatch");
    if repaired.num_cells() == 0 {
        return 1.0;
    }
    let equal = repaired
        .cells()
        .filter(|c| repaired.get(*c) == truth.get(*c))
        .count();
    equal as f64 / repaired.num_cells() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::{AttrId, TableBuilder, Value};

    fn t(rows: &[[&str; 2]]) -> Table {
        let mut b = TableBuilder::new().str_columns(["A", "B"]);
        for r in rows {
            b = b.str_row(r.iter().copied());
        }
        b.build()
    }

    #[test]
    fn perfect_repair_scores_one() {
        let dirty = t(&[["x", "BAD"], ["y", "q"]]);
        let truth = t(&[["x", "p"], ["y", "q"]]);
        let q = score_tables(&dirty, &truth, &truth);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
        assert_eq!(q.detection_recall(), 1.0);
    }

    #[test]
    fn no_op_repair_has_full_precision_zero_recall() {
        let dirty = t(&[["x", "BAD"]]);
        let truth = t(&[["x", "p"]]);
        let q = score_tables(&dirty, &dirty, &truth);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn wrong_value_counts_as_detected_not_correct() {
        let dirty = t(&[["x", "BAD"]]);
        let repaired = t(&[["x", "WRONG"]]);
        let truth = t(&[["x", "p"]]);
        let q = score_tables(&dirty, &repaired, &truth);
        assert_eq!(q.detected, 1);
        assert_eq!(q.correct, 0);
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.detection_recall(), 1.0);
    }

    #[test]
    fn overzealous_repair_loses_precision() {
        let dirty = t(&[["x", "BAD"], ["y", "q"]]);
        let repaired = t(&[["x", "p"], ["CHANGED", "q"]]);
        let truth = t(&[["x", "p"], ["y", "q"]]);
        let q = score_tables(&dirty, &repaired, &truth);
        assert_eq!(q.changed, 2);
        assert_eq!(q.correct, 1);
        assert!((q.precision() - 0.5).abs() < 1e-12);
        assert_eq!(q.recall(), 1.0);
        assert!((q.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clean_workload_scores_one_by_convention() {
        let clean = t(&[["x", "y"]]);
        let q = score_tables(&clean, &clean, &clean);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
    }

    #[test]
    fn cell_accuracy_counts_matches() {
        let a = t(&[["x", "y"], ["p", "q"]]);
        let mut b = a.clone();
        b.set(trex_table::CellRef::new(0, AttrId(1)), Value::str("z"));
        assert!((cell_accuracy(&a, &b) - 0.75).abs() < 1e-12);
        assert_eq!(cell_accuracy(&a, &a), 1.0);
    }
}
