//! Invariant suite for the bounded-memory [`ShardedOracle`]: whatever the
//! capacity, eviction may only ever cost recomputation time — never change
//! an answer, never let the cache outgrow its bound, never lose a query in
//! the statistics.
//!
//! The workloads are seeded-random query sequences (repeats included, so
//! hits, misses, and evictions all occur) over small tables with planted
//! conflicts, run side by side against an effectively unbounded oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_repair::{OracleStats, RepairAlgorithm, RepairResult, ShardedOracle};
use trex_table::{AttrId, CellRef, Table, TableBuilder, Value};

/// Deterministic test repairer: sets cell (0,0) to "FIXED" whenever at
/// least one constraint is passed, and counts invocations.
struct CountingRepair {
    calls: AtomicUsize,
}

impl CountingRepair {
    fn new() -> Self {
        CountingRepair {
            calls: AtomicUsize::new(0),
        }
    }
    fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

impl RepairAlgorithm for CountingRepair {
    fn name(&self) -> &str {
        "counting"
    }
    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut clean = dirty.clone();
        if !dcs.is_empty() {
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
        }
        RepairResult::from_tables(dirty, clean)
    }
}

fn dcs() -> Vec<DenialConstraint> {
    parse_dcs("C1: !(t1.A = t2.A & t1.B != t2.B)").unwrap()
}

/// The `i`-th distinct query table of the workload.
fn table_for(i: usize) -> Table {
    TableBuilder::new()
        .str_columns(["A", "B"])
        .str_row([format!("v{i}").as_str(), "x"])
        .str_row([format!("v{i}").as_str(), "y"])
        .build()
}

/// A seeded workload: `queries` draws over `distinct` tables, with repeats.
fn workload(distinct: usize, queries: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..queries).map(|_| rng.gen_range(0..distinct)).collect()
}

fn run(oracle: &ShardedOracle<'_>, keys: &[usize]) -> Vec<bool> {
    let dcs = dcs();
    let cell = CellRef::new(0, AttrId(0));
    keys.iter()
        .map(|&i| oracle.repairs_cell_to(&dcs, &table_for(i), cell, &Value::str("FIXED")))
        .collect()
}

#[test]
fn any_capacity_yields_the_unbounded_answers() {
    // The headline invariant: for every capacity — saturated, exact-fit, or
    // roomy — the answer sequence is identical to the unbounded oracle's.
    let keys = workload(24, 400, 7);
    let unbounded_alg = CountingRepair::new();
    let unbounded = ShardedOracle::new(&unbounded_alg);
    let reference = run(&unbounded, &keys);
    for capacity in [0usize, 1, 2, 5, 13, 24, 100] {
        for shards in [1usize, 4, 16] {
            let alg = CountingRepair::new();
            let oracle = ShardedOracle::with_config(&alg, capacity, shards);
            let answers = run(&oracle, &keys);
            assert_eq!(
                answers, reference,
                "capacity {capacity}, {shards} shards changed an answer"
            );
        }
    }
}

#[test]
fn capacity_at_least_live_keys_is_identical_to_unbounded_with_zero_evictions() {
    let keys = workload(20, 300, 11);
    let unbounded_alg = CountingRepair::new();
    let unbounded = ShardedOracle::new(&unbounded_alg);
    let reference = run(&unbounded, &keys);
    let reference_stats = unbounded.stats();
    assert_eq!(reference_stats.evictions, 0);
    // 20 distinct keys; one shard keeps quota rounding out of the picture,
    // so any capacity ≥ 20 must behave exactly like the unbounded oracle —
    // same answers, same stats, same live-entry count, no evictions.
    for capacity in [20usize, 21, 64, 1 << 20] {
        let alg = CountingRepair::new();
        let oracle = ShardedOracle::with_config(&alg, capacity, 1);
        let answers = run(&oracle, &keys);
        assert_eq!(answers, reference, "capacity {capacity}");
        assert_eq!(oracle.stats(), reference_stats, "capacity {capacity}");
        assert_eq!(oracle.len(), unbounded.len(), "capacity {capacity}");
        assert_eq!(alg.calls(), unbounded_alg.calls(), "capacity {capacity}");
    }
}

#[test]
fn hits_plus_misses_equals_queries_at_every_capacity() {
    let keys = workload(16, 250, 3);
    for capacity in [0usize, 1, 3, 8, 16, 50] {
        let alg = CountingRepair::new();
        let oracle = ShardedOracle::with_config(&alg, capacity, 4);
        let _ = run(&oracle, &keys);
        let stats = oracle.stats();
        assert_eq!(
            stats.hits + stats.misses,
            keys.len(),
            "capacity {capacity}: every query is exactly one hit or one miss"
        );
        // Every miss ran the black box exactly once.
        assert_eq!(alg.calls(), stats.misses, "capacity {capacity}");
    }
}

#[test]
fn no_evictions_until_capacity_pressure() {
    let alg = CountingRepair::new();
    // 8 entries on one shard; the first 8 distinct keys fit exactly.
    let oracle = ShardedOracle::with_config(&alg, 8, 1);
    let dcs = dcs();
    let cell = CellRef::new(0, AttrId(0));
    for i in 0..8 {
        let _ = oracle.repairs_cell_to(&dcs, &table_for(i), cell, &Value::str("FIXED"));
        assert_eq!(oracle.stats().evictions, 0, "under capacity after key {i}");
        assert_eq!(oracle.len(), i + 1);
    }
    // The ninth distinct key forces exactly one eviction.
    let _ = oracle.repairs_cell_to(&dcs, &table_for(8), cell, &Value::str("FIXED"));
    assert_eq!(oracle.stats().evictions, 1);
    assert_eq!(oracle.len(), 8);
}

#[test]
fn live_entries_never_exceed_capacity() {
    let keys = workload(40, 600, 19);
    let dcs = dcs();
    let cell = CellRef::new(0, AttrId(0));
    for (capacity, shards) in [(1usize, 1usize), (5, 1), (7, 3), (12, 16), (33, 16)] {
        let alg = CountingRepair::new();
        let oracle = ShardedOracle::with_config(&alg, capacity, shards);
        for (q, &i) in keys.iter().enumerate() {
            let _ = oracle.repairs_cell_to(&dcs, &table_for(i), cell, &Value::str("FIXED"));
            assert!(
                oracle.len() <= capacity,
                "capacity {capacity}/{shards} shards: {} live after query {q}",
                oracle.len()
            );
        }
        assert_eq!(oracle.capacity(), capacity);
    }
}

#[test]
fn requeried_evicted_key_recomputes_the_same_value() {
    // Thrash a capacity-2 cache with distinct keys, re-querying old keys
    // throughout: every answer must match a fresh uncached computation.
    let fresh_alg = CountingRepair::new();
    let dcs = dcs();
    let cell = CellRef::new(0, AttrId(0));
    let alg = CountingRepair::new();
    let oracle = ShardedOracle::with_config(&alg, 2, 1);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..200 {
        let i = rng.gen_range(0..10usize);
        let cached = oracle.repairs_cell_to(&dcs, &table_for(i), cell, &Value::str("FIXED"));
        let fresh = trex_repair::repairs_cell_to(
            &fresh_alg,
            &dcs,
            &table_for(i),
            cell,
            &Value::str("FIXED"),
        );
        assert_eq!(cached, fresh, "key {i} changed its answer after eviction");
    }
    let stats = oracle.stats();
    assert!(stats.evictions > 0, "the workload must thrash");
    assert!(
        stats.misses > 10,
        "re-queried evicted keys must recompute (misses {})",
        stats.misses
    );
}

#[test]
fn concurrent_bounded_oracle_keeps_the_invariants() {
    // Hammer a small bounded cache from 4 threads: answers stay correct,
    // the bound holds at the end, and the stats still account for every
    // query even under eviction races.
    let alg = CountingRepair::new();
    let oracle = ShardedOracle::with_config(&alg, 6, 3);
    let dcs = dcs();
    let cell = CellRef::new(0, AttrId(0));
    let per_thread = 150usize;
    let threads = 4usize;
    std::thread::scope(|scope| {
        for w in 0..threads {
            let oracle = &oracle;
            let dcs = &dcs;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64);
                for _ in 0..per_thread {
                    let i = rng.gen_range(0..15usize);
                    let got =
                        oracle.repairs_cell_to(dcs, &table_for(i), cell, &Value::str("FIXED"));
                    assert!(got, "every keyed table repairs (0,0) to FIXED");
                }
            });
        }
    });
    let stats = oracle.stats();
    assert_eq!(stats.hits + stats.misses, threads * per_thread);
    assert!(oracle.len() <= 6);
    assert!(stats.evictions > 0, "15 keys through 6 slots must evict");
}

#[test]
fn clear_resets_the_bounded_cache() {
    let alg = CountingRepair::new();
    let oracle = ShardedOracle::with_config(&alg, 3, 1);
    let keys = workload(9, 60, 5);
    let _ = run(&oracle, &keys);
    assert!(oracle.stats().evictions > 0);
    oracle.clear();
    assert_eq!(oracle.stats(), OracleStats::default());
    assert!(oracle.is_empty());
    // And the cleared cache fills back up correctly.
    let _ = run(&oracle, &keys);
    assert!(oracle.len() <= 3);
}
