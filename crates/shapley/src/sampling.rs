//! Monte-Carlo Shapley approximation by permutation sampling.
//!
//! Implements the estimator of Strumbelj & Kononenko ([7] in the paper),
//! which T-REx uses for **table cells** — "the number of cells in a table
//! can be very large, so T-REx uses a sampling algorithm based on [7]"
//! (§2.3). One sample for player `i` (Example 2.5):
//!
//! 1. draw a uniformly random permutation `π` of the players;
//! 2. let `S = pred_π(i)`, the players preceding `i` in `π`;
//! 3. evaluate the marginal pair `(v(S ∪ {i}), v(S))` — for the cell game
//!    this builds *one* replacement table and toggles only cell `i` between
//!    the two instances (common random numbers);
//! 4. accumulate `v(S∪{i}) − v(S)`; the estimate is the running mean `ϕ/m`.
//!
//! Since each summand is the marginal term of the permutation form of the
//! Shapley value (see [`crate::perm`]), the estimator is unbiased; variance
//! decays as `1/m` (experiment E5 measures this empirically).
//!
//! [`estimate_all_walk`] is the all-players variant (Castro et al. style):
//! one permutation walk yields a marginal sample for *every* player at the
//! cost of `n+1` evaluations, which amortizes much better when the whole
//! ranking is wanted — that is what the explanation screen shows.

use crate::convergence::RunningStats;
use crate::game::{Coalition, Game, StochasticGame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the sampling estimators.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Number of Monte-Carlo samples (`m` in Example 2.5). For
    /// [`estimate_all_walk`] this is the number of permutations.
    pub samples: usize,
    /// RNG seed; all estimates are deterministic given the seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            samples: 1000,
            seed: 0,
        }
    }
}

/// A Monte-Carlo estimate with its sampling distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated Shapley value (mean marginal contribution).
    pub value: f64,
    /// Sample standard deviation of the marginal contributions.
    pub std_dev: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl Estimate {
    /// Standard error of the mean, `s/√m`.
    pub fn std_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.std_dev / (self.samples as f64).sqrt()
        }
    }

    /// Normal-approximation confidence half-width at `z` standard errors
    /// (`z = 1.96` for 95%).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }
}

/// The derived seed of `player` in the all-players drivers: the base seed
/// laddered by a golden-ratio multiple of the player index, so per-player
/// sample streams are decorrelated but fully determined by the base seed.
///
/// Shared by [`estimate_all`], the parallel engine's player-sharded
/// schedules, and `trex` core's adaptive explainer — every all-player
/// driver must ladder identically for the serial-equivalence contracts to
/// compose.
pub fn player_seed(seed: u64, player: usize) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(player as u64 + 1))
}

/// SplitMix64 finalizer (Steele, Lea, Flood 2014) — the standard 64-bit
/// mixer. One copy serves every seed ladder in the crate: the parallel
/// engine's worker streams and the round ladder below must all decorrelate
/// with the same function, or two ladders could collide.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The derived seed of `round` in the round-laddered adaptive estimator
/// ([`estimate_player_adaptive_rounds`]): round 0 keeps the (per-player)
/// seed unmodified, later rounds xor a SplitMix64 hash of their index.
///
/// Laddering per *round* instead of running one continuous stream is what
/// makes a round a relocatable unit of work: any worker can compute round
/// `r` of any player from `(seed, r)` alone, so the work-stealing schedule
/// (`trex_shapley::parallel::Schedule::WorkStealing`) can spread one
/// player's rounds across workers and still merge, in round order, to the
/// exact statistics of the serial round-laddered loop.
pub fn round_seed(seed: u64, round: usize) -> u64 {
    if round == 0 {
        seed
    } else {
        seed ^ splitmix64(round as u64)
    }
}

/// Draw a uniform permutation of `0..n` (Fisher–Yates).
///
/// Shared with [`crate::parallel`]: the serial and parallel estimators must
/// consume the RNG identically for the `threads = 1` bit-for-bit contract,
/// so there is exactly one copy of every sampling primitive.
pub(crate) fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm = Vec::with_capacity(n);
    random_permutation_into(&mut perm, n, rng);
    perm
}

/// [`random_permutation`] into a reused buffer: identical RNG draws and
/// output, no per-sample allocation.
pub(crate) fn random_permutation_into<R: Rng + ?Sized>(
    perm: &mut Vec<usize>,
    n: usize,
    rng: &mut R,
) {
    perm.clear();
    perm.extend(0..n);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
}

/// Reused per-walk buffers: the permutation, the growing prefix coalition,
/// and the walk's materialized prefix batch. One set of allocations per
/// *driver* instead of per walk.
pub(crate) struct WalkScratch {
    perm: Vec<usize>,
    prefix: Coalition,
    /// The walk's `n + 1` prefix coalitions, materialized so the whole walk
    /// evaluates through one [`Game::value_batch`] call; the word buffers
    /// are reused across walks via `clone_from`.
    prefixes: Vec<Coalition>,
}

impl WalkScratch {
    pub(crate) fn new(n: usize) -> Self {
        WalkScratch {
            perm: Vec::with_capacity(n),
            prefix: Coalition::empty(n),
            prefixes: vec![Coalition::empty(n); n + 1],
        }
    }
}

/// One marginal sample for `player` (Example 2.5): draw a permutation, form
/// the predecessor coalition, evaluate the pair, return `v(S∪{i}) − v(S)`.
/// Shared with [`crate::parallel`] (see [`random_permutation`]).
pub(crate) fn marginal_sample<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    rng: &mut rand::rngs::StdRng,
) -> f64 {
    let n = game.num_players();
    let perm = random_permutation(n, rng);
    let mut coalition = Coalition::empty(n);
    for &p in &perm {
        if p == player {
            break;
        }
        coalition.insert(p);
    }
    let (with, without) = game.eval_pair(&coalition, player, rng);
    with - without
}

/// One full permutation walk (Castro et al.): visit the players in a fresh
/// random order, pushing every incremental marginal into `stats`. Shared
/// with [`crate::parallel`] (see [`random_permutation`]); `scratch` is
/// reused across walks and does not affect the RNG stream or the output.
pub(crate) fn walk_once<G: Game + ?Sized>(
    game: &G,
    rng: &mut rand::rngs::StdRng,
    stats: &mut [RunningStats],
    scratch: &mut WalkScratch,
) {
    let n = game.num_players();
    random_permutation_into(&mut scratch.perm, n, rng);
    let s = &mut scratch.prefix;
    s.clear();
    // Materialize the walk's n+1 prefix coalitions and evaluate them as one
    // batch: a batched oracle sees one dispatch per walk instead of n+1,
    // and the values — hence the pushed marginals and their fold order —
    // are identical to incremental per-prefix `value` calls.
    debug_assert_eq!(scratch.prefixes.len(), n + 1);
    scratch.prefixes[0].clone_from(s);
    for (i, &p) in scratch.perm.iter().enumerate() {
        s.insert(p);
        scratch.prefixes[i + 1].clone_from(s);
    }
    let values = game.value_batch(&scratch.prefixes);
    assert_eq!(values.len(), n + 1, "value_batch must answer per coalition");
    for (i, &p) in scratch.perm.iter().enumerate() {
        stats[p].push(values[i + 1] - values[i]);
    }
}

/// Estimate the Shapley value of a single `player` with `config.samples`
/// permutation samples — the exact procedure of Example 2.5.
pub fn estimate_player<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    config: SamplingConfig,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = RunningStats::new();
    for _ in 0..config.samples {
        stats.push(marginal_sample(game, player, &mut rng));
    }
    Estimate {
        value: stats.mean(),
        std_dev: stats.std_dev(),
        samples: stats.count(),
    }
}

/// Estimate all players independently (`config.samples` samples each).
///
/// Each player gets a distinct derived seed, so estimates are independent
/// and the whole call is deterministic.
pub fn estimate_all<G: StochasticGame + ?Sized>(game: &G, config: SamplingConfig) -> Vec<Estimate> {
    (0..game.num_players())
        .map(|p| {
            estimate_player(
                game,
                p,
                SamplingConfig {
                    samples: config.samples,
                    seed: player_seed(config.seed, p),
                },
            )
        })
        .collect()
}

/// Estimate all players with shared permutation walks: each of
/// `config.samples` permutations is walked once, contributing one marginal
/// sample to every player with `n + 1` evaluations total.
///
/// Only available for deterministic games: a walk shares the coalition
/// between players, so per-pair common random numbers do not apply.
pub fn estimate_all_walk<G: Game + ?Sized>(game: &G, config: SamplingConfig) -> Vec<Estimate> {
    let n = game.num_players();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = vec![RunningStats::new(); n];
    let mut scratch = WalkScratch::new(n);
    for _ in 0..config.samples {
        walk_once(game, &mut rng, &mut stats, &mut scratch);
    }
    stats
        .into_iter()
        .map(|st| Estimate {
            value: st.mean(),
            std_dev: st.std_dev(),
            samples: st.count(),
        })
        .collect()
}

/// Adaptive estimation of one player: keep sampling in `batch`-sized chunks
/// until the `z`-confidence half-width drops below `tolerance` or
/// `max_samples` is reached. Returns the estimate and whether it converged.
pub fn estimate_player_adaptive<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    tolerance: f64,
    z: f64,
    batch: usize,
    max_samples: usize,
    seed: u64,
) -> (Estimate, bool) {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range");
    assert!(batch > 0, "batch must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    loop {
        for _ in 0..batch {
            stats.push(marginal_sample(game, player, &mut rng));
        }
        let est = Estimate {
            value: stats.mean(),
            std_dev: stats.std_dev(),
            samples: stats.count(),
        };
        // Require at least two batches before trusting the variance.
        if stats.count() >= 2 * batch && est.ci_half_width(z) <= tolerance {
            return (est, true);
        }
        if stats.count() >= max_samples {
            return (est, false);
        }
    }
}

/// Round-laddered adaptive estimation of one player: the stopping rule of
/// [`estimate_player_adaptive`] (same `batch`/`tolerance`/`z`/`max_samples`
/// semantics), but round `r` draws its `batch` samples from a *fresh* RNG
/// seeded [`round_seed`]`(seed, r)` instead of continuing one sequential
/// stream.
///
/// This is the **serial reference of the work-stealing schedule**
/// (`trex_shapley::parallel::Schedule::WorkStealing`): because every round
/// is a pure function of `(seed, round)`, rounds can be computed on any
/// worker in any order and folded back in round order, reproducing this
/// function bit for bit at any thread count. The price is a different (but
/// equally valid) sample stream than [`estimate_player_adaptive`] — the two
/// estimators agree statistically, not bitwise. A sequential stream cannot
/// be split across workers: each round's RNG state would depend on all
/// previous rounds' draws.
pub fn estimate_player_adaptive_rounds<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    tolerance: f64,
    z: f64,
    batch: usize,
    max_samples: usize,
    seed: u64,
) -> (Estimate, bool) {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range");
    assert!(batch > 0, "batch must be positive");
    let mut stats = RunningStats::new();
    for round in 0.. {
        let mut rng = StdRng::seed_from_u64(round_seed(seed, round));
        // Accumulate the round separately, then combine with the exact
        // parallel-Welford merge: the work-stealing engine folds whole
        // rounds, and the fold arithmetic is part of the bitwise contract.
        let mut round_stats = RunningStats::new();
        for _ in 0..batch {
            round_stats.push(marginal_sample(game, player, &mut rng));
        }
        stats.merge(&round_stats);
        let est = Estimate {
            value: stats.mean(),
            std_dev: stats.std_dev(),
            samples: stats.count(),
        };
        // The exact stopping rule of `estimate_player_adaptive`: at least
        // two batches before trusting the variance, then the CI check.
        if stats.count() >= 2 * batch && est.ci_half_width(z) <= tolerance {
            return (est, true);
        }
        if stats.count() >= max_samples {
            return (est, false);
        }
    }
    unreachable!("the sample cap terminates the round loop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::shapley_exact;
    use crate::game::{fixtures, FnGame};

    #[test]
    fn estimates_converge_to_exact_on_gloves() {
        let g = fixtures::gloves(2, 3);
        let exact = shapley_exact(&g).unwrap();
        let cfg = SamplingConfig {
            samples: 20_000,
            seed: 11,
        };
        for (p, want) in exact.iter().enumerate() {
            let est = estimate_player(&g, p, cfg);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn walk_estimates_converge_and_are_efficient() {
        let g = fixtures::paper_example_2_3();
        let exact = shapley_exact(&g).unwrap();
        let ests = estimate_all_walk(
            &g,
            SamplingConfig {
                samples: 30_000,
                seed: 5,
            },
        );
        for (est, want) in ests.iter().zip(&exact) {
            assert!((est.value - want).abs() < 0.02);
        }
        // Permutation walks are exactly efficient *per sample*: the marginals
        // along one permutation telescope to v(N) - v(∅). So the means sum to
        // v(N) exactly (up to fp).
        let total: f64 = ests.iter().map(|e| e.value).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn dummy_player_estimates_to_zero_exactly() {
        // Player 3 in the paper game is a dummy: every marginal is 0, so
        // even the *sampled* estimate is exactly 0 with zero variance.
        let g = fixtures::paper_example_2_3();
        let est = estimate_player(
            &g,
            3,
            SamplingConfig {
                samples: 500,
                seed: 3,
            },
        );
        assert_eq!(est.value, 0.0);
        assert_eq!(est.std_dev, 0.0);
        assert_eq!(est.ci_half_width(1.96), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fixtures::majority(7);
        let cfg = SamplingConfig {
            samples: 200,
            seed: 42,
        };
        let a = estimate_player(&g, 2, cfg);
        let b = estimate_player(&g, 2, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn error_shrinks_with_sample_count() {
        let g = fixtures::gloves(3, 3);
        let exact = shapley_exact(&g).unwrap();
        let err = |m: usize| {
            let est = estimate_player(
                &g,
                0,
                SamplingConfig {
                    samples: m,
                    seed: 99,
                },
            );
            (est.value - exact[0]).abs()
        };
        // Not strictly monotone, but 100x samples should clearly beat 1x.
        assert!(err(40_000) < err(400) + 1e-9);
    }

    #[test]
    fn adaptive_stops_when_tight() {
        let g = fixtures::unanimity(6, vec![0, 1, 2]);
        let (est, converged) = estimate_player_adaptive(&g, 0, 0.02, 1.96, 500, 200_000, 7);
        assert!(converged);
        assert!((est.value - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn adaptive_reports_non_convergence() {
        let g = fixtures::gloves(2, 2);
        let (_est, converged) = estimate_player_adaptive(&g, 0, 1e-9, 1.96, 10, 50, 7);
        assert!(!converged);
    }

    #[test]
    fn round_ladder_keeps_round_zero_and_decorrelates_the_rest() {
        assert_eq!(round_seed(99, 0), 99, "round 0 keeps the player seed");
        let seeds: Vec<u64> = (0..50).map(|r| round_seed(99, r)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "round seeds must not collide");
    }

    #[test]
    fn adaptive_rounds_converges_and_respects_the_cap() {
        let g = fixtures::unanimity(6, vec![0, 1, 2]);
        let (est, converged) = estimate_player_adaptive_rounds(&g, 0, 0.02, 1.96, 500, 200_000, 7);
        assert!(converged);
        assert!((est.value - 1.0 / 3.0).abs() < 0.05);
        let (est, converged) = estimate_player_adaptive_rounds(&g, 0, 1e-12, 1.96, 10, 100, 7);
        assert!(!converged);
        assert_eq!(est.samples, 100, "cap reached in whole batches");
    }

    #[test]
    fn adaptive_rounds_is_deterministic_and_stops_dummies_early() {
        let g = fixtures::paper_example_2_3();
        let a = estimate_player_adaptive_rounds(&g, 3, 0.05, 1.96, 40, 4000, 11);
        let b = estimate_player_adaptive_rounds(&g, 3, 0.05, 1.96, 40, 4000, 11);
        assert_eq!(a, b);
        // Player 3 is a dummy: zero variance, stop at exactly two batches.
        assert!(a.1);
        assert_eq!(a.0.samples, 80);
        assert_eq!(a.0.value, 0.0);
    }

    #[test]
    fn single_player_game() {
        let g = FnGame::new(1, |s: &Coalition| if s.contains(0) { 2.0 } else { 0.0 });
        let est = estimate_player(
            &g,
            0,
            SamplingConfig {
                samples: 10,
                seed: 0,
            },
        );
        assert_eq!(est.value, 2.0);
        assert_eq!(est.std_dev, 0.0);
    }

    #[test]
    fn std_error_math() {
        let e = Estimate {
            value: 1.0,
            std_dev: 2.0,
            samples: 100,
        };
        assert!((e.std_error() - 0.2).abs() < 1e-12);
        assert!((e.ci_half_width(1.96) - 0.392).abs() < 1e-12);
    }
}
