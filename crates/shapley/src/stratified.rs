//! Variance-reduced sampling variants (ablation A3 of DESIGN.md).
//!
//! The plain estimator of [`crate::sampling`] draws coalition sizes with the
//! distribution induced by uniform permutations. Two standard refinements:
//!
//! * **Stratified sampling** — allocate an equal number of samples to each
//!   coalition size `k ∈ {0, …, n−1}` and average the per-stratum means.
//!   Since the Shapley value is exactly the uniform mixture over sizes of
//!   the size-conditional expected marginal, this is unbiased and removes
//!   the between-stratum component of the variance.
//! * **Antithetic sampling** — evaluate each drawn permutation *and its
//!   reverse*, pairing negatively correlated marginals (player early vs
//!   late), and average the pair.
//!
//! Both return the same [`Estimate`] type as the plain sampler so harnesses
//! can compare them head-to-head (`exp_convergence`, `sampling_variants`
//! bench).

use crate::convergence::RunningStats;
use crate::game::{Coalition, StochasticGame};
use crate::sampling::Estimate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// One worker's share of a stratified estimate: the contiguous `strata`
/// range of coalition sizes, `samples_per_stratum` samples each, drawn from
/// a single RNG stream seeded with `seed`.
///
/// Shared with [`crate::parallel`]: the serial estimator is exactly the
/// `0..n` chunk, so there is one copy of the sampling primitive and the
/// parallel path with one worker replays it bit for bit. The shuffle pool
/// carries across strata *within* a chunk (partial Fisher–Yates yields a
/// uniform `k`-subset from any starting arrangement, so chunk boundaries do
/// not bias the strata).
pub(crate) fn stratified_chunk<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    strata: Range<usize>,
    samples_per_stratum: usize,
    seed: u64,
) -> Vec<RunningStats> {
    let n = game.num_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..n).filter(|i| *i != player).collect();
    let mut out = Vec::with_capacity(strata.len());
    for k in strata {
        let mut stats = RunningStats::new();
        for _ in 0..samples_per_stratum {
            // Partial Fisher–Yates: first k entries become the coalition.
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let coalition = Coalition::from_players(n, pool[..k].iter().copied());
            let (with, without) = game.eval_pair(&coalition, player, &mut rng);
            stats.push(with - without);
        }
        out.push(stats);
    }
    out
}

/// Combine per-stratum statistics into the stratified [`Estimate`]: the mean
/// of the per-stratum means, with `std_dev` backed out of the stratified
/// standard error so [`Estimate::std_error`] is correct. Shared with
/// [`crate::parallel`] (see [`stratified_chunk`]).
pub(crate) fn stratified_estimate(
    stratum_stats: &[RunningStats],
    samples_per_stratum: usize,
) -> Estimate {
    let n = stratum_stats.len();
    let mean: f64 = stratum_stats.iter().map(RunningStats::mean).sum::<f64>() / n as f64;
    // Var(estimate) = (1/n²) Σ_k Var(stratum mean_k) = (1/n²) Σ_k s_k²/m.
    let var_of_mean: f64 = stratum_stats
        .iter()
        .map(|s| s.variance() / samples_per_stratum as f64)
        .sum::<f64>()
        / (n as f64 * n as f64);
    let total_samples = n * samples_per_stratum;
    // Back out a std_dev such that Estimate::std_error() = sqrt(var_of_mean).
    let std_dev = (var_of_mean * total_samples as f64).sqrt();
    Estimate {
        value: mean,
        std_dev,
        samples: total_samples,
    }
}

/// Stratified-by-coalition-size estimator for one player.
///
/// `samples_per_stratum` samples are drawn for each size `k ∈ {0..n-1}`:
/// a uniformly random `k`-subset of the other players forms the coalition.
/// The estimate is the mean of the per-stratum means; its reported
/// `std_dev` is derived from the stratified standard error (`√(Σ s_k²/m) / n`
/// scaled back so [`Estimate::std_error`] is correct).
pub fn estimate_player_stratified<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    samples_per_stratum: usize,
    seed: u64,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    assert!(
        samples_per_stratum > 0,
        "need at least one sample per stratum"
    );
    let stratum_stats = stratified_chunk(game, player, 0..n, samples_per_stratum, seed);
    stratified_estimate(&stratum_stats, samples_per_stratum)
}

/// One worker's share of an antithetic estimate: `pairs` permutation pairs
/// drawn from a single RNG stream seeded with `seed`, starting from the
/// identity permutation.
///
/// Shared with [`crate::parallel`] (see [`stratified_chunk`] for the
/// contract): the serial estimator is exactly the full-budget chunk.
pub(crate) fn antithetic_chunk<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    pairs: usize,
    seed: u64,
) -> RunningStats {
    let n = game.num_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..pairs {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let marginal = |preds: &mut dyn Iterator<Item = usize>, rng: &mut StdRng| {
            let mut coalition = Coalition::empty(n);
            for p in preds {
                if p == player {
                    break;
                }
                coalition.insert(p);
            }
            let (with, without) = game.eval_pair(&coalition, player, rng);
            with - without
        };
        let forward = marginal(&mut perm.iter().copied(), &mut rng);
        let backward = marginal(&mut perm.iter().rev().copied(), &mut rng);
        stats.push(0.5 * (forward + backward));
    }
    stats
}

/// Antithetic-pairs estimator for one player: each iteration draws one
/// permutation, uses it *and* its reverse, and records the average of the
/// two marginals as a single observation.
pub fn estimate_player_antithetic<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    pairs: usize,
    seed: u64,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    let stats = antithetic_chunk(game, player, pairs, seed);
    Estimate {
        value: stats.mean(),
        std_dev: stats.std_dev(),
        samples: stats.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::shapley_exact;
    use crate::game::fixtures;
    use crate::sampling::{estimate_player, SamplingConfig};

    #[test]
    fn stratified_is_unbiased_on_fixtures() {
        let g = fixtures::gloves(2, 3);
        let exact = shapley_exact(&g).unwrap();
        for (p, want) in exact.iter().enumerate() {
            let est = estimate_player_stratified(&g, p, 4000, 17);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn antithetic_is_unbiased_on_fixtures() {
        let g = fixtures::paper_example_2_3();
        let exact = shapley_exact(&g).unwrap();
        for (p, want) in exact.iter().enumerate() {
            let est = estimate_player_antithetic(&g, p, 10_000, 23);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn stratified_beats_plain_variance_on_majority() {
        // The majority game's marginal is entirely explained by coalition
        // size, so stratification should collapse the standard error.
        let g = fixtures::majority(9);
        let plain = estimate_player(
            &g,
            0,
            SamplingConfig {
                samples: 9 * 200,
                seed: 31,
            },
        );
        let strat = estimate_player_stratified(&g, 0, 200, 31);
        assert_eq!(plain.samples, strat.samples);
        assert!(
            strat.std_error() < plain.std_error() * 0.5,
            "stratified {} vs plain {}",
            strat.std_error(),
            plain.std_error()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = fixtures::gloves(1, 2);
        let a = estimate_player_stratified(&g, 0, 100, 5);
        let b = estimate_player_stratified(&g, 0, 100, 5);
        assert_eq!(a, b);
        let c = estimate_player_antithetic(&g, 0, 100, 5);
        let d = estimate_player_antithetic(&g, 0, 100, 5);
        assert_eq!(c, d);
    }

    #[test]
    fn dummy_player_is_exactly_zero() {
        let g = fixtures::paper_example_2_3();
        let s = estimate_player_stratified(&g, 3, 50, 1);
        assert_eq!(s.value, 0.0);
        let a = estimate_player_antithetic(&g, 3, 50, 1);
        assert_eq!(a.value, 0.0);
    }

    #[test]
    fn sample_counts_reported() {
        let g = fixtures::gloves(1, 2);
        let s = estimate_player_stratified(&g, 0, 10, 0);
        assert_eq!(s.samples, 3 * 10);
        let a = estimate_player_antithetic(&g, 0, 25, 0);
        assert_eq!(a.samples, 25);
    }
}
