//! Cooperative games.
//!
//! A cooperative game is a pair `(N, v)` of a finite player set and a
//! characteristic function `v : 2^N → ℝ` with `v(∅) = 0` (§2.2 of the
//! paper). T-REx instantiates two such games — players = denial constraints
//! and players = table cells — but the solvers in this crate are generic
//! over the [`Game`] trait (and the [`StochasticGame`] extension used by the
//! random-replacement sampling estimator of Example 2.5).

use rand::RngCore;

/// A set of players, represented as a dynamic bitset. Player counts in the
/// cell game reach thousands, so a fixed `u64` would not do.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Coalition {
    n: usize,
    bits: Vec<u64>,
}

impl Clone for Coalition {
    fn clone(&self) -> Self {
        Coalition {
            n: self.n,
            bits: self.bits.clone(),
        }
    }

    /// Manual impl so `clone_from` reuses the destination's word buffer —
    /// the batched walk drivers materialize coalition prefixes into reused
    /// scratch, and a derived `Clone` would reallocate per prefix.
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.bits.clone_from(&source.bits);
    }
}

impl Coalition {
    /// The empty coalition over `n` players.
    pub fn empty(n: usize) -> Self {
        Coalition {
            n,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// The grand coalition (all `n` players).
    pub fn full(n: usize) -> Self {
        let mut c = Coalition::empty(n);
        for i in 0..n {
            c.insert(i);
        }
        c
    }

    /// Build from an iterator of player indices.
    pub fn from_players(n: usize, players: impl IntoIterator<Item = usize>) -> Self {
        let mut c = Coalition::empty(n);
        for p in players {
            c.insert(p);
        }
        c
    }

    /// Build from the low bits of a `u64` mask (for enumeration, `n ≤ 64`).
    pub fn from_mask(n: usize, mask: u64) -> Self {
        assert!(n <= 64, "from_mask supports at most 64 players");
        let mut c = Coalition::empty(n);
        c.bits[0] = mask & if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        c
    }

    /// Number of players in the game (not the coalition size).
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Is player `i` in the coalition?
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.n);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// The membership as raw bitmask words — player `i` is bit `i % 64` of
    /// word `i / 64`. Lets hot characteristic functions test membership in
    /// bulk instead of per player.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Remove every player, keeping the allocation (samplers reuse one
    /// coalition across millions of walks).
    #[inline]
    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
    }

    /// Add player `i`. Returns whether it was newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.n);
        let w = &mut self.bits[i / 64];
        let m = 1u64 << (i % 64);
        let added = *w & m == 0;
        *w |= m;
        added
    }

    /// Remove player `i`. Returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.n);
        let w = &mut self.bits[i / 64];
        let m = 1u64 << (i % 64);
        let present = *w & m != 0;
        *w &= !m;
        present
    }

    /// Coalition size `|S|`.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterate the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|i| self.contains(*i))
    }

    /// The membership as a `Vec<bool>` (index = player).
    pub fn to_mask_vec(&self) -> Vec<bool> {
        (0..self.n).map(|i| self.contains(i)).collect()
    }
}

/// A deterministic cooperative game.
///
/// `Sync` is a supertrait: the parallel sampling engine ([`crate::parallel`])
/// evaluates one shared game from several permutation workers. Characteristic
/// functions are pure, so this is free for honest implementations; games that
/// memoize internally (e.g. oracle caches) must use thread-safe interior
/// mutability.
pub trait Game: Sync {
    /// Number of players `|N|`.
    fn num_players(&self) -> usize;

    /// The characteristic function `v(S)`. Implementations must satisfy
    /// `v(∅) = 0` for Shapley efficiency to mean what the paper says.
    fn value(&self, coalition: &Coalition) -> f64;

    /// Evaluate many coalitions at once; returns one value per coalition,
    /// index-aligned with `coalitions`.
    ///
    /// The default forwards to [`Game::value`] per coalition, so every game
    /// is batch-capable with identical answers. Games backed by a batched
    /// oracle (the T-REx coalition games) override this to hand the whole
    /// batch to the oracle's coalescing layer — same values, but a
    /// per-call-latency backend sees one dispatch instead of
    /// `coalitions.len()`. Overrides must return exactly what per-coalition
    /// `value` calls would, in the same order: the solvers rely on that for
    /// their bit-identical-at-any-batch-size guarantee.
    fn value_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        coalitions.iter().map(|c| self.value(c)).collect()
    }

    /// Optional label for player `i` (used in rankings and reports).
    fn player_label(&self, i: usize) -> String {
        format!("p{i}")
    }
}

/// A game whose evaluation may involve randomness — the random-replacement
/// cell game of Example 2.5, where out-of-coalition cells take draws from
/// their column distributions.
///
/// `eval_pair` evaluates `(v(S ∪ {i}), v(S))` with *common random numbers*:
/// the paper generates one replacement table and toggles only cell `i`
/// between the two instances, which slashes the variance of the marginal
/// estimate. Deterministic games get this for free via the blanket impl.
///
/// `Sync` is a supertrait for the same reason as on [`Game`]: parallel
/// workers share one game and draw from worker-local RNG streams.
pub trait StochasticGame: Sync {
    /// Number of players.
    fn num_players(&self) -> usize;

    /// Evaluate the marginal pair `(v(S ∪ {i}), v(S))` for player `i ∉ S`,
    /// sharing randomness between the two evaluations.
    fn eval_pair(&self, coalition: &Coalition, player: usize, rng: &mut dyn RngCore) -> (f64, f64);

    /// Optional label for player `i`.
    fn player_label(&self, i: usize) -> String {
        format!("p{i}")
    }
}

/// Every deterministic game is trivially a stochastic game (the randomness
/// is unused).
impl<G: Game> StochasticGame for G {
    fn num_players(&self) -> usize {
        Game::num_players(self)
    }

    fn eval_pair(
        &self,
        coalition: &Coalition,
        player: usize,
        _rng: &mut dyn RngCore,
    ) -> (f64, f64) {
        debug_assert!(!coalition.contains(player));
        let without = self.value(coalition);
        let mut with = coalition.clone();
        with.insert(player);
        (self.value(&with), without)
    }

    fn player_label(&self, i: usize) -> String {
        Game::player_label(self, i)
    }
}

/// A game defined by a closure — handy for tests and benchmarks.
pub struct FnGame<F: Fn(&Coalition) -> f64 + Sync> {
    n: usize,
    f: F,
}

impl<F: Fn(&Coalition) -> f64 + Sync> FnGame<F> {
    /// Wrap a closure as a game over `n` players.
    pub fn new(n: usize, f: F) -> Self {
        FnGame { n, f }
    }
}

impl<F: Fn(&Coalition) -> f64 + Sync> Game for FnGame<F> {
    fn num_players(&self) -> usize {
        self.n
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        (self.f)(coalition)
    }
}

/// Textbook games with closed-form Shapley values, used as solver oracles in
/// tests and benches.
pub mod fixtures {
    use super::{Coalition, FnGame};

    /// The unanimity game on carrier `T`: `v(S) = 1` iff `T ⊆ S`.
    /// Shapley: `1/|T|` for members of `T`, `0` otherwise.
    pub fn unanimity(n: usize, carrier: Vec<usize>) -> FnGame<impl Fn(&Coalition) -> f64> {
        FnGame::new(n, move |s| {
            if carrier.iter().all(|p| s.contains(*p)) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Additive game with weights `w`: `v(S) = Σ_{i∈S} w_i`.
    /// Shapley: exactly `w_i`.
    pub fn additive(weights: Vec<f64>) -> FnGame<impl Fn(&Coalition) -> f64> {
        let n = weights.len();
        FnGame::new(n, move |s| s.iter().map(|i| weights[i]).sum())
    }

    /// Symmetric majority game: `v(S) = 1` iff `|S| > n/2`.
    /// Shapley: `1/n` each, by symmetry + efficiency.
    pub fn majority(n: usize) -> FnGame<impl Fn(&Coalition) -> f64> {
        FnGame::new(n, move |s| if 2 * s.len() > n { 1.0 } else { 0.0 })
    }

    /// The gloves market: players `0..l` hold left gloves, `l..n` right
    /// gloves; `v(S) = min(#left, #right)`.
    pub fn gloves(left: usize, right: usize) -> FnGame<impl Fn(&Coalition) -> f64> {
        let n = left + right;
        FnGame::new(n, move |s| {
            let l = s.iter().filter(|i| *i < left).count();
            let r = s.len() - l;
            l.min(r) as f64
        })
    }

    /// The T-REx constraint game of the paper's Example 2.3, abstractly:
    /// 4 players; `v(S) = 1` iff `{0,1} ⊆ S` or `2 ∈ S`. Player 3 is a
    /// dummy. Shapley: `(1/6, 1/6, 2/3, 0)`.
    pub fn paper_example_2_3() -> FnGame<impl Fn(&Coalition) -> f64> {
        FnGame::new(4, |s| {
            if s.contains(2) || (s.contains(0) && s.contains(1)) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The one-hot skewed *stochastic* game: player 0's marginal is a fair
    /// ±1 coin flip (unit variance — its adaptive budget runs to the
    /// sample cap, Shapley value 0), every other player is a dummy (zero
    /// variance — stops at the minimum two batches). The canonical
    /// workload for `Schedule::WorkStealing`: one player owning nearly the
    /// whole adaptive budget, which whole-player claiming cannot balance.
    ///
    /// `work` iterations of integer mixing are burned per evaluation to
    /// emulate the cost of a repair-oracle call (`0` for pure logic
    /// tests; the scaling experiment uses tens of thousands so wall-time
    /// differences are measurable).
    pub fn one_hot(n: usize, work: u64) -> OneHotGame {
        assert!(n >= 1, "need at least the hot player");
        OneHotGame { n, work }
    }

    /// See [`one_hot`].
    pub struct OneHotGame {
        n: usize,
        work: u64,
    }

    impl super::StochasticGame for OneHotGame {
        fn num_players(&self) -> usize {
            self.n
        }

        fn eval_pair(
            &self,
            _coalition: &Coalition,
            player: usize,
            rng: &mut dyn rand::RngCore,
        ) -> (f64, f64) {
            use rand::Rng;
            if self.work > 0 {
                // Deterministic busywork standing in for the black-box
                // repair; the result feeds black_box so the spin cannot
                // be elided.
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ player as u64;
                for i in 0..self.work {
                    x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i);
                }
                std::hint::black_box(x);
            }
            if player == 0 {
                (if rng.gen_bool(0.5) { 1.0 } else { -1.0 }, 0.0)
            } else {
                (0.0, 0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalition_insert_remove_contains() {
        let mut c = Coalition::empty(130);
        assert!(c.is_empty());
        assert!(c.insert(0));
        assert!(c.insert(64));
        assert!(c.insert(129));
        assert!(!c.insert(64));
        assert_eq!(c.len(), 3);
        assert!(c.contains(129));
        assert!(!c.contains(1));
        assert!(c.remove(64));
        assert!(!c.remove(64));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn coalition_iter_ascending() {
        let c = Coalition::from_players(70, [65, 3, 12]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 12, 65]);
    }

    #[test]
    fn full_and_mask_roundtrip() {
        let c = Coalition::full(7);
        assert_eq!(c.len(), 7);
        let m = Coalition::from_mask(7, 0b1010101);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2, 4, 6]);
        assert_eq!(
            m.to_mask_vec(),
            vec![true, false, true, false, true, false, true]
        );
    }

    #[test]
    fn from_mask_truncates_to_n() {
        let c = Coalition::from_mask(3, u64::MAX);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn fn_game_evaluates() {
        let g = FnGame::new(3, |s: &Coalition| s.len() as f64);
        assert_eq!(Game::num_players(&g), 3);
        assert_eq!(g.value(&Coalition::from_players(3, [0, 2])), 2.0);
        assert_eq!(g.value(&Coalition::empty(3)), 0.0);
    }

    #[test]
    fn blanket_stochastic_impl_computes_marginals() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = fixtures::unanimity(3, vec![0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let s = Coalition::from_players(3, [1]);
        let (with, without) = StochasticGame::eval_pair(&g, &s, 0, &mut rng);
        assert_eq!((with, without), (1.0, 0.0));
    }

    #[test]
    fn fixture_values() {
        let u = fixtures::unanimity(4, vec![1, 2]);
        assert_eq!(u.value(&Coalition::from_players(4, [1, 2, 3])), 1.0);
        assert_eq!(u.value(&Coalition::from_players(4, [1, 3])), 0.0);

        let a = fixtures::additive(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.value(&Coalition::from_players(3, [0, 2])), 4.0);

        let m = fixtures::majority(5);
        assert_eq!(m.value(&Coalition::from_players(5, [0, 1])), 0.0);
        assert_eq!(m.value(&Coalition::from_players(5, [0, 1, 2])), 1.0);

        let g = fixtures::gloves(1, 2);
        assert_eq!(g.value(&Coalition::from_players(3, [1, 2])), 0.0);
        assert_eq!(g.value(&Coalition::from_players(3, [0, 1])), 1.0);

        let p = fixtures::paper_example_2_3();
        assert_eq!(p.value(&Coalition::from_players(4, [2])), 1.0);
        assert_eq!(p.value(&Coalition::from_players(4, [0, 1])), 1.0);
        assert_eq!(p.value(&Coalition::from_players(4, [0, 3])), 0.0);
        assert_eq!(p.value(&Coalition::empty(4)), 0.0);
    }
}
