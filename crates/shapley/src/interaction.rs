//! Shapley interaction indices.
//!
//! The paper's Example 2.3 observes that C1 and C2 "contributed, **as a
//! pair**, half that of C3" — the two constraints only matter together
//! (City must be fixed before the City→Country rule can fire). Individual
//! Shapley values cannot express this complementarity; the *Shapley
//! interaction index* of Grabisch & Roubens does:
//!
//! ```text
//! I(i,j) = Σ_{S ⊆ N\{i,j}}  |S|!(n−|S|−2)!/(n−1)!  · Δ_{ij} v(S)
//! Δ_{ij} v(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)
//! ```
//!
//! `I(i,j) > 0` means complementary players (like C1, C2), `< 0`
//! substitutes (like C3 with either of them — each makes the other less
//! necessary), `0` independence. The `exp_interaction` harness computes
//! these for the paper's constraint game.

use crate::exact::{ExactError, MAX_EXACT_PLAYERS};
use crate::game::{Coalition, Game};

/// Exact pairwise Shapley interaction index `I(i, j)` for all pairs, by
/// subset enumeration. Returns an `n × n` symmetric matrix with zero
/// diagonal (the self-interaction slot is unused).
pub fn shapley_interaction_exact<G: Game + ?Sized>(game: &G) -> Result<Vec<Vec<f64>>, ExactError> {
    let n = game.num_players();
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            limit: MAX_EXACT_PLAYERS,
        });
    }
    if n < 2 {
        return Ok(vec![vec![0.0; n]; n]);
    }
    let size = 1usize << n;
    let mut values = vec![0.0f64; size];
    for (mask, slot) in values.iter_mut().enumerate() {
        *slot = game.value(&Coalition::from_mask(n, mask as u64));
    }
    // factorials up to n
    let mut fact = vec![1.0f64; n + 1];
    for i in 1..=n {
        fact[i] = fact[i - 1] * i as f64;
    }
    let mut out = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut total = 0.0;
            let pair = (1usize << i) | (1usize << j);
            for mask in 0..size {
                if mask & pair != 0 {
                    continue; // S must exclude both
                }
                let s = (mask as u64).count_ones() as usize;
                let weight = fact[s] * fact[n - s - 2] / fact[n - 1];
                let delta = values[mask | pair] - values[mask | (1 << i)] - values[mask | (1 << j)]
                    + values[mask];
                total += weight * delta;
            }
            out[i][j] = total;
            out[j][i] = total;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::fixtures;

    #[test]
    fn additive_games_have_zero_interaction() {
        let g = fixtures::additive(vec![1.0, 2.0, 3.0]);
        let m = shapley_interaction_exact(&g).unwrap();
        for row in &m {
            for v in row {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unanimity_pair_is_complementary() {
        // v = 1 iff {0,1} ⊆ S: the two carriers are pure complements.
        let g = fixtures::unanimity(3, vec![0, 1]);
        let m = shapley_interaction_exact(&g).unwrap();
        assert!(m[0][1] > 0.0);
        // Player 2 is a dummy: zero interaction with everyone.
        assert!(m[0][2].abs() < 1e-12);
        assert!(m[1][2].abs() < 1e-12);
    }

    #[test]
    fn paper_game_interactions_match_the_papers_story() {
        // C1, C2 are complements (the pair carries the C1∧C2 route); C3 is
        // a substitute for each of them (it repairs alone).
        let g = fixtures::paper_example_2_3();
        let m = shapley_interaction_exact(&g).unwrap();
        assert!(m[0][1] > 0.0, "C1×C2 should be complementary: {}", m[0][1]);
        assert!(m[0][2] < 0.0, "C1×C3 should be substitutes: {}", m[0][2]);
        assert!(m[1][2] < 0.0, "C2×C3 should be substitutes: {}", m[1][2]);
        // C4 is a dummy: zero interaction across the board.
        for row in m.iter().take(3) {
            assert!(row[3].abs() < 1e-12);
        }
        // Symmetry of the matrix and of the symmetric players C1/C2.
        assert_eq!(m[0][2], m[2][0]);
        assert!((m[0][2] - m[1][2]).abs() < 1e-12);
    }

    #[test]
    fn gloves_left_right_interaction_positive() {
        // A left and a right glove complement each other.
        let g = fixtures::gloves(1, 1);
        let m = shapley_interaction_exact(&g).unwrap();
        assert!(m[0][1] > 0.0);
    }

    #[test]
    fn small_games_are_fine_large_rejected() {
        let g0 = crate::game::FnGame::new(1, |_: &Coalition| 0.0);
        assert_eq!(shapley_interaction_exact(&g0).unwrap(), vec![vec![0.0]]);
        let g = crate::game::FnGame::new(30, |_: &Coalition| 0.0);
        assert!(shapley_interaction_exact(&g).is_err());
    }
}
