//! Exact Shapley values by subset enumeration.
//!
//! Directly implements the definition of §2.2:
//!
//! ```text
//! Shap(N, v, a) = Σ_{S ⊆ N\{a}}  |S|!(|N|−|S|−1)!/|N|!  ·  (v(S∪{a}) − v(S))
//! ```
//!
//! Cost is `Θ(2^n)` characteristic-function evaluations (each coalition is
//! evaluated once and its value reused for all `n` players), so this is the
//! solver T-REx uses for **constraints** — "the naïve approach is feasible
//! as the number of DCs is usually small" (§1) — and it is capped at
//! [`MAX_EXACT_PLAYERS`] players.
//!
//! For 0/1-valued games (every T-REx game is one: `Alg|t[A] ∈ {0,1}`) the
//! module also offers an exact *rational* mode that returns Shapley values
//! as `num/denom` pairs over `i128`, so the paper's hand-computed fractions
//! (`1/6, 1/6, 2/3, 0` in Example 2.3) can be asserted without floating-
//! point tolerance.

use crate::game::{Coalition, Game};
use std::fmt;

/// Enumeration limit: `2^24` coalition evaluations is the most we are
/// willing to do exactly.
pub const MAX_EXACT_PLAYERS: usize = 24;

/// Error from the exact solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The game has more players than [`MAX_EXACT_PLAYERS`].
    TooManyPlayers {
        /// Players in the game.
        n: usize,
        /// The limit.
        limit: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyPlayers { n, limit } => {
                write!(
                    f,
                    "exact Shapley over {n} players exceeds the {limit}-player enumeration limit"
                )
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Factorials `0! … n!` as `f64` (exact up to `22!`, far beyond our player
/// cap for the weight ratio's precision needs).
fn factorials(n: usize) -> Vec<f64> {
    let mut f = vec![1.0f64; n + 1];
    for i in 1..=n {
        f[i] = f[i - 1] * i as f64;
    }
    f
}

/// Coalitions per [`Game::value_batch`] call during full enumeration: large
/// enough to amortize a batched oracle's per-dispatch round trip, small
/// enough to keep the materialized coalition chunk cache-resident.
const EXACT_BATCH: usize = 1 << 10;

/// Evaluate `v` over every mask in `0..size` through the game's batch
/// entry point, in mask order. Identical to calling `game.value` per mask —
/// batch-capable games guarantee index-aligned, value-identical answers —
/// but a batched oracle sees `EXACT_BATCH` coalitions per dispatch instead
/// of one.
fn values_by_mask<G: Game + ?Sized>(game: &G, n: usize, size: usize) -> Vec<f64> {
    let mut values = vec![0.0f64; size];
    let mut chunk: Vec<Coalition> = Vec::with_capacity(EXACT_BATCH.min(size));
    let mut start = 0usize;
    while start < size {
        let end = size.min(start + EXACT_BATCH);
        chunk.clear();
        chunk.extend((start..end).map(|mask| Coalition::from_mask(n, mask as u64)));
        let got = game.value_batch(&chunk);
        assert_eq!(
            got.len(),
            chunk.len(),
            "value_batch must answer per coalition"
        );
        values[start..end].copy_from_slice(&got);
        start = end;
    }
    values
}

/// Exact Shapley values of every player, by full subset enumeration.
///
/// Evaluates `v` on all `2^n` coalitions exactly once. Returns the values in
/// player order.
pub fn shapley_exact<G: Game + ?Sized>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = game.num_players();
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            limit: MAX_EXACT_PLAYERS,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let size = 1usize << n;
    // v over all coalitions, indexed by bitmask (batched evaluation).
    let values = values_by_mask(game, n, size);
    let fact = factorials(n);
    let mut phi = vec![0.0f64; n];
    for mask in 0..size {
        let s = (mask as u64).count_ones() as usize;
        for (i, phi_i) in phi.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                continue; // S must exclude the player
            }
            let weight = fact[s] * fact[n - s - 1] / fact[n];
            let with = values[mask | (1 << i)];
            let without = values[mask];
            *phi_i += weight * (with - without);
        }
    }
    Ok(phi)
}

/// An exact rational `num/denom` (not necessarily reduced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    /// Numerator.
    pub num: i128,
    /// Denominator (always positive).
    pub den: i128,
}

impl Rational {
    /// Reduce to lowest terms.
    pub fn reduced(self) -> Rational {
        fn gcd(a: i128, b: i128) -> i128 {
            if b == 0 {
                a.abs()
            } else {
                gcd(b, a % b)
            }
        }
        let g = gcd(self.num, self.den).max(1);
        Rational {
            num: self.num / g,
            den: self.den / g,
        }
    }

    /// Convert to `f64`.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.reduced();
        if r.den == 1 {
            write!(f, "{}", r.num)
        } else {
            write!(f, "{}/{}", r.num, r.den)
        }
    }
}

/// Exact Shapley values of a **0/1 game** as rationals with denominator
/// `n!`.
///
/// The game's `value` must return exactly `0.0` or `1.0` on every coalition;
/// anything else is reported as an error string in the `Err` channel of the
/// inner result. Player cap `n ≤ 20` keeps `n! · 2^n` within `i128`.
pub fn shapley_exact_rational<G: Game + ?Sized>(game: &G) -> Result<Vec<Rational>, ExactError> {
    let n = game.num_players();
    if n > 20 {
        return Err(ExactError::TooManyPlayers { n, limit: 20 });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let size = 1usize << n;
    let values: Vec<bool> = values_by_mask(game, n, size)
        .into_iter()
        .map(|v| {
            assert!(
                v == 0.0 || v == 1.0,
                "shapley_exact_rational requires a 0/1 game, got v = {v}"
            );
            v == 1.0
        })
        .collect();
    let mut fact = vec![1i128; n + 1];
    for i in 1..=n {
        fact[i] = fact[i - 1] * i as i128;
    }
    let mut num = vec![0i128; n];
    for mask in 0..size {
        let s = (mask as u64).count_ones() as usize;
        for (i, num_i) in num.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                continue;
            }
            let with = values[mask | (1 << i)] as i128;
            let without = values[mask] as i128;
            *num_i += fact[s] * fact[n - s - 1] * (with - without);
        }
    }
    Ok(num
        .into_iter()
        .map(|numerator| {
            Rational {
                num: numerator,
                den: fact[n],
            }
            .reduced()
        })
        .collect())
}

/// Exact Shapley value of a *single* player without materializing the
/// full-coalition table: enumerates the `2^(n-1)` subsets of `N \ {player}`.
///
/// Useful when only one player matters and `n` is a little above what
/// [`shapley_exact`]'s all-players table would want to allocate.
pub fn shapley_exact_player<G: Game + ?Sized>(game: &G, player: usize) -> Result<f64, ExactError> {
    let n = game.num_players();
    if n > MAX_EXACT_PLAYERS + 1 {
        return Err(ExactError::TooManyPlayers {
            n,
            limit: MAX_EXACT_PLAYERS + 1,
        });
    }
    assert!(player < n, "player {player} out of range ({n} players)");
    let others: Vec<usize> = (0..n).filter(|i| *i != player).collect();
    let m = others.len();
    let fact = factorials(n);
    let mut phi = 0.0;
    for mask in 0u64..(1u64 << m) {
        let mut s = Coalition::empty(n);
        for (bit, p) in others.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                s.insert(*p);
            }
        }
        let without = game.value(&s);
        s.insert(player);
        let with = game.value(&s);
        let size = (mask.count_ones()) as usize;
        phi += fact[size] * fact[n - size - 1] / fact[n] * (with - without);
    }
    Ok(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::fixtures;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn unanimity_game_splits_evenly_over_carrier() {
        let g = fixtures::unanimity(5, vec![1, 3]);
        let phi = shapley_exact(&g).unwrap();
        assert_close(&phi, &[0.0, 0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn additive_game_returns_weights() {
        let w = vec![0.5, -1.0, 2.25, 0.0];
        let g = fixtures::additive(w.clone());
        assert_close(&shapley_exact(&g).unwrap(), &w);
    }

    #[test]
    fn majority_game_is_symmetric() {
        let g = fixtures::majority(5);
        let phi = shapley_exact(&g).unwrap();
        assert_close(&phi, &[0.2; 5]);
    }

    #[test]
    fn gloves_market_values() {
        // 1 left glove, 2 right gloves: the left holder gets 2/3.
        let g = fixtures::gloves(1, 2);
        let phi = shapley_exact(&g).unwrap();
        assert_close(&phi, &[2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]);
    }

    #[test]
    fn paper_example_2_3_values() {
        let g = fixtures::paper_example_2_3();
        let phi = shapley_exact(&g).unwrap();
        assert_close(&phi, &[1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0, 0.0]);
    }

    #[test]
    fn paper_example_2_3_rational() {
        let g = fixtures::paper_example_2_3();
        let phi = shapley_exact_rational(&g).unwrap();
        assert_eq!(phi[0], Rational { num: 1, den: 6 });
        assert_eq!(phi[1], Rational { num: 1, den: 6 });
        assert_eq!(phi[2], Rational { num: 2, den: 3 });
        assert_eq!(phi[3], Rational { num: 0, den: 1 });
        assert_eq!(phi[2].to_string(), "2/3");
    }

    #[test]
    fn efficiency_on_fixtures() {
        let g = fixtures::gloves(2, 3);
        let phi = shapley_exact(&g).unwrap();
        let total: f64 = phi.iter().sum();
        let grand = g.value(&Coalition::full(5));
        assert!((total - grand).abs() < 1e-12);
    }

    #[test]
    fn single_player_matches_all_players() {
        let g = fixtures::gloves(2, 2);
        let phi = shapley_exact(&g).unwrap();
        for (i, want) in phi.iter().enumerate() {
            let p = shapley_exact_player(&g, i).unwrap();
            assert!((p - want).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_players_is_empty() {
        let g = crate::game::FnGame::new(0, |_: &Coalition| 0.0);
        assert!(shapley_exact(&g).unwrap().is_empty());
        assert!(shapley_exact_rational(&g).unwrap().is_empty());
    }

    #[test]
    fn too_many_players_errors() {
        let g = crate::game::FnGame::new(30, |_: &Coalition| 0.0);
        assert!(matches!(
            shapley_exact(&g),
            Err(ExactError::TooManyPlayers { n: 30, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "0/1 game")]
    fn rational_rejects_non_binary_games() {
        let g = fixtures::additive(vec![0.5, 0.5]);
        let _ = shapley_exact_rational(&g);
    }

    #[test]
    fn rational_matches_float() {
        let g = fixtures::unanimity(6, vec![0, 2, 4]);
        let f = shapley_exact(&g).unwrap();
        let r = shapley_exact_rational(&g).unwrap();
        for (x, y) in f.iter().zip(r) {
            assert!((x - y.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_display_reduces() {
        assert_eq!(Rational { num: 4, den: 24 }.to_string(), "1/6");
        assert_eq!(Rational { num: 0, den: 24 }.to_string(), "0");
        assert_eq!(Rational { num: 24, den: 24 }.to_string(), "1");
    }
}
