//! The Banzhaf power index — an alternative attribution measure.
//!
//! The Banzhaf value of player `i` is the *unweighted* average marginal
//! contribution over all coalitions of the other players:
//!
//! ```text
//! Bz(i) = 1/2^(n-1) · Σ_{S ⊆ N\{i}} ( v(S ∪ {i}) − v(S) )
//! ```
//!
//! versus Shapley's size-weighted average. Banzhaf drops the efficiency
//! axiom (values need not sum to `v(N)`) but keeps dummy and symmetry, and
//! is a standard comparison point for attribution methods. T-REx uses
//! Shapley; this module powers the "would a cheaper index give the same
//! ranking?" extension experiment (`exp_banzhaf`), which is exactly the
//! kind of question a user of the explanations would ask.

use crate::convergence::RunningStats;
use crate::exact::{ExactError, MAX_EXACT_PLAYERS};
use crate::game::{Coalition, Game, StochasticGame};
use crate::sampling::Estimate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact Banzhaf values of every player by subset enumeration (`Θ(2^n)`).
pub fn banzhaf_exact<G: Game + ?Sized>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = game.num_players();
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            limit: MAX_EXACT_PLAYERS,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let size = 1usize << n;
    let mut values = vec![0.0f64; size];
    for (mask, slot) in values.iter_mut().enumerate() {
        *slot = game.value(&Coalition::from_mask(n, mask as u64));
    }
    let denom = (1u64 << (n - 1)) as f64;
    let mut bz = vec![0.0f64; n];
    for mask in 0..size {
        for (i, bz_i) in bz.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                continue;
            }
            *bz_i += (values[mask | (1 << i)] - values[mask]) / denom;
        }
    }
    Ok(bz)
}

/// Monte-Carlo Banzhaf estimate for one player: `m` uniformly random
/// coalitions of the other players (each player independently in/out with
/// probability ½).
pub fn banzhaf_estimate<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    samples: usize,
    seed: u64,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    for _ in 0..samples {
        let mut coalition = Coalition::empty(n);
        for p in 0..n {
            if p != player && rng.gen_bool(0.5) {
                coalition.insert(p);
            }
        }
        let (with, without) = game.eval_pair(&coalition, player, &mut rng);
        stats.push(with - without);
    }
    Estimate {
        value: stats.mean(),
        std_dev: stats.std_dev(),
        samples: stats.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::fixtures;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn additive_games_return_weights() {
        // For additive games Banzhaf = Shapley = the weights.
        let w = vec![1.0, -0.5, 2.0];
        let g = fixtures::additive(w.clone());
        assert_close(&banzhaf_exact(&g).unwrap(), &w);
    }

    #[test]
    fn unanimity_banzhaf_differs_from_shapley() {
        // Unanimity on {0,1} over 3 players: Shapley gives 1/2 each to the
        // carrier; Banzhaf gives 1/2 each too... carrier of size 2 out of
        // n=3: Bz(0) = #{S ⊆ {1,2}\... : 1 ∈ S}/4 = 2/4 = 1/2. Same here.
        // Use majority(3): Shapley = 1/3 each; Banzhaf = probability of
        // being pivotal = (coalitions of other 2 with exactly 1 member)/4
        // = 2/4 = 1/2 ≠ 1/3.
        let g = fixtures::majority(3);
        let bz = banzhaf_exact(&g).unwrap();
        assert_close(&bz, &[0.5, 0.5, 0.5]);
        let sh = crate::exact::shapley_exact(&g).unwrap();
        assert!((sh[0] - 1.0 / 3.0).abs() < 1e-12);
        // Banzhaf is not efficient: values sum to 1.5 ≠ v(N) = 1.
        assert!((bz.iter().sum::<f64>() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn dummy_player_gets_zero() {
        let g = fixtures::paper_example_2_3();
        let bz = banzhaf_exact(&g).unwrap();
        assert_eq!(bz[3], 0.0);
        // And the paper game's Banzhaf ranking matches Shapley's ordering:
        // C3 ≻ C1 = C2 ≻ C4.
        assert!(bz[2] > bz[0]);
        assert!((bz[0] - bz[1]).abs() < 1e-12);
    }

    #[test]
    fn paper_game_banzhaf_values() {
        // v(S) = 1 iff 2 ∈ S or {0,1} ⊆ S, n = 4.
        // Bz(2): marginal is 1 iff S (⊆ {0,1,3}) doesn't contain {0,1}:
        // 8 - 2 = 6 of 8 → 3/4.
        // Bz(0): pivotal iff 1 ∈ S, 2 ∉ S: 2 of 8 → 1/4.
        let g = fixtures::paper_example_2_3();
        let bz = banzhaf_exact(&g).unwrap();
        assert_close(&bz, &[0.25, 0.25, 0.75, 0.0]);
    }

    #[test]
    fn estimate_converges_to_exact() {
        let g = fixtures::gloves(2, 3);
        let exact = banzhaf_exact(&g).unwrap();
        for (p, want) in exact.iter().enumerate() {
            let est = banzhaf_estimate(&g, p, 20_000, 7);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn estimate_deterministic_per_seed() {
        let g = fixtures::majority(5);
        assert_eq!(
            banzhaf_estimate(&g, 0, 100, 3),
            banzhaf_estimate(&g, 0, 100, 3)
        );
    }

    #[test]
    fn empty_game() {
        let g = crate::game::FnGame::new(0, |_: &Coalition| 0.0);
        assert!(banzhaf_exact(&g).unwrap().is_empty());
    }

    #[test]
    fn too_many_players_rejected() {
        let g = crate::game::FnGame::new(30, |_: &Coalition| 0.0);
        assert!(banzhaf_exact(&g).is_err());
    }
}
