//! Deterministic multi-threaded permutation sampling.
//!
//! The paper's bottleneck is the Monte-Carlo cell game of §2.3: every
//! permutation sample queries the black-box repair oracle, and tables have
//! *many* cells. The estimators here split the `m` samples of
//! [`crate::sampling`] across a fixed worker count with
//! [`std::thread::scope`] — no work queue, no dependencies — under a strict
//! **determinism contract**:
//!
//! 1. For a fixed `(seed, threads)` pair the result is bit-for-bit
//!    reproducible, regardless of scheduling: every worker owns a statically
//!    assigned contiguous chunk of the sample budget and an RNG stream
//!    derived from `(seed, worker_id)`, and chunk statistics are merged in
//!    worker order with the exact parallel-Welford combine.
//! 2. With `threads = 1` the single worker's stream *is* the serial stream
//!    ([`worker_seed`] maps worker 0 to the unmodified seed), so
//!    [`estimate_all`] reproduces [`crate::sampling::estimate_all`] — and
//!    [`estimate_all_walk`] reproduces
//!    [`crate::sampling::estimate_all_walk`] — bit for bit.
//!
//! The same contract covers the variance-reduced estimators:
//! [`estimate_player_adaptive`] runs synchronized rounds with a shared
//! sample budget (the stopping rule sees only worker-order-merged
//! statistics), [`estimate_player_stratified`] assigns *whole strata* to
//! workers (a stratum never straddles a worker seam), and
//! [`estimate_player_antithetic`] chunks permutation pairs like plain
//! samples. Each replays its serial counterpart exactly at `threads = 1`.
//!
//! Under that **budget-split** schedule, changing `threads` changes which
//! permutations are drawn (each worker has its own stream), so estimates
//! differ *statistically insignificantly* across thread counts but are not
//! expected to be identical — record `(seed, threads)` to reproduce a run.
//!
//! The all-player drivers additionally support a **player-sharded**
//! schedule ([`Schedule::PlayerSharded`]) with a strictly stronger
//! contract: workers claim whole players from an atomic work queue and run
//! the *serial* per-player loop with that player's
//! [`crate::sampling::player_seed`], so the output is **bit-for-bit
//! identical to the serial estimators at any thread count** — `threads`
//! becomes a wall-time knob only. For tables with thousands of cells this
//! also scales better than splitting every player's budget across every
//! worker (each worker touches only the players it claims). See
//! [`Schedule`] for when each mode wins.
//!
//! Games must be [`Sync`]: workers share one `&G`. The coalition games of
//! the T-REx core hold their oracle cache in a sharded mutex map
//! (`trex_repair::ShardedOracle`), so concurrent workers also share cache
//! hits.

use crate::convergence::RunningStats;
use crate::game::{Coalition, Game, StochasticGame};
use crate::sampling::{
    marginal_sample, player_seed, round_seed, splitmix64, walk_once, Estimate, SamplingConfig,
};
use crate::stratified::{antithetic_chunk, stratified_chunk, stratified_estimate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on an explicit thread count. Far above any machine this
/// workload meaningfully scales to; requests beyond it are almost certainly
/// typos (`--threads 100000`) and are rejected instead of spawning workers
/// until the OS gives up.
pub const MAX_THREADS: usize = 1024;

/// Error for nonsensical thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsError {
    /// The rejected request.
    pub requested: usize,
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "--threads {} exceeds the supported maximum of {MAX_THREADS} \
             (use 0 for available parallelism)",
            self.requested
        )
    }
}

impl std::error::Error for ThreadsError {}

/// Number of hardware threads, with a serial fallback when the platform
/// cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a user-requested thread count: `0` means "use available
/// parallelism", `1..=MAX_THREADS` is taken literally, anything larger is a
/// [`ThreadsError`].
pub fn resolve_threads(requested: usize) -> Result<usize, ThreadsError> {
    match requested {
        0 => Ok(available_threads()),
        n if n <= MAX_THREADS => Ok(n),
        n => Err(ThreadsError { requested: n }),
    }
}

/// How the all-player drivers ([`estimate_all`], [`estimate_all_walk`], and
/// the `estimate_all_*` variance-reduced drivers) distribute work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Split every player's sample budget into contiguous chunks, one per
    /// worker (the original engine). Deterministic per `(seed, threads)`
    /// pair; `threads = 1` replays the serial estimators bit for bit.
    /// Keeps every core busy even when there are fewer players than
    /// workers, but every worker touches every player — wasteful for
    /// tables with thousands of cells.
    #[default]
    BudgetSplit,
    /// Workers claim whole players from an atomic work queue and run the
    /// *serial* per-player loop with that player's
    /// [`crate::sampling::player_seed`]. Output is **identical to the
    /// serial estimators at any thread count** (each player's statistics
    /// are one worker's sequential pushes from the serial stream — no
    /// cross-worker merge), so `threads` is a wall-time knob only.
    /// Parallelism is capped by the player count; prefer it whenever
    /// players comfortably outnumber workers.
    PlayerSharded,
    /// [`Schedule::PlayerSharded`] plus round stealing on the adaptive
    /// driver: workers claim whole players from the atomic queue as usual,
    /// but a worker that drains the queue *steals unfinished rounds* of
    /// another player's adaptive budget via per-player round counters, so
    /// one expensive player no longer pins wall-time to a single core.
    ///
    /// Determinism contract: per-player seeds keep the
    /// [`crate::sampling::player_seed`] ladder, and each adaptive round is
    /// a pure function of `(player_seed, round)`
    /// ([`crate::sampling::round_seed`]), folded back in **round order**
    /// with the stopping rule evaluated only on folded prefixes. The
    /// output is therefore bit-identical to the serial round-laddered
    /// estimator [`crate::sampling::estimate_player_adaptive_rounds`] at
    /// **any** thread count, regardless of which worker ran which round.
    /// Note that the round ladder is a *different sample stream* than the
    /// continuous-stream [`crate::sampling::estimate_player_adaptive`]
    /// that [`Schedule::PlayerSharded`] replays — a sequential stream
    /// cannot be split across workers — so the two schedules agree
    /// statistically, not bitwise, on adaptive runs.
    ///
    /// On the fixed-budget walk driver ([`estimate_all_walk`]) stealing
    /// splits every player's walk replay into fixed-size *permutation
    /// blocks* — pure functions of `(seed, player, block)` via skip-ahead
    /// regeneration — claimed from one atomic queue and folded back in
    /// block order, so the output stays bit-identical to the serial walk
    /// at any thread count while workers stay busy whenever another
    /// worker's batched oracle dispatch is in flight. The remaining
    /// fixed-budget drivers ([`estimate_all`], [`estimate_all_stratified`],
    /// [`estimate_all_antithetic`]) have uniform per-player budgets that
    /// whole-player claiming already balances, so there this schedule
    /// behaves exactly like [`Schedule::PlayerSharded`].
    WorkStealing,
}

impl Schedule {
    /// Pick a schedule from the shape of the problem: player-sharded when
    /// there are enough players to keep every worker busy through the
    /// claim queue (at least four claims per worker smooths out uneven
    /// per-player costs), budget-split otherwise. This is the CLI's
    /// `--schedule auto`.
    ///
    /// A single worker always gets budget-split: at `threads = 1` both
    /// schedules are bit-identical to the serial estimators, but the
    /// sharded walk replay would pay its `2n`-evaluations-per-walk price
    /// with no parallelism to buy back.
    /// `auto` never picks [`Schedule::WorkStealing`]: stealing changes the
    /// adaptive sample stream (round ladder instead of one continuous
    /// stream), so it stays an explicit opt-in — the default must keep
    /// reproducing the historical serial estimates.
    pub fn auto(players: usize, threads: usize) -> Schedule {
        if threads > 1 && players >= 4 * threads {
            Schedule::PlayerSharded
        } else {
            Schedule::BudgetSplit
        }
    }

    /// Whether this schedule's all-player drivers claim whole players from
    /// the atomic queue (the player-sharded family).
    fn claims_players(self) -> bool {
        matches!(self, Schedule::PlayerSharded | Schedule::WorkStealing)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::BudgetSplit => write!(f, "budget"),
            Schedule::PlayerSharded => write!(f, "player"),
            Schedule::WorkStealing => write!(f, "steal"),
        }
    }
}

/// Configuration of the parallel estimators: a [`SamplingConfig`] plus a
/// resolved worker count and a work [`Schedule`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Total number of Monte-Carlo samples (split across workers under
    /// [`Schedule::BudgetSplit`]; per player under
    /// [`Schedule::PlayerSharded`], exactly like the serial drivers).
    pub samples: usize,
    /// Base RNG seed; combined with the worker id per stream
    /// (budget-split) or the player id (player-sharded).
    pub seed: u64,
    /// Worker count (must be ≥ 1; see [`resolve_threads`]).
    pub threads: usize,
    /// How the all-player drivers distribute work (single-player
    /// estimators always budget-split — there is nothing to shard).
    pub schedule: Schedule,
}

impl ParallelConfig {
    /// Build from explicit values (budget-split schedule; see
    /// [`ParallelConfig::with_schedule`]).
    pub fn new(samples: usize, seed: u64, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
        ParallelConfig {
            samples,
            seed,
            threads,
            schedule: Schedule::BudgetSplit,
        }
    }

    /// Lift a serial [`SamplingConfig`] onto `threads` workers
    /// (budget-split schedule; see [`ParallelConfig::with_schedule`]).
    pub fn from_sampling(config: SamplingConfig, threads: usize) -> Self {
        Self::new(config.samples, config.seed, threads)
    }

    /// Select the work schedule of the all-player drivers.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The serial view of this configuration (same samples and seed).
    pub fn sampling(&self) -> SamplingConfig {
        SamplingConfig {
            samples: self.samples,
            seed: self.seed,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            samples: 1000,
            seed: 0,
            threads: 1,
            schedule: Schedule::BudgetSplit,
        }
    }
}

/// The seed of worker `w`'s RNG stream.
///
/// Worker 0 gets the **unmodified** seed — this is what makes the
/// single-threaded parallel path replay the serial estimators exactly.
/// Higher workers get the seed xor-mixed with a SplitMix64 hash of their id,
/// which cannot collide with the per-player seed laddering of
/// [`crate::sampling::estimate_all`] the way a plain additive constant
/// would.
fn worker_seed(seed: u64, worker: usize) -> u64 {
    if worker == 0 {
        seed
    } else {
        seed ^ splitmix64(worker as u64)
    }
}

/// Split `samples` into `threads` contiguous chunks, front-loading the
/// remainder so sizes differ by at most one. Returns the per-worker counts.
fn chunk_sizes(samples: usize, threads: usize) -> Vec<usize> {
    let base = samples / threads;
    let extra = samples % threads;
    (0..threads)
        .map(|w| base + usize::from(w < extra))
        .collect()
}

/// The contiguous index ranges induced by [`chunk_sizes`]: worker `w` owns
/// `ranges[w]`, the ranges tile `0..items` in order. Used where the *items*
/// are positional (strata) rather than interchangeable samples.
fn chunk_ranges(items: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let mut start = 0;
    chunk_sizes(items, threads)
        .into_iter()
        .map(|len| {
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// Run `work(p)` for every player `0..n` on `threads` workers claiming
/// players from an atomic queue, and return the results in player order.
///
/// The claim order is scheduling-dependent, but each player's result is a
/// pure function of its index, so the returned vector is not: this is what
/// makes the player-sharded schedules deterministic at any thread count.
/// `threads = 1` (or a single player) runs inline without spawning.
fn run_player_sharded<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let claimed = std::thread::scope(|scope| {
        let next = &next;
        let work = &work;
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let p = next.fetch_add(1, Ordering::Relaxed);
                        if p >= n {
                            break;
                        }
                        out.push((p, work(p)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("player-sharded worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for (p, result) in claimed.into_iter().flatten() {
        debug_assert!(slots[p].is_none(), "player {p} claimed twice");
        slots[p] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("the atomic queue claims every player exactly once"))
        .collect()
}

fn stats_to_estimate(stats: &RunningStats) -> Estimate {
    Estimate {
        value: stats.mean(),
        std_dev: stats.std_dev(),
        samples: stats.count(),
    }
}

/// One worker's share of a single-player estimate: `chunk` marginal samples
/// drawn from the worker's own stream. The sample itself is
/// [`crate::sampling::marginal_sample`] — the *same code* the serial
/// estimator runs, which is what keeps `threads = 1` bit-compatible.
fn player_chunk<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    chunk: usize,
    seed: u64,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    for _ in 0..chunk {
        stats.push(marginal_sample(game, player, &mut rng));
    }
    stats
}

/// Merge per-worker chunk statistics in worker order (determinism contract:
/// the fold order is part of the result).
fn merge_in_order(chunks: Vec<RunningStats>) -> RunningStats {
    let mut total = RunningStats::new();
    for chunk in &chunks {
        total.merge(chunk);
    }
    total
}

/// Parallel version of [`crate::sampling::estimate_player`]: the
/// `config.samples` permutation samples for `player` are split across
/// `config.threads` workers.
pub fn estimate_player<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    config: ParallelConfig,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    assert!(config.threads >= 1, "threads must be >= 1");
    let chunks = chunk_sizes(config.samples, config.threads);
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(w, &chunk)| {
                let seed = worker_seed(config.seed, w);
                scope.spawn(move || player_chunk(game, player, chunk, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    stats_to_estimate(&merge_in_order(worker_stats))
}

/// Parallel version of [`crate::sampling::estimate_all`]: each player keeps
/// the exact per-player derived seed ([`player_seed`]) of the serial path.
///
/// Under [`Schedule::BudgetSplit`], worker `w` computes chunk `w` of
/// *every* player (a static schedule — no work stealing, so the assignment
/// is reproducible), then per-player chunk statistics are merged in worker
/// order. Under [`Schedule::PlayerSharded`], workers claim whole players
/// from an atomic queue and run the serial per-player loop, so the output
/// is identical to [`crate::sampling::estimate_all`] at any thread count.
pub fn estimate_all<G: StochasticGame + ?Sized>(game: &G, config: ParallelConfig) -> Vec<Estimate> {
    let n = game.num_players();
    assert!(config.threads >= 1, "threads must be >= 1");
    if config.schedule.claims_players() {
        return run_player_sharded(n, config.threads, |p| {
            stats_to_estimate(&player_chunk(
                game,
                p,
                config.samples,
                player_seed(config.seed, p),
            ))
        });
    }
    let chunks = chunk_sizes(config.samples, config.threads);
    // worker_stats[w][p] = worker w's chunk statistics for player p.
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(w, &chunk)| {
                scope.spawn(move || {
                    (0..n)
                        .map(|p| {
                            player_chunk(
                                game,
                                p,
                                chunk,
                                worker_seed(player_seed(config.seed, p), w),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    (0..n)
        .map(|p| {
            let mut total = RunningStats::new();
            for per_player in &worker_stats {
                total.merge(&per_player[p]);
            }
            stats_to_estimate(&total)
        })
        .collect()
}

/// Walks per batched replay burst — and the permutation-block size of the
/// walk-stealing schedule ([`steal_all_walk`]). Large enough that a
/// batch-capable oracle amortizes its dispatch over `2 × 32` coalition
/// queries per burst, small enough that a table-sized sample budget still
/// splits into several stealable blocks per player.
const WALK_STEAL_BLOCK: usize = 32;

/// Replay a *permutation block* of one player's serial walk stream: skip
/// the stream's first `start` permutations (generate-and-discard — a walk
/// consumes the RNG only for its Fisher–Yates draws, never for
/// evaluations, so discarding replays the exact draw sequence), then
/// evaluate the next `len` walks and return `player`'s marginals in walk
/// order. A pure function of `(seed, player, start, len)` — the relocatable
/// unit of work the walk-stealing schedule moves between workers.
///
/// For each walk only the two coalitions adjacent to `player` are
/// evaluated; evaluations go through [`Game::value_batch`] in bursts so
/// batch-capable oracles amortize dispatch. Neither changes any marginal:
/// the coalitions are the serial walk's own prefixes, and
/// `v(pred ∪ {p}) − v(pred)` is the same subtraction the serial walk
/// performs when it inserts `p`.
fn walk_replay_block<G: Game + ?Sized>(
    game: &G,
    player: usize,
    seed: u64,
    start: usize,
    len: usize,
) -> Vec<f64> {
    let n = game.num_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..start {
        crate::sampling::random_permutation_into(&mut perm, n, &mut rng);
    }
    let mut marginals = Vec::with_capacity(len);
    let mut pred = Coalition::empty(n);
    let mut coalitions: Vec<Coalition> = Vec::with_capacity(2 * WALK_STEAL_BLOCK);
    let mut remaining = len;
    while remaining > 0 {
        let burst = remaining.min(WALK_STEAL_BLOCK);
        coalitions.clear();
        for _ in 0..burst {
            crate::sampling::random_permutation_into(&mut perm, n, &mut rng);
            pred.clear();
            for &p in &perm {
                if p == player {
                    break;
                }
                pred.insert(p);
            }
            coalitions.push(pred.clone());
            pred.insert(player);
            coalitions.push(pred.clone());
        }
        let values = game.value_batch(&coalitions);
        assert_eq!(
            values.len(),
            coalitions.len(),
            "value_batch must answer per coalition"
        );
        for pair in values.chunks_exact(2) {
            marginals.push(pair[1] - pair[0]);
        }
        remaining -= burst;
    }
    marginals
}

/// One player's full replay of the serial permutation-walk stream: the
/// `samples` marginals of [`walk_replay_block`]`(…, 0, samples)` folded in
/// walk order. Bit-for-bit the serial walk's pushes for this player.
fn walk_replay_player<G: Game + ?Sized>(
    game: &G,
    player: usize,
    samples: usize,
    seed: u64,
) -> RunningStats {
    let mut stats = RunningStats::new();
    for m in walk_replay_block(game, player, seed, 0, samples) {
        stats.push(m);
    }
    stats
}

/// The [`Schedule::WorkStealing`] engine behind [`estimate_all_walk`]:
/// every player's walk replay is split into [`WALK_STEAL_BLOCK`]-sized
/// permutation blocks and workers claim `(player, block)` units from one
/// atomic queue. Blocks are pure functions of `(seed, player, block)`
/// ([`walk_replay_block`] regenerates its stream prefix by skip-ahead), so
/// workers stay busy while another worker's batched oracle dispatch is in
/// flight and no player pins its whole budget to one core.
///
/// Determinism: block `b` replays walks `b·B .. b·B + len` of the player's
/// serial stream exactly, and each player's marginals are folded in block
/// order after the scope joins — the same pushes, in the same order, as
/// the serial estimator. Output is bit-identical to
/// [`crate::sampling::estimate_all_walk`] at **any** thread count.
fn steal_all_walk<G: Game + ?Sized>(game: &G, config: &ParallelConfig) -> Vec<Estimate> {
    let n = game.num_players();
    if config.threads <= 1 || n <= 1 {
        return (0..n)
            .map(|p| stats_to_estimate(&walk_replay_player(game, p, config.samples, config.seed)))
            .collect();
    }
    let blocks_per_player = config.samples.div_ceil(WALK_STEAL_BLOCK).max(1);
    let units = n * blocks_per_player;
    let next = AtomicUsize::new(0);
    let claimed = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..config.threads.min(units))
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let u = next.fetch_add(1, Ordering::Relaxed);
                        if u >= units {
                            break;
                        }
                        let p = u / blocks_per_player;
                        let start = (u % blocks_per_player) * WALK_STEAL_BLOCK;
                        let len = WALK_STEAL_BLOCK.min(config.samples - start);
                        out.push((u, walk_replay_block(game, p, config.seed, start, len)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("walk-stealing worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut slots: Vec<Option<Vec<f64>>> = std::iter::repeat_with(|| None).take(units).collect();
    for (u, marginals) in claimed.into_iter().flatten() {
        debug_assert!(slots[u].is_none(), "unit {u} claimed twice");
        slots[u] = Some(marginals);
    }
    let mut slots = slots.into_iter();
    (0..n)
        .map(|_| {
            let mut stats = RunningStats::new();
            for _ in 0..blocks_per_player {
                let block = slots
                    .next()
                    .flatten()
                    .expect("the atomic queue claims every block exactly once");
                for m in block {
                    stats.push(m);
                }
            }
            stats_to_estimate(&stats)
        })
        .collect()
}

/// Parallel version of [`crate::sampling::estimate_all_walk`] (the
/// Castro-style all-players estimator).
///
/// Under [`Schedule::BudgetSplit`], the `config.samples` permutation walks
/// are split across workers, each walk contributing one marginal sample to
/// every player at `n + 1` evaluations; per-permutation the marginals
/// telescope to `v(N) − v(∅)`, so the merged means still sum to `v(N)`
/// exactly (the efficiency axiom holds per walk and merging preserves it).
///
/// Under [`Schedule::PlayerSharded`], workers claim whole players and
/// *replay* the serial walk stream for each ([`walk_replay_player`]), so
/// the output — efficiency axiom included — is identical to the serial
/// estimator at any thread count. The replay evaluates `2·n` coalitions
/// per walk instead of the serial `n + 1`, but they are the *same*
/// coalitions the serial walk visits (every replayed prefix is a walk
/// prefix), so games backed by a shared memoizing oracle
/// (`trex_repair::ShardedOracle`) pay roughly the serial number of repair
/// calls; for uncached games that need raw throughput over serial
/// identity, prefer budget-split.
///
/// Under [`Schedule::WorkStealing`], the same replay is additionally split
/// into permutation blocks claimed from one atomic queue
/// ([`steal_all_walk`]) — still bit-identical to serial at any thread
/// count, and the schedule to pick when a batching oracle backend leaves
/// whole-player workers idle between dispatches.
pub fn estimate_all_walk<G: Game + ?Sized>(game: &G, config: ParallelConfig) -> Vec<Estimate> {
    let n = game.num_players();
    assert!(config.threads >= 1, "threads must be >= 1");
    if config.schedule == Schedule::WorkStealing {
        return steal_all_walk(game, &config);
    }
    if config.schedule.claims_players() {
        return run_player_sharded(n, config.threads, |p| {
            stats_to_estimate(&walk_replay_player(game, p, config.samples, config.seed))
        });
    }
    let chunks = chunk_sizes(config.samples, config.threads);
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(w, &chunk)| {
                let seed = worker_seed(config.seed, w);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut stats = vec![RunningStats::new(); n];
                    let mut scratch = crate::sampling::WalkScratch::new(n);
                    for _ in 0..chunk {
                        walk_once(game, &mut rng, &mut stats, &mut scratch);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    (0..n)
        .map(|p| {
            let mut total = RunningStats::new();
            for per_player in &worker_stats {
                total.merge(&per_player[p]);
            }
            stats_to_estimate(&total)
        })
        .collect()
}

/// One snapshot of a running [`estimate_all_walk_anytime`] estimate,
/// handed to the checkpoint callback between sampling rounds.
///
/// `estimates` is index-aligned with the game's players and carries the
/// exact values a completed run would report at this sample count —
/// including finite (possibly 0.0) standard deviations at degenerate
/// counts, so a checkpoint can always be serialized.
pub struct AnytimeCheckpoint<'s> {
    /// Permutation walks folded so far (per player under the replay
    /// schedules; summed across workers under budget-split).
    pub completed: usize,
    /// The full walk budget of the run (`config.samples` under the replay
    /// schedules; the total across workers under budget-split).
    pub total: usize,
    /// Current per-player estimates, in player order.
    pub estimates: &'s [Estimate],
}

/// What the checkpoint callback tells the anytime driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnytimeControl {
    /// Keep sampling toward the full budget.
    Continue,
    /// Stop after this checkpoint and return the current estimates —
    /// deadline exhausted, client gone, or the caller is satisfied.
    Stop,
}

/// Anytime version of [`estimate_all_walk`]: run the same schedules, but
/// pause after every `checkpoint_every` walks to hand the caller a
/// [`AnytimeCheckpoint`] snapshot of all current per-player estimates. The
/// callback returns [`AnytimeControl::Stop`] to cut the run short (deadline,
/// disconnect); the driver then returns whatever it has. The second return
/// value is `true` iff the full budget ran.
///
/// **Determinism contract.** A run that completes its budget returns
/// *bit-for-bit* the same estimates as [`estimate_all_walk`] with the same
/// `(seed, threads, schedule)` — checkpoints only observe the state between
/// rounds, they never perturb the RNG streams or the fold order. Under
/// [`Schedule::PlayerSharded`] / [`Schedule::WorkStealing`] each player's
/// persistent replay stream continues across rounds exactly where it
/// stopped, so even every *intermediate* snapshot equals a completed run
/// with that smaller budget. Under [`Schedule::BudgetSplit`] workers
/// advance proportionally each round and the snapshot merges their partial
/// accumulators in worker order; intermediate snapshots are well-defined
/// estimates, and the final one matches the batch driver exactly.
///
/// `checkpoint_every = 0` means a single checkpoint at the end.
/// Cancellation granularity is the checkpoint: the callback runs between
/// rounds, on the calling thread (it needs no `Send`/`Sync`).
pub fn estimate_all_walk_anytime<G: Game + ?Sized>(
    game: &G,
    config: ParallelConfig,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(&AnytimeCheckpoint<'_>) -> AnytimeControl,
) -> (Vec<Estimate>, bool) {
    assert!(config.threads >= 1, "threads must be >= 1");
    let every = if checkpoint_every == 0 {
        config.samples.max(1)
    } else {
        checkpoint_every
    };
    match config.schedule {
        Schedule::BudgetSplit => anytime_budget_split(game, &config, every, &mut on_checkpoint),
        // PlayerSharded and WorkStealing both replay the serial walk
        // stream per player; an incremental replay with persistent RNGs is
        // the same stream, so one driver serves both.
        _ => anytime_replay(game, &config, every, &mut on_checkpoint),
    }
}

/// One player's persistent replay stream of the anytime driver: the RNG
/// and permutation buffer sit exactly `stats.count()` walks into the
/// serial stream, so continuing is free (no skip-ahead).
struct ReplayState {
    rng: StdRng,
    perm: Vec<usize>,
    stats: RunningStats,
}

/// Continue one player's serial-stream replay by `len` walks, folding the
/// marginals into `stats` in walk order. The moral equivalent of
/// [`walk_replay_block`] minus the skip-ahead: the persistent `rng` *is*
/// the stream position. Values are evaluated through [`Game::value_batch`]
/// in [`WALK_STEAL_BLOCK`]-sized bursts, which never changes a marginal —
/// only how many coalitions share a dispatch.
fn walk_replay_continue<G: Game + ?Sized>(
    game: &G,
    player: usize,
    rng: &mut StdRng,
    perm: &mut Vec<usize>,
    len: usize,
    stats: &mut RunningStats,
) {
    let n = game.num_players();
    let mut pred = Coalition::empty(n);
    let mut coalitions: Vec<Coalition> = Vec::with_capacity(2 * WALK_STEAL_BLOCK);
    let mut remaining = len;
    while remaining > 0 {
        let burst = remaining.min(WALK_STEAL_BLOCK);
        coalitions.clear();
        for _ in 0..burst {
            crate::sampling::random_permutation_into(perm, n, rng);
            pred.clear();
            for &p in perm.iter() {
                if p == player {
                    break;
                }
                pred.insert(p);
            }
            coalitions.push(pred.clone());
            pred.insert(player);
            coalitions.push(pred.clone());
        }
        let values = game.value_batch(&coalitions);
        assert_eq!(
            values.len(),
            coalitions.len(),
            "value_batch must answer per coalition"
        );
        for pair in values.chunks_exact(2) {
            stats.push(pair[1] - pair[0]);
        }
        remaining -= burst;
    }
}

/// The replay-schedule half of [`estimate_all_walk_anytime`]: every round
/// advances every player's persistent stream by up to `every` walks (the
/// players of a round are claimed player-sharded, like
/// [`estimate_all_walk`]'s PlayerSharded path), then the calling thread
/// snapshots and checkpoints.
fn anytime_replay<G: Game + ?Sized>(
    game: &G,
    config: &ParallelConfig,
    every: usize,
    on_checkpoint: &mut dyn FnMut(&AnytimeCheckpoint<'_>) -> AnytimeControl,
) -> (Vec<Estimate>, bool) {
    let n = game.num_players();
    let states: Vec<Mutex<ReplayState>> = (0..n)
        .map(|_| {
            Mutex::new(ReplayState {
                rng: StdRng::seed_from_u64(config.seed),
                perm: Vec::with_capacity(n),
                stats: RunningStats::new(),
            })
        })
        .collect();
    let mut done = 0;
    loop {
        let len = every.min(config.samples - done);
        if len > 0 {
            run_player_sharded(n, config.threads, |p| {
                let mut state = states[p].lock().expect("anytime replay state poisoned");
                let state = &mut *state;
                walk_replay_continue(
                    game,
                    p,
                    &mut state.rng,
                    &mut state.perm,
                    len,
                    &mut state.stats,
                );
            });
            done += len;
        }
        let estimates: Vec<Estimate> = states
            .iter()
            .map(|s| stats_to_estimate(&s.lock().expect("anytime replay state poisoned").stats))
            .collect();
        let finished = done >= config.samples;
        let checkpoint = AnytimeCheckpoint {
            completed: done,
            total: config.samples,
            estimates: &estimates,
        };
        let control = on_checkpoint(&checkpoint);
        if finished || control == AnytimeControl::Stop {
            return (estimates, finished);
        }
    }
}

/// The budget-split half of [`estimate_all_walk_anytime`]: workers own
/// persistent RNG streams and per-player accumulators
/// (exactly [`estimate_all_walk`]'s worker state, kept across rounds), and
/// each round advances every worker to a proportional share of its final
/// chunk, so the last round lands every worker on precisely the walk count
/// the batch driver gives it.
fn anytime_budget_split<G: Game + ?Sized>(
    game: &G,
    config: &ParallelConfig,
    every: usize,
    on_checkpoint: &mut dyn FnMut(&AnytimeCheckpoint<'_>) -> AnytimeControl,
) -> (Vec<Estimate>, bool) {
    let n = game.num_players();
    let chunks = chunk_sizes(config.samples, config.threads);
    let rounds = config.samples.div_ceil(every).max(1);
    struct WorkerState {
        rng: StdRng,
        stats: Vec<RunningStats>,
        scratch: crate::sampling::WalkScratch,
        done: usize,
    }
    let mut workers: Vec<WorkerState> = (0..config.threads)
        .map(|w| WorkerState {
            rng: StdRng::seed_from_u64(worker_seed(config.seed, w)),
            stats: vec![RunningStats::new(); n],
            scratch: crate::sampling::WalkScratch::new(n),
            done: 0,
        })
        .collect();
    for round in 1..=rounds {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .enumerate()
                .map(|(w, state)| {
                    let target = chunks[w] * round / rounds;
                    scope.spawn(move || {
                        while state.done < target {
                            walk_once(game, &mut state.rng, &mut state.stats, &mut state.scratch);
                            state.done += 1;
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("sampling worker panicked");
            }
        });
        let completed = workers.iter().map(|state| state.done).sum();
        let estimates: Vec<Estimate> = (0..n)
            .map(|p| {
                let mut total = RunningStats::new();
                for state in &workers {
                    total.merge(&state.stats[p]);
                }
                stats_to_estimate(&total)
            })
            .collect();
        let finished = round == rounds;
        let checkpoint = AnytimeCheckpoint {
            completed,
            total: config.samples,
            estimates: &estimates,
        };
        let control = on_checkpoint(&checkpoint);
        if finished || control == AnytimeControl::Stop {
            return (estimates, finished);
        }
    }
    unreachable!("the loop returns on its final round");
}

/// Parallel version of [`crate::sampling::estimate_player_adaptive`]:
/// keep sampling in synchronized rounds of `threads × batch` samples until
/// the `z`-confidence half-width of the *merged* estimate drops below
/// `tolerance` or the shared `max_samples` budget is exhausted. Returns the
/// estimate and whether it converged.
///
/// Determinism: each worker owns a persistent RNG stream
/// (`worker_seed(seed, w)`) and a persistent [`RunningStats`] it pushes into
/// sequentially across rounds; after every round the worker accumulators are
/// merged in worker order and the stopping rule is evaluated on the merged
/// statistics only. The stopping decision therefore depends on
/// `(seed, threads)` alone, never on scheduling — and with `threads = 1`
/// the single worker's stream, batch boundaries, and stopping checks are
/// exactly the serial estimator's, so the result is bit-for-bit identical.
#[allow(clippy::too_many_arguments)]
pub fn estimate_player_adaptive<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    tolerance: f64,
    z: f64,
    batch: usize,
    max_samples: usize,
    seed: u64,
    threads: usize,
) -> (Estimate, bool) {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    assert!(batch > 0, "batch must be positive");
    assert!(threads >= 1, "threads must be >= 1");
    if threads == 1 {
        // The contract says threads = 1 is bit-for-bit the serial
        // estimator (pinned by tests), so run it directly instead of
        // paying a spawn/join cycle per round.
        return crate::sampling::estimate_player_adaptive(
            game,
            player,
            tolerance,
            z,
            batch,
            max_samples,
            seed,
        );
    }
    struct WorkerState {
        rng: StdRng,
        stats: RunningStats,
    }
    let mut workers: Vec<WorkerState> = (0..threads)
        .map(|w| WorkerState {
            rng: StdRng::seed_from_u64(worker_seed(seed, w)),
            stats: RunningStats::new(),
        })
        .collect();
    loop {
        std::thread::scope(|scope| {
            for worker in workers.iter_mut() {
                scope.spawn(move || {
                    for _ in 0..batch {
                        let x = marginal_sample(game, player, &mut worker.rng);
                        worker.stats.push(x);
                    }
                });
            }
        });
        let merged = merge_in_order(workers.iter().map(|w| w.stats.clone()).collect());
        let est = stats_to_estimate(&merged);
        // Same stopping rule as the serial path: at least two batches'
        // worth of samples before trusting the variance (one round already
        // satisfies this at threads ≥ 2; at threads = 1 it is literally the
        // serial "two batches" guard).
        if merged.count() >= 2 * batch && est.ci_half_width(z) <= tolerance {
            return (est, true);
        }
        if merged.count() >= max_samples {
            return (est, false);
        }
    }
}

/// Parallel version of [`crate::stratified::estimate_player_stratified`]:
/// the `n` coalition-size strata are split into contiguous ranges, one per
/// worker — strata never straddle a worker seam, so every stratum's
/// `samples_per_stratum` observations come from a single RNG stream exactly
/// as in the serial estimator.
///
/// Worker `w` runs [`stratified_chunk`] — the *same code* the serial
/// estimator runs over `0..n` — on its stratum range with the
/// `worker_seed(seed, w)` stream; per-stratum statistics are concatenated
/// in worker order (= stratum order) and combined with the shared
/// stratified-variance formula. With `threads = 1` worker 0 owns all strata
/// and the unmodified seed, reproducing the serial estimate bit for bit.
pub fn estimate_player_stratified<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    samples_per_stratum: usize,
    seed: u64,
    threads: usize,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    assert!(
        samples_per_stratum > 0,
        "need at least one sample per stratum"
    );
    assert!(threads >= 1, "threads must be >= 1");
    let ranges = chunk_ranges(n, threads);
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(w, strata)| {
                let seed = worker_seed(seed, w);
                scope.spawn(move || {
                    stratified_chunk(game, player, strata, samples_per_stratum, seed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    let stratum_stats: Vec<RunningStats> = worker_stats.into_iter().flatten().collect();
    debug_assert_eq!(stratum_stats.len(), n, "strata must tile 0..n exactly");
    stratified_estimate(&stratum_stats, samples_per_stratum)
}

/// Parallel version of [`crate::stratified::estimate_player_antithetic`]:
/// the `pairs` permutation pairs are split across workers like plain
/// samples; each worker runs [`antithetic_chunk`] (the serial loop body) on
/// its own stream from a fresh identity permutation, and chunk statistics
/// are merged in worker order. `threads = 1` replays the serial estimator
/// bit for bit.
pub fn estimate_player_antithetic<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    pairs: usize,
    seed: u64,
    threads: usize,
) -> Estimate {
    let n = game.num_players();
    assert!(player < n, "player {player} out of range ({n} players)");
    assert!(threads >= 1, "threads must be >= 1");
    let chunks = chunk_sizes(pairs, threads);
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(w, &chunk)| {
                let seed = worker_seed(seed, w);
                scope.spawn(move || antithetic_chunk(game, player, chunk, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    stats_to_estimate(&merge_in_order(worker_stats))
}

/// One batch-sized round of a player's adaptive budget under the round
/// ladder: `batch` marginal samples from a fresh RNG seeded
/// [`round_seed`]`(seed, round)`. A pure function of its arguments — the
/// relocatable unit of work the stealing schedule moves between workers.
fn adaptive_round<G: StochasticGame + ?Sized>(
    game: &G,
    player: usize,
    batch: usize,
    seed: u64,
    round: usize,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(round_seed(seed, round));
    let mut stats = RunningStats::new();
    for _ in 0..batch {
        stats.push(marginal_sample(game, player, &mut rng));
    }
    stats
}

/// Fold state of one player under the stealing schedule. Rounds complete in
/// arbitrary order (any worker may have computed any round); `pending`
/// buffers out-of-order rounds and `folded` is always the merge of rounds
/// `0..next_fold` *in round order* — the stopping rule only ever sees these
/// contiguous prefixes, which is what makes the decision, and therefore the
/// result, independent of scheduling.
struct StealProgress {
    pending: BTreeMap<usize, RunningStats>,
    folded: RunningStats,
    next_fold: usize,
    done: Option<(Estimate, bool)>,
}

/// Shared per-player coordination of the stealing schedule.
struct StealSlot {
    /// Next unclaimed round index (claimed with `fetch_add`; claims past
    /// the round cap or after `finished` do no work).
    next_round: AtomicUsize,
    /// Fast-path flag mirroring `progress.done.is_some()`.
    finished: AtomicBool,
    progress: Mutex<StealProgress>,
}

impl StealSlot {
    fn new() -> Self {
        StealSlot {
            next_round: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
            progress: Mutex::new(StealProgress {
                pending: BTreeMap::new(),
                folded: RunningStats::new(),
                next_fold: 0,
                done: None,
            }),
        }
    }
}

/// The [`Schedule::WorkStealing`] engine behind [`estimate_all_adaptive`]:
/// workers claim whole players from an atomic queue (phase 1, exactly like
/// [`run_player_sharded`]), and a worker that drains the queue steals
/// unclaimed *rounds* of still-unfinished players (phase 2), so one
/// expensive player's budget spreads across every idle core.
///
/// Output is bit-identical to the serial
/// [`crate::sampling::estimate_player_adaptive_rounds`] loop (with the
/// [`player_seed`] ladder) at any thread count: rounds are pure functions
/// of `(player_seed, round)`, they fold in round order, and the stopping
/// rule replays the serial checks on each folded prefix. Rounds computed
/// past the deterministic stopping round are discarded — bounded
/// speculation (at most one in-flight round per worker plus the claims
/// issued before the finished flag was observed), the price of letting
/// workers run ahead without a barrier.
fn steal_all_adaptive<G: StochasticGame + ?Sized>(
    game: &G,
    tolerance: f64,
    z: f64,
    batch: usize,
    max_samples: usize,
    seed: u64,
    threads: usize,
) -> Vec<(Estimate, bool)> {
    let n = game.num_players();
    assert!(batch > 0, "batch must be positive");
    if threads == 1 || n <= 1 {
        // The contract says any thread count replays the serial round
        // ladder, so run it directly instead of paying the coordination.
        return (0..n)
            .map(|p| {
                crate::sampling::estimate_player_adaptive_rounds(
                    game,
                    p,
                    tolerance,
                    z,
                    batch,
                    max_samples,
                    player_seed(seed, p),
                )
            })
            .collect();
    }
    // The serial loop stops, converged or not, by the time the sample count
    // reaches `max_samples` — i.e. within ceil(max_samples / batch) rounds
    // (and it always runs at least one round). Claims past this cap can
    // never be folded, so they are refused instead of computed.
    let max_rounds = max_samples.div_ceil(batch).max(1);
    let slots: Vec<StealSlot> = (0..n).map(|_| StealSlot::new()).collect();
    let next_player = AtomicUsize::new(0);
    let finished_players = AtomicUsize::new(0);

    // Claim and compute one round of player `p`; fold it and evaluate the
    // stopping rule on every newly contiguous prefix. Returns false when
    // the player needs no further work from this worker (finished, or all
    // claimable rounds already handed out).
    let try_round = |p: usize| -> bool {
        let slot = &slots[p];
        if slot.finished.load(Ordering::Acquire) {
            return false;
        }
        let round = slot.next_round.fetch_add(1, Ordering::Relaxed);
        if round >= max_rounds {
            return false;
        }
        let stats = adaptive_round(game, p, batch, player_seed(seed, p), round);
        let mut prog = slot.progress.lock().expect("steal slot poisoned");
        if prog.done.is_some() {
            return false; // speculative overshoot — discard
        }
        prog.pending.insert(round, stats);
        while let Some(stats) = {
            let next = prog.next_fold;
            prog.pending.remove(&next)
        } {
            prog.folded.merge(&stats);
            prog.next_fold += 1;
            let est = stats_to_estimate(&prog.folded);
            // The serial stopping checks, verbatim, on the folded prefix.
            let decision = if prog.folded.count() >= 2 * batch && est.ci_half_width(z) <= tolerance
            {
                Some((est, true))
            } else if prog.folded.count() >= max_samples {
                Some((est, false))
            } else {
                None
            };
            if let Some(done) = decision {
                prog.done = Some(done);
                prog.pending.clear();
                slot.finished.store(true, Ordering::Release);
                finished_players.fetch_add(1, Ordering::AcqRel);
                return false;
            }
        }
        true
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| {
                // Phase 1: own whole players from the queue, like the
                // player-sharded schedule.
                loop {
                    let p = next_player.fetch_add(1, Ordering::Relaxed);
                    if p >= n {
                        break;
                    }
                    while try_round(p) {}
                }
                // Phase 2: the queue is drained — steal rounds from
                // whichever players are still running.
                while finished_players.load(Ordering::Acquire) < n {
                    let mut worked = false;
                    for p in 0..n {
                        if try_round(p) {
                            worked = true;
                        }
                    }
                    if !worked {
                        // Every remaining round is in flight on some other
                        // worker; don't spin the lock.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.progress
                .into_inner()
                .expect("steal slot poisoned")
                .done
                .expect("every player reaches a stopping decision")
        })
        .collect()
}

/// All-player adaptive driver: estimate every player with
/// [`estimate_player_adaptive`] semantics, seeds laddered by
/// [`player_seed`] exactly like [`crate::sampling::estimate_all`]. Returns
/// one `(estimate, converged)` pair per player.
///
/// Under [`Schedule::PlayerSharded`], workers claim whole players and run
/// the *serial* [`crate::sampling::estimate_player_adaptive`] — output
/// identical to the serial per-player loop at any thread count, and the
/// natural schedule here: adaptive budgets are uneven across players
/// (dummies stop after two batches, contested cells run to the cap), which
/// the claim queue load-balances for free. Under
/// [`Schedule::WorkStealing`], workers additionally steal *rounds* of
/// unfinished players once the queue drains ([`steal_all_adaptive`]) —
/// output identical to the serial round-laddered
/// [`crate::sampling::estimate_player_adaptive_rounds`] loop at any thread
/// count, and the schedule to pick when one hot player dominates the
/// budget (player-sharding would pin its whole budget to one core). Under
/// [`Schedule::BudgetSplit`], players are processed in order with each
/// player's rounds split across all workers (deterministic per
/// `(seed, threads)`).
#[allow(clippy::too_many_arguments)]
pub fn estimate_all_adaptive<G: StochasticGame + ?Sized>(
    game: &G,
    tolerance: f64,
    z: f64,
    batch: usize,
    max_samples: usize,
    seed: u64,
    threads: usize,
    schedule: Schedule,
) -> Vec<(Estimate, bool)> {
    let n = game.num_players();
    assert!(threads >= 1, "threads must be >= 1");
    match schedule {
        Schedule::WorkStealing => {
            steal_all_adaptive(game, tolerance, z, batch, max_samples, seed, threads)
        }
        Schedule::PlayerSharded => run_player_sharded(n, threads, |p| {
            crate::sampling::estimate_player_adaptive(
                game,
                p,
                tolerance,
                z,
                batch,
                max_samples,
                player_seed(seed, p),
            )
        }),
        Schedule::BudgetSplit => (0..n)
            .map(|p| {
                estimate_player_adaptive(
                    game,
                    p,
                    tolerance,
                    z,
                    batch,
                    max_samples,
                    player_seed(seed, p),
                    threads,
                )
            })
            .collect(),
    }
}

/// All-player stratified driver: one [`estimate_player_stratified`]-style
/// estimate per player, seeds laddered by [`player_seed`].
///
/// [`Schedule::PlayerSharded`] claims whole players and runs the serial
/// [`crate::stratified::estimate_player_stratified`] (serial-identical at
/// any thread count); [`Schedule::BudgetSplit`] processes players in order
/// with each player's strata split across all workers.
pub fn estimate_all_stratified<G: StochasticGame + ?Sized>(
    game: &G,
    samples_per_stratum: usize,
    seed: u64,
    threads: usize,
    schedule: Schedule,
) -> Vec<Estimate> {
    let n = game.num_players();
    assert!(threads >= 1, "threads must be >= 1");
    match schedule {
        Schedule::PlayerSharded | Schedule::WorkStealing => run_player_sharded(n, threads, |p| {
            crate::stratified::estimate_player_stratified(
                game,
                p,
                samples_per_stratum,
                player_seed(seed, p),
            )
        }),
        Schedule::BudgetSplit => (0..n)
            .map(|p| {
                estimate_player_stratified(
                    game,
                    p,
                    samples_per_stratum,
                    player_seed(seed, p),
                    threads,
                )
            })
            .collect(),
    }
}

/// All-player antithetic driver: one [`estimate_player_antithetic`]-style
/// estimate per player, seeds laddered by [`player_seed`].
///
/// [`Schedule::PlayerSharded`] claims whole players and runs the serial
/// [`crate::stratified::estimate_player_antithetic`] (serial-identical at
/// any thread count); [`Schedule::BudgetSplit`] processes players in order
/// with each player's pair budget split across all workers.
pub fn estimate_all_antithetic<G: StochasticGame + ?Sized>(
    game: &G,
    pairs: usize,
    seed: u64,
    threads: usize,
    schedule: Schedule,
) -> Vec<Estimate> {
    let n = game.num_players();
    assert!(threads >= 1, "threads must be >= 1");
    match schedule {
        Schedule::PlayerSharded | Schedule::WorkStealing => run_player_sharded(n, threads, |p| {
            crate::stratified::estimate_player_antithetic(game, p, pairs, player_seed(seed, p))
        }),
        Schedule::BudgetSplit => (0..n)
            .map(|p| estimate_player_antithetic(game, p, pairs, player_seed(seed, p), threads))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::shapley_exact;
    use crate::game::fixtures;
    use crate::sampling;
    use crate::stratified;

    fn assert_estimates_eq(a: &[Estimate], b: &[Estimate]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            // Estimate is PartialEq over (value, std_dev, samples); equality
            // here is the bit-for-bit claim (no tolerance).
            assert_eq!(x, y);
        }
    }

    #[test]
    fn one_thread_matches_serial_estimate_player() {
        let g = fixtures::gloves(3, 4);
        for seed in [0u64, 7, 42] {
            let serial = sampling::estimate_player(&g, 2, SamplingConfig { samples: 500, seed });
            let par = estimate_player(&g, 2, ParallelConfig::new(500, seed, 1));
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn one_thread_matches_serial_estimate_all() {
        let g = fixtures::majority(9);
        let cfg = SamplingConfig {
            samples: 300,
            seed: 13,
        };
        let serial = sampling::estimate_all(&g, cfg);
        let par = estimate_all(&g, ParallelConfig::from_sampling(cfg, 1));
        assert_estimates_eq(&serial, &par);
    }

    #[test]
    fn one_thread_matches_serial_walk() {
        let g = fixtures::paper_example_2_3();
        let cfg = SamplingConfig {
            samples: 400,
            seed: 5,
        };
        let serial = sampling::estimate_all_walk(&g, cfg);
        let par = estimate_all_walk(&g, ParallelConfig::from_sampling(cfg, 1));
        assert_estimates_eq(&serial, &par);
    }

    #[test]
    fn fixed_seed_and_threads_is_deterministic() {
        let g = fixtures::gloves(4, 4);
        for threads in [1usize, 2, 3, 4, 7] {
            let cfg = ParallelConfig::new(350, 99, threads);
            let a = estimate_all(&g, cfg);
            let b = estimate_all(&g, cfg);
            assert_estimates_eq(&a, &b);
            let wa = estimate_all_walk(&g, cfg);
            let wb = estimate_all_walk(&g, cfg);
            assert_estimates_eq(&wa, &wb);
        }
    }

    #[test]
    fn multi_thread_estimates_converge_to_exact() {
        let g = fixtures::gloves(2, 3);
        let exact = shapley_exact(&g).unwrap();
        let ests = estimate_all(&g, ParallelConfig::new(20_000, 11, 4));
        for (p, want) in exact.iter().enumerate() {
            assert!(
                (ests[p].value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                ests[p].value
            );
        }
    }

    #[test]
    fn parallel_walk_is_exactly_efficient() {
        // The efficiency axiom survives both the walk telescoping and the
        // Welford merge: the means sum to v(N) up to fp noise, at every
        // thread count.
        let g = fixtures::paper_example_2_3();
        for threads in [1usize, 2, 4, 8] {
            let ests = estimate_all_walk(&g, ParallelConfig::new(1000, 3, threads));
            let total: f64 = ests.iter().map(|e| e.value).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "threads {threads}: total {total}"
            );
            let samples: usize = ests.iter().map(|e| e.samples).sum();
            assert_eq!(samples, 1000 * 4, "every walk touches every player");
        }
    }

    #[test]
    fn all_samples_are_used_at_every_thread_count() {
        let g = fixtures::majority(5);
        for threads in [1usize, 2, 3, 5, 8, 16] {
            // 17 is coprime to everything here: exercises remainder chunks.
            let est = estimate_player(&g, 0, ParallelConfig::new(17, 1, threads));
            assert_eq!(est.samples, 17, "threads {threads}");
        }
    }

    #[test]
    fn more_threads_than_samples_is_fine() {
        let g = fixtures::gloves(1, 1);
        let est = estimate_player(&g, 0, ParallelConfig::new(3, 0, 8));
        assert_eq!(est.samples, 3);
    }

    #[test]
    fn zero_samples_gives_empty_estimate() {
        let g = fixtures::majority(3);
        let est = estimate_player(&g, 0, ParallelConfig::new(0, 0, 4));
        assert_eq!(est.samples, 0);
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn dummy_player_is_zero_at_any_thread_count() {
        let g = fixtures::paper_example_2_3();
        for threads in [1usize, 2, 4] {
            let est = estimate_player(&g, 3, ParallelConfig::new(300, 3, threads));
            assert_eq!(est.value, 0.0);
            assert_eq!(est.std_dev, 0.0);
        }
    }

    #[test]
    fn worker_streams_are_decorrelated() {
        // Worker 1 of player p must not replay worker 0 of player p+1 (the
        // collision a plain additive worker offset would produce under the
        // golden-ratio player laddering).
        let base = 123u64;
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        let p0 = base.wrapping_add(golden); // player 0's serial seed
        let p1 = base.wrapping_add(golden.wrapping_mul(2)); // player 1's
        assert_ne!(worker_seed(p0, 1), worker_seed(p1, 0));
        assert_eq!(worker_seed(p0, 0), p0, "worker 0 keeps the serial seed");
    }

    #[test]
    fn chunks_cover_and_balance() {
        for (samples, threads) in [(10usize, 3usize), (0, 4), (7, 7), (100, 1), (5, 8)] {
            let chunks = chunk_sizes(samples, threads);
            assert_eq!(chunks.len(), threads);
            assert_eq!(chunks.iter().sum::<usize>(), samples);
            let max = chunks.iter().max().unwrap();
            let min = chunks.iter().min().unwrap();
            assert!(max - min <= 1, "{samples}/{threads}: {chunks:?}");
        }
    }

    #[test]
    fn resolve_threads_contract() {
        assert!(resolve_threads(0).unwrap() >= 1);
        assert_eq!(resolve_threads(1), Ok(1));
        assert_eq!(resolve_threads(MAX_THREADS), Ok(MAX_THREADS));
        let err = resolve_threads(MAX_THREADS + 1).unwrap_err();
        assert_eq!(err.requested, MAX_THREADS + 1);
        assert!(err.to_string().contains("1024"));
    }

    #[test]
    fn config_conversions_roundtrip() {
        let s = SamplingConfig {
            samples: 250,
            seed: 9,
        };
        let p = ParallelConfig::from_sampling(s, 4);
        assert_eq!(p.threads, 4);
        let back = p.sampling();
        assert_eq!(back.samples, 250);
        assert_eq!(back.seed, 9);
        assert_eq!(ParallelConfig::default().threads, 1);
    }

    #[test]
    #[should_panic(expected = "threads must be >= 1")]
    fn zero_threads_panics() {
        let _ = ParallelConfig::new(10, 0, 0);
    }

    #[test]
    fn one_thread_adaptive_matches_serial() {
        let g = fixtures::gloves(2, 3);
        for (tol, max) in [(0.02, 50_000), (1e-9, 300)] {
            let (se, sc) = sampling::estimate_player_adaptive(&g, 0, tol, 1.96, 100, max, 7);
            let (pe, pc) = estimate_player_adaptive(&g, 0, tol, 1.96, 100, max, 7, 1);
            assert_eq!(se, pe, "tol {tol} max {max}");
            assert_eq!(sc, pc);
        }
    }

    #[test]
    fn one_thread_stratified_matches_serial() {
        let g = fixtures::majority(7);
        for seed in [0u64, 5, 99] {
            let serial = stratified::estimate_player_stratified(&g, 1, 80, seed);
            let par = estimate_player_stratified(&g, 1, 80, seed, 1);
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn one_thread_antithetic_matches_serial() {
        let g = fixtures::gloves(3, 4);
        for seed in [0u64, 5, 99] {
            let serial = stratified::estimate_player_antithetic(&g, 2, 150, seed);
            let par = estimate_player_antithetic(&g, 2, 150, seed, 1);
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn variance_reduced_estimators_are_reproducible_per_seed_and_threads() {
        let g = fixtures::majority(9);
        for threads in [2usize, 3, 4, 7] {
            let s1 = estimate_player_stratified(&g, 0, 40, 11, threads);
            let s2 = estimate_player_stratified(&g, 0, 40, 11, threads);
            assert_eq!(s1, s2, "stratified, threads {threads}");
            let a1 = estimate_player_antithetic(&g, 0, 90, 11, threads);
            let a2 = estimate_player_antithetic(&g, 0, 90, 11, threads);
            assert_eq!(a1, a2, "antithetic, threads {threads}");
            let (e1, c1) = estimate_player_adaptive(&g, 0, 0.05, 1.96, 50, 5000, 11, threads);
            let (e2, c2) = estimate_player_adaptive(&g, 0, 0.05, 1.96, 50, 5000, 11, threads);
            assert_eq!(e1, e2, "adaptive, threads {threads}");
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn parallel_stratified_stays_unbiased() {
        let g = fixtures::gloves(2, 3);
        let exact = shapley_exact(&g).unwrap();
        for (p, want) in exact.iter().enumerate() {
            let est = estimate_player_stratified(&g, p, 2000, 17, 4);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn parallel_antithetic_stays_unbiased() {
        let g = fixtures::paper_example_2_3();
        let exact = shapley_exact(&g).unwrap();
        for (p, want) in exact.iter().enumerate() {
            let est = estimate_player_antithetic(&g, p, 8000, 23, 4);
            assert!(
                (est.value - want).abs() < 0.02,
                "player {p}: {} vs {want}",
                est.value
            );
        }
    }

    #[test]
    fn parallel_adaptive_converges_with_shared_budget() {
        let g = fixtures::unanimity(6, vec![0, 1, 2]);
        let (est, converged) = estimate_player_adaptive(&g, 0, 0.02, 1.96, 500, 200_000, 7, 4);
        assert!(converged);
        assert!((est.value - 1.0 / 3.0).abs() < 0.05);
        // The shared budget is respected: a tolerance that can never be met
        // stops within one round of max_samples (rounds add threads × batch).
        let (est, converged) = estimate_player_adaptive(&g, 0, 1e-12, 1.96, 10, 100, 7, 4);
        assert!(!converged);
        assert!(est.samples >= 100 && est.samples < 100 + 4 * 10);
    }

    #[test]
    fn parallel_stratified_beats_plain_variance_on_majority() {
        // Stratification's variance win must survive the worker split.
        let g = fixtures::majority(9);
        let plain = estimate_player(&g, 0, ParallelConfig::new(9 * 200, 31, 4));
        let strat = estimate_player_stratified(&g, 0, 200, 31, 4);
        assert_eq!(plain.samples, strat.samples);
        assert!(
            strat.std_error() < plain.std_error() * 0.5,
            "stratified {} vs plain {}",
            strat.std_error(),
            plain.std_error()
        );
    }

    #[test]
    fn stratified_with_more_threads_than_strata() {
        // Workers past the stratum count get empty ranges; the estimate
        // still covers every stratum exactly once.
        let g = fixtures::gloves(1, 2);
        let est = estimate_player_stratified(&g, 0, 25, 3, 8);
        assert_eq!(est.samples, 3 * 25);
    }

    #[test]
    fn chunk_ranges_tile_in_order() {
        for (items, threads) in [(10usize, 3usize), (0, 4), (7, 7), (5, 8), (100, 1)] {
            let ranges = chunk_ranges(items, threads);
            assert_eq!(ranges.len(), threads);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{items}/{threads}: {ranges:?}");
                next = r.end;
            }
            assert_eq!(next, items);
        }
    }

    #[test]
    fn player_sharded_estimate_all_is_serial_at_any_thread_count() {
        let g = fixtures::majority(9);
        let cfg = SamplingConfig {
            samples: 150,
            seed: 13,
        };
        let serial = sampling::estimate_all(&g, cfg);
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let par = estimate_all(
                &g,
                ParallelConfig::from_sampling(cfg, threads).with_schedule(Schedule::PlayerSharded),
            );
            assert_estimates_eq(&serial, &par);
        }
    }

    #[test]
    fn player_sharded_walk_is_serial_at_any_thread_count() {
        let g = fixtures::paper_example_2_3();
        let cfg = SamplingConfig {
            samples: 250,
            seed: 5,
        };
        let serial = sampling::estimate_all_walk(&g, cfg);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = estimate_all_walk(
                &g,
                ParallelConfig::from_sampling(cfg, threads).with_schedule(Schedule::PlayerSharded),
            );
            assert_estimates_eq(&serial, &par);
        }
    }

    #[test]
    fn walk_replay_keeps_the_efficiency_axiom() {
        let g = fixtures::gloves(3, 4);
        let ests = estimate_all_walk(
            &g,
            ParallelConfig::new(400, 21, 4).with_schedule(Schedule::PlayerSharded),
        );
        let total: f64 = ests.iter().map(|e| e.value).sum();
        // Replayed marginals are the serial walk's, so they telescope to
        // v(N) = 3 matched glove pairs exactly.
        assert!((total - 3.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn all_adaptive_player_sharded_matches_the_serial_loop() {
        let g = fixtures::majority(7);
        let serial: Vec<(Estimate, bool)> = (0..7)
            .map(|p| {
                sampling::estimate_player_adaptive(&g, p, 0.05, 1.96, 40, 2000, player_seed(9, p))
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let par = estimate_all_adaptive(
                &g,
                0.05,
                1.96,
                40,
                2000,
                9,
                threads,
                Schedule::PlayerSharded,
            );
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn all_adaptive_budget_split_matches_the_per_player_driver() {
        let g = fixtures::gloves(2, 3);
        let par = estimate_all_adaptive(&g, 0.05, 1.96, 30, 1500, 7, 2, Schedule::BudgetSplit);
        for (p, got) in par.iter().enumerate() {
            let want = estimate_player_adaptive(&g, p, 0.05, 1.96, 30, 1500, player_seed(7, p), 2);
            assert_eq!(*got, want, "player {p}");
        }
    }

    #[test]
    fn all_stratified_and_antithetic_player_sharded_match_serial() {
        let g = fixtures::majority(5);
        let serial_strat: Vec<Estimate> = (0..5)
            .map(|p| stratified::estimate_player_stratified(&g, p, 30, player_seed(3, p)))
            .collect();
        let serial_anti: Vec<Estimate> = (0..5)
            .map(|p| stratified::estimate_player_antithetic(&g, p, 40, player_seed(3, p)))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            assert_estimates_eq(
                &serial_strat,
                &estimate_all_stratified(&g, 30, 3, threads, Schedule::PlayerSharded),
            );
            assert_estimates_eq(
                &serial_anti,
                &estimate_all_antithetic(&g, 40, 3, threads, Schedule::PlayerSharded),
            );
        }
    }

    #[test]
    fn budget_split_all_drivers_are_reproducible() {
        let g = fixtures::gloves(2, 3);
        let s1 = estimate_all_stratified(&g, 20, 11, 3, Schedule::BudgetSplit);
        let s2 = estimate_all_stratified(&g, 20, 11, 3, Schedule::BudgetSplit);
        assert_estimates_eq(&s1, &s2);
        let a1 = estimate_all_antithetic(&g, 30, 11, 3, Schedule::BudgetSplit);
        let a2 = estimate_all_antithetic(&g, 30, 11, 3, Schedule::BudgetSplit);
        assert_estimates_eq(&a1, &a2);
    }

    #[test]
    fn schedule_auto_picks_by_player_count() {
        // Plenty of players per worker: shard them.
        assert_eq!(Schedule::auto(64, 4), Schedule::PlayerSharded);
        assert_eq!(Schedule::auto(8, 2), Schedule::PlayerSharded);
        // Too few claims per worker: split the budget instead.
        assert_eq!(Schedule::auto(7, 2), Schedule::BudgetSplit);
        assert_eq!(Schedule::auto(4, 8), Schedule::BudgetSplit);
        // One worker never shards: both schedules replay serial exactly,
        // so sharding would only add the walk-replay overhead.
        assert_eq!(Schedule::auto(64, 1), Schedule::BudgetSplit);
        assert_eq!(Schedule::auto(0, 1), Schedule::BudgetSplit);
    }

    #[test]
    fn schedule_display_and_config_builder() {
        assert_eq!(Schedule::BudgetSplit.to_string(), "budget");
        assert_eq!(Schedule::PlayerSharded.to_string(), "player");
        let cfg = ParallelConfig::new(10, 0, 2);
        assert_eq!(cfg.schedule, Schedule::BudgetSplit);
        assert_eq!(
            cfg.with_schedule(Schedule::PlayerSharded).schedule,
            Schedule::PlayerSharded
        );
        assert_eq!(Schedule::default(), Schedule::BudgetSplit);
    }

    #[test]
    fn work_stealing_adaptive_matches_the_serial_round_ladder() {
        // The one-hot fixture is the shape the stealing schedule exists
        // for: player 0's budget runs to the cap, everyone else stops at
        // two batches.
        let g = fixtures::one_hot(9, 0);
        // ±1 marginals have unit variance: a 0.03 half-width needs ~4300
        // samples, so the 2000-sample cap bites and the hot player runs
        // every round while the dummies stop at two batches.
        let serial: Vec<(Estimate, bool)> = (0..9)
            .map(|p| {
                sampling::estimate_player_adaptive_rounds(
                    &g,
                    p,
                    0.03,
                    1.96,
                    25,
                    2000,
                    player_seed(7, p),
                )
            })
            .collect();
        assert!(!serial[0].1);
        assert_eq!(serial[0].0.samples, 2000);
        assert!(serial[1].1);
        assert_eq!(serial[1].0.samples, 50);
        for threads in [1usize, 2, 3, 4, 8] {
            let par =
                estimate_all_adaptive(&g, 0.03, 1.96, 25, 2000, 7, threads, Schedule::WorkStealing);
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn work_stealing_adaptive_matches_serial_on_a_fixture_game() {
        // Also pin on a game whose eval consumes the RNG (replacement-style
        // draw counts vary), so the round ladder's independence from worker
        // interleaving is exercised with real RNG consumption.
        let g = fixtures::gloves(3, 4);
        let serial: Vec<(Estimate, bool)> = (0..7)
            .map(|p| {
                sampling::estimate_player_adaptive_rounds(
                    &g,
                    p,
                    0.08,
                    1.96,
                    30,
                    1500,
                    player_seed(3, p),
                )
            })
            .collect();
        for threads in [2usize, 4, 7] {
            let par =
                estimate_all_adaptive(&g, 0.08, 1.96, 30, 1500, 3, threads, Schedule::WorkStealing);
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn work_stealing_caps_in_whole_rounds() {
        let g = fixtures::one_hot(3, 0);
        for threads in [1usize, 2, 4] {
            let out =
                estimate_all_adaptive(&g, 1e-12, 1.96, 10, 95, 5, threads, Schedule::WorkStealing);
            // ceil(95 / 10) = 10 rounds → exactly 100 samples at the cap.
            assert_eq!(out[0].0.samples, 100, "threads {threads}");
            assert!(!out[0].1);
        }
    }

    #[test]
    fn work_stealing_uniform_budget_drivers_fall_back_to_player_sharding() {
        // estimate_all / stratified / antithetic have uniform per-player
        // budgets, so stealing degenerates to whole-player claiming there
        // (the walk driver has its own block-stealing engine, pinned by
        // `work_stealing_walk_is_serial_at_any_thread_count`).
        let g = fixtures::majority(9);
        let cfg = SamplingConfig {
            samples: 120,
            seed: 13,
        };
        let serial = sampling::estimate_all(&g, cfg);
        for threads in [1usize, 2, 4] {
            let par = estimate_all(
                &g,
                ParallelConfig::from_sampling(cfg, threads).with_schedule(Schedule::WorkStealing),
            );
            assert_estimates_eq(&serial, &par);
            assert_estimates_eq(
                &estimate_all_stratified(&g, 20, 3, threads, Schedule::WorkStealing),
                &estimate_all_stratified(&g, 20, 3, 1, Schedule::PlayerSharded),
            );
            assert_estimates_eq(
                &estimate_all_antithetic(&g, 30, 3, threads, Schedule::WorkStealing),
                &estimate_all_antithetic(&g, 30, 3, 1, Schedule::PlayerSharded),
            );
        }
    }

    #[test]
    fn work_stealing_walk_is_serial_at_any_thread_count() {
        // Block-stealing replay must be bit-identical to the serial walk
        // across every budget shape: below one block, exactly one block,
        // a ragged tail, and several whole blocks per player.
        let g = fixtures::paper_example_2_3();
        for samples in [0usize, 5, 32, 33, 100] {
            let cfg = SamplingConfig { samples, seed: 17 };
            let serial = sampling::estimate_all_walk(&g, cfg);
            for threads in [1usize, 2, 4, 8] {
                let par = estimate_all_walk(
                    &g,
                    ParallelConfig::from_sampling(cfg, threads)
                        .with_schedule(Schedule::WorkStealing),
                );
                assert_estimates_eq(&serial, &par);
            }
        }
    }

    #[test]
    fn walk_replay_blocks_tile_the_serial_stream() {
        // Concatenating skip-ahead blocks reproduces the full replay's
        // marginals exactly, wherever the block seams fall.
        let g = fixtures::gloves(3, 4);
        let full = walk_replay_block(&g, 2, 77, 0, 70);
        assert_eq!(full.len(), 70);
        for splits in [vec![70], vec![32, 32, 6], vec![1, 69], vec![40, 30]] {
            let mut tiled = Vec::new();
            let mut start = 0;
            for len in splits {
                tiled.extend(walk_replay_block(&g, 2, 77, start, len));
                start += len;
            }
            let same = full
                .iter()
                .zip(&tiled)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same && tiled.len() == 70, "seams changed the marginals");
        }
    }

    #[test]
    fn work_stealing_converges_to_exact_values() {
        let g = fixtures::gloves(2, 3);
        let exact = shapley_exact(&g).unwrap();
        let out =
            estimate_all_adaptive(&g, 0.02, 1.96, 200, 100_000, 11, 4, Schedule::WorkStealing);
        for (p, want) in exact.iter().enumerate() {
            assert!(
                (out[p].0.value - want).abs() < 0.05,
                "player {p}: {} vs {want}",
                out[p].0.value
            );
        }
    }

    #[test]
    fn steal_schedule_display_and_family() {
        assert_eq!(Schedule::WorkStealing.to_string(), "steal");
        assert!(Schedule::WorkStealing.claims_players());
        assert!(Schedule::PlayerSharded.claims_players());
        assert!(!Schedule::BudgetSplit.claims_players());
    }

    #[test]
    fn run_player_sharded_covers_every_player_once() {
        for (n, threads) in [(0usize, 4usize), (1, 4), (5, 2), (9, 16), (100, 7)] {
            let got = run_player_sharded(n, threads, |p| p * p);
            let want: Vec<usize> = (0..n).map(|p| p * p).collect();
            assert_eq!(got, want, "n {n}, threads {threads}");
        }
    }

    #[test]
    fn anytime_final_checkpoint_matches_batch_for_every_schedule() {
        let g = fixtures::gloves(3, 4);
        for schedule in [
            Schedule::BudgetSplit,
            Schedule::PlayerSharded,
            Schedule::WorkStealing,
        ] {
            for threads in [1, 4] {
                let cfg = ParallelConfig::new(70, 99, threads).with_schedule(schedule);
                let batch = estimate_all_walk(&g, cfg);
                let mut checkpoints = 0;
                let mut last_completed = 0;
                let (anytime, finished) = estimate_all_walk_anytime(&g, cfg, 17, |cp| {
                    checkpoints += 1;
                    assert!(
                        cp.completed > last_completed,
                        "checkpoints must make progress"
                    );
                    last_completed = cp.completed;
                    assert_eq!(cp.total, 70);
                    for e in cp.estimates {
                        assert!(e.value.is_finite() && e.std_dev.is_finite());
                    }
                    AnytimeControl::Continue
                });
                assert!(finished, "{schedule} t{threads}: full budget must run");
                assert!(checkpoints >= 2, "70/17 walks means several checkpoints");
                assert_eq!(anytime.len(), batch.len());
                for (a, b) in anytime.iter().zip(&batch) {
                    assert_eq!(
                        a.value.to_bits(),
                        b.value.to_bits(),
                        "{schedule} t{threads}: anytime final must be bit-identical"
                    );
                    assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
                    assert_eq!(a.samples, b.samples);
                }
            }
        }
    }

    #[test]
    fn anytime_stop_returns_the_partial_estimate() {
        let g = fixtures::gloves(3, 4);
        let cfg = ParallelConfig::new(500, 5, 2).with_schedule(Schedule::PlayerSharded);
        let mut seen = 0;
        let (partial, finished) = estimate_all_walk_anytime(&g, cfg, 20, |cp| {
            seen = cp.completed;
            AnytimeControl::Stop
        });
        assert!(!finished, "stopping early must report an unfinished run");
        assert_eq!(seen, 20, "stopped at the first checkpoint");
        // The partial estimate is exactly a completed 20-walk run: the
        // replay schedules' intermediate-snapshot contract.
        let small = estimate_all_walk(
            &g,
            ParallelConfig::new(20, 5, 2).with_schedule(Schedule::PlayerSharded),
        );
        for (a, b) in partial.iter().zip(&small) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.samples, 20);
            assert_eq!(b.samples, 20);
        }
    }

    #[test]
    fn anytime_zero_budget_checkpoints_once_and_finishes() {
        let g = fixtures::gloves(2, 2);
        let cfg = ParallelConfig::new(0, 1, 2).with_schedule(Schedule::BudgetSplit);
        let mut checkpoints = 0;
        let (out, finished) = estimate_all_walk_anytime(&g, cfg, 10, |cp| {
            checkpoints += 1;
            assert_eq!(cp.completed, 0);
            for e in cp.estimates {
                assert_eq!(e.samples, 0);
                assert!(e.value.is_finite() && e.std_dev.is_finite());
            }
            AnytimeControl::Continue
        });
        assert!(finished);
        assert_eq!(checkpoints, 1);
        assert!(out.iter().all(|e| e.samples == 0));
    }
}
