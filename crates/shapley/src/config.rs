//! One execution-configuration surface for every layer.
//!
//! Threads, schedule, oracle capacity, and seed used to be scattered across
//! `Session` setters, `Explainer` builders, per-engine `with_threads`
//! methods, and three copies of CLI flag parsing. [`ExecConfig`] is the one
//! value they all accept now: build it once, hand it to
//! `Session::with_config` / `Explainer::with_config` / an engine's
//! `with_exec`, and every layer reads the same knobs.

use crate::parallel::Schedule;

/// Execution knobs shared by sessions, explainers, repair engines, and the
/// CLI: worker count, scheduling policy, oracle cache bound, and sampling
/// seed.
///
/// A plain-old-data builder: all `with_*` methods consume and return the
/// config, unset options mean "use the layer's default".
///
/// ```
/// use trex_shapley::{ExecConfig, Schedule};
/// let cfg = ExecConfig::new()
///     .with_threads(4)
///     .with_schedule(Schedule::PlayerSharded)
///     .with_oracle_cap(1 << 16)
///     .with_oracle_batch(64)
///     .with_seed(42);
/// assert_eq!(cfg.threads(), 4);
/// assert_eq!(cfg.schedule(), Some(Schedule::PlayerSharded));
/// assert_eq!(cfg.oracle_cap(), Some(1 << 16));
/// assert_eq!(cfg.oracle_batch(), Some(64));
/// assert_eq!(cfg.seed(), Some(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    threads: usize,
    schedule: Option<Schedule>,
    oracle_cap: Option<usize>,
    oracle_batch: Option<usize>,
    seed: Option<u64>,
    prune_redundant: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 1,
            schedule: None,
            oracle_cap: None,
            oracle_batch: None,
            seed: None,
            prune_redundant: false,
        }
    }
}

impl ExecConfig {
    /// The default configuration: 1 thread, auto schedule, unbounded oracle
    /// cache, layer-default seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count.
    ///
    /// # Panics
    /// Panics if `threads == 0`; resolve "all cores" to a concrete count
    /// first (the CLI maps `--threads 0` to the hardware thread count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
        self.threads = threads;
        self
    }

    /// Pin the sampling schedule (default: [`Schedule::auto`] per call).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Bound the coalition-oracle cache to `cap` entries (default:
    /// unbounded). `0` disables caching.
    pub fn with_oracle_cap(mut self, cap: usize) -> Self {
        self.oracle_cap = Some(cap);
        self
    }

    /// Bound the number of coalition queries per batched oracle dispatch
    /// (default: unbounded — one dispatch per batch-capable solver step).
    /// Batching never changes any answer, only how many queries share one
    /// backend round trip; see the oracle-backend docs in `trex-repair`.
    ///
    /// # Panics
    /// Panics if `batch == 0`; a dispatch must be able to carry a query.
    pub fn with_oracle_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "oracle batch must be >= 1");
        self.oracle_batch = Some(batch);
        self
    }

    /// Set the sampling seed (default: each layer's documented default).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Skip violation scans of DCs the static analyzer proves can never be
    /// violated (default: off). Pruned DCs have provably empty witness
    /// lists, so enabling this never changes scan output — only the wasted
    /// work is skipped.
    pub fn with_prune_redundant(mut self, prune: bool) -> Self {
        self.prune_redundant = prune;
        self
    }

    /// Worker thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pinned schedule, or `None` for auto-selection.
    pub fn schedule(&self) -> Option<Schedule> {
        self.schedule
    }

    /// Oracle cache bound in entries, or `None` for unbounded.
    pub fn oracle_cap(&self) -> Option<usize> {
        self.oracle_cap
    }

    /// Batched-dispatch bound in queries, or `None` for unbounded.
    pub fn oracle_batch(&self) -> Option<usize> {
        self.oracle_batch
    }

    /// Sampling seed, or `None` for the layer default.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Whether statically-unviolable DCs are skipped during scans.
    pub fn prune_redundant(&self) -> bool {
        self.prune_redundant
    }

    /// The one warning/rejection message for an oracle batch size configured
    /// where no oracle backend (`trex-repair`'s `OracleBackend`) is attached.
    ///
    /// Batching only groups *backend* dispatches; without a backend every
    /// coalition query runs the local repair directly, so the knob is inert.
    /// The CLI warns with this message (local runs still work), the server
    /// API rejects the request with it (a remote client asking for batching
    /// it cannot get deserves an error, not silence). One string, so the two
    /// surfaces can never drift apart.
    pub const ORACLE_BATCH_WITHOUT_BACKEND: &'static str =
        "--oracle-batch is set but no oracle backend is attached; batching only groups \
         backend dispatches, so the setting has no effect";
}

/// Build an [`ExecConfig`] from string-valued execution knobs — the single
/// validation path shared by the CLI flags and the server's per-request
/// query parameters.
///
/// `get(name)` looks up the raw value of knob `name` (`None` when absent);
/// recognized names are `threads`, `schedule`, `oracle-cap`, `oracle-batch`,
/// `seed`, and `prune-redundant` (presence alone enables pruning, matching
/// the CLI's boolean-flag behavior). Validation and error wording are the
/// contract here: `threads` absent or `0` resolves to the available
/// parallelism via [`crate::parallel::resolve_threads`] (absurd counts keep
/// the offending value and the cap in the message), `schedule` accepts
/// `auto | player | budget | steal`, `oracle-batch` must be ≥ 1. Callers
/// surface the returned message verbatim, so a bad `?threads=999999` on the
/// server reads exactly like a bad `--threads 999999` on the CLI.
pub fn exec_config_from_knobs<'v>(
    get: impl Fn(&str) -> Option<&'v str>,
) -> Result<ExecConfig, String> {
    let requested: usize = match get("threads") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--threads: cannot parse {v:?}"))?,
    };
    let threads = crate::parallel::resolve_threads(requested).map_err(|e| e.to_string())?;
    let mut cfg = ExecConfig::new().with_threads(threads);
    match get("schedule").unwrap_or("auto") {
        "auto" => {}
        "player" => cfg = cfg.with_schedule(Schedule::PlayerSharded),
        "budget" => cfg = cfg.with_schedule(Schedule::BudgetSplit),
        "steal" => cfg = cfg.with_schedule(Schedule::WorkStealing),
        other => {
            return Err(format!(
                "unknown schedule {other:?} (auto | player | budget | steal)"
            ))
        }
    }
    if let Some(v) = get("oracle-cap") {
        let cap = v
            .parse::<usize>()
            .map_err(|_| format!("--oracle-cap: cannot parse {v:?}"))?;
        cfg = cfg.with_oracle_cap(cap);
    }
    if let Some(v) = get("oracle-batch") {
        let batch = v
            .parse::<usize>()
            .map_err(|_| format!("--oracle-batch: cannot parse {v:?}"))?;
        if batch == 0 {
            return Err(
                "--oracle-batch must be >= 1 (every dispatch carries at least one query)"
                    .to_string(),
            );
        }
        cfg = cfg.with_oracle_batch(batch);
    }
    if let Some(v) = get("seed") {
        let seed = v
            .parse::<u64>()
            .map_err(|_| format!("--seed: cannot parse {v:?}"))?;
        cfg = cfg.with_seed(seed);
    }
    if get("prune-redundant").is_some() {
        cfg = cfg.with_prune_redundant(true);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_serial_and_unset() {
        let cfg = ExecConfig::new();
        assert_eq!(cfg.threads(), 1);
        assert_eq!(cfg.schedule(), None);
        assert_eq!(cfg.oracle_cap(), None);
        assert_eq!(cfg.oracle_batch(), None);
        assert_eq!(cfg.seed(), None);
        assert!(!cfg.prune_redundant());
        assert_eq!(cfg, ExecConfig::default());
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = ExecConfig::new()
            .with_threads(8)
            .with_schedule(Schedule::WorkStealing)
            .with_oracle_cap(0)
            .with_oracle_batch(32)
            .with_seed(7)
            .with_prune_redundant(true);
        assert_eq!(cfg.threads(), 8);
        assert_eq!(cfg.schedule(), Some(Schedule::WorkStealing));
        assert_eq!(cfg.oracle_cap(), Some(0));
        assert_eq!(cfg.oracle_batch(), Some(32));
        assert_eq!(cfg.seed(), Some(7));
        assert!(cfg.prune_redundant());
    }

    #[test]
    #[should_panic(expected = "threads must be >= 1")]
    fn zero_threads_panics() {
        let _ = ExecConfig::new().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "oracle batch must be >= 1")]
    fn zero_oracle_batch_panics() {
        let _ = ExecConfig::new().with_oracle_batch(0);
    }
}
