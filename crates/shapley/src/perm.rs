//! Exact Shapley values by permutation enumeration — a reference
//! implementation.
//!
//! The Shapley value has an equivalent form as the average marginal
//! contribution over all `n!` player orderings:
//!
//! ```text
//! Shap(i) = 1/n! · Σ_{π ∈ S_n} ( v(pred_π(i) ∪ {i}) − v(pred_π(i)) )
//! ```
//!
//! Enumerating `n!` permutations is hopeless beyond `n ≈ 10`, but it is an
//! *independent* derivation from the subset-enumeration solver in
//! [`crate::exact`], which makes it a high-value cross-check: the two
//! solvers agreeing on random games (see the property tests in `lib.rs`)
//! guards against weight-formula bugs that a single implementation's unit
//! tests would miss. It is also the exact counterpart of the sampling
//! estimator in [`crate::sampling`], which averages the same summand over
//! random `π` instead of all of them.

use crate::game::{Coalition, Game};

/// Hard cap: `10! = 3.6M` permutations, each costing `n` evaluations.
pub const MAX_PERM_PLAYERS: usize = 10;

/// Exact Shapley values by enumerating all `n!` permutations.
///
/// # Panics
/// Panics if `n > MAX_PERM_PLAYERS` — this is a reference solver for tests,
/// not a production path, so misuse should fail loudly.
pub fn shapley_permutation_exact<G: Game + ?Sized>(game: &G) -> Vec<f64> {
    let n = game.num_players();
    assert!(
        n <= MAX_PERM_PLAYERS,
        "permutation enumeration over {n} players ({}! orders) is not feasible",
        n
    );
    if n == 0 {
        return Vec::new();
    }
    let mut phi = vec![0.0f64; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut count = 0u64;

    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    loop {
        // Walk this permutation: incremental coalition, n evaluations.
        let mut s = Coalition::empty(n);
        let mut prev = game.value(&s);
        for &p in &perm {
            s.insert(p);
            let cur = game.value(&s);
            phi[p] += cur - prev;
            prev = cur;
        }
        count += 1;

        // Next permutation (Heap).
        let mut i = 0;
        loop {
            if i >= n {
                let total = count as f64;
                for v in &mut phi {
                    *v /= total;
                }
                debug_assert_eq!(count, (1..=n as u64).product::<u64>());
                return phi;
            }
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                c[i] += 1;
                break;
            }
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::shapley_exact;
    use crate::game::fixtures;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn agrees_with_subset_enumeration_on_fixtures() {
        let games: Vec<Box<dyn Game>> = vec![
            Box::new(fixtures::unanimity(5, vec![0, 4])),
            Box::new(fixtures::majority(5)),
            Box::new(fixtures::gloves(2, 3)),
            Box::new(fixtures::paper_example_2_3()),
            Box::new(fixtures::additive(vec![1.0, -2.0, 0.25, 7.5])),
        ];
        for g in &games {
            let a = shapley_exact(g.as_ref()).unwrap();
            let b = shapley_permutation_exact(g.as_ref());
            assert_close(&a, &b);
        }
    }

    #[test]
    fn empty_game() {
        let g = crate::game::FnGame::new(0, |_: &Coalition| 0.0);
        assert!(shapley_permutation_exact(&g).is_empty());
    }

    #[test]
    fn single_player_gets_grand_value() {
        let g = crate::game::FnGame::new(1, |s: &Coalition| if s.contains(0) { 3.5 } else { 0.0 });
        assert_close(&shapley_permutation_exact(&g), &[3.5]);
    }

    #[test]
    #[should_panic(expected = "not feasible")]
    fn refuses_large_games() {
        let g = crate::game::FnGame::new(11, |_: &Coalition| 0.0);
        let _ = shapley_permutation_exact(&g);
    }
}
