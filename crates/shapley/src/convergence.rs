//! Streaming statistics and convergence diagnostics for the sampling
//! estimators.
//!
//! [`RunningStats`] is a numerically stable (Welford) accumulator of mean
//! and variance; [`ConvergenceTrace`] records estimate-vs-reference error as
//! sample counts grow, producing the series behind experiment E5
//! ("sampling error ∝ 1/√m").

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            // Degenerate counts have no spread to report. Returning 0.0
            // (not NaN from a 0/0) keeps every downstream consumer —
            // std_dev, std_error, confidence intervals, and the anytime
            // checkpoint JSON — finite and serializable.
            0.0
        } else {
            // Welford's m2 is mathematically non-negative, but catastrophic
            // cancellation on near-constant large-magnitude streams (and
            // merges of such accumulators) can leave it a hair below zero;
            // sqrt would then turn the epsilon into NaN. Clamp at 0.
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// One point of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Sample count at this checkpoint.
    pub samples: usize,
    /// Current estimate.
    pub estimate: f64,
    /// Absolute error against the reference value.
    pub abs_error: f64,
}

/// Records how an estimate approaches a known reference as samples accrue.
#[derive(Debug, Clone)]
pub struct ConvergenceTrace {
    reference: f64,
    points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Start a trace against a reference (e.g. exact Shapley) value.
    pub fn new(reference: f64) -> Self {
        ConvergenceTrace {
            reference,
            points: Vec::new(),
        }
    }

    /// Record a checkpoint.
    pub fn record(&mut self, samples: usize, estimate: f64) {
        self.points.push(TracePoint {
            samples,
            estimate,
            abs_error: (estimate - self.reference).abs(),
        });
    }

    /// The recorded checkpoints, in record order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The reference value the trace compares against.
    pub fn reference(&self) -> f64 {
        self.reference
    }

    /// Least-squares slope of `log(error)` against `log(samples)` — for an
    /// unbiased Monte-Carlo estimator this should be about `−1/2`.
    /// Checkpoints with zero error are skipped; returns `None` with fewer
    /// than two usable points.
    pub fn loglog_slope(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.abs_error > 0.0 && p.samples > 0)
            .map(|p| ((p.samples as f64).ln(), p.abs_error.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some((n * sxy - sx * sy) / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut s = RunningStats::new();
        for x in xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(5.0);
        assert_eq!(s1.mean(), 5.0);
        assert_eq!(s1.variance(), 0.0);
    }

    #[test]
    fn spread_is_finite_and_non_negative_on_adversarial_streams() {
        // Degenerate counts, constant streams, huge magnitudes, and merges
        // of all of those: variance/std_dev/std_error must come back finite
        // and ≥ 0 (never the NaN a sqrt of a rounding-negative m2 or a 0/0
        // would produce). These values flow straight into serialized anytime
        // checkpoint payloads, where NaN would be invalid JSON.
        let streams: Vec<Vec<f64>> = vec![
            vec![],
            vec![2.5],
            vec![1e15 + 0.1; 100],
            vec![3.14e18; 7],
            vec![f64::MIN_POSITIVE; 9],
            vec![1e300, 1e300, 1e300],
        ];
        let mut accs: Vec<RunningStats> = Vec::new();
        for xs in &streams {
            let mut s = RunningStats::new();
            for &x in xs {
                s.push(x);
            }
            assert!(s.variance().is_finite() && s.variance() >= 0.0, "{xs:?}");
            assert!(s.std_dev().is_finite() && s.std_dev() >= 0.0, "{xs:?}");
            assert!(s.std_error().is_finite() && s.std_error() >= 0.0, "{xs:?}");
            accs.push(s);
        }
        let mut merged = RunningStats::new();
        for s in &accs[..4] {
            // The huge-magnitude streams stay un-merged: their *means*
            // genuinely overflow when combined, which is the caller's
            // problem, not the accumulator's.
            merged.merge(s);
        }
        assert!(merged.variance().is_finite() && merged.variance() >= 0.0);
        assert!(merged.std_dev().is_finite() && merged.std_dev() >= 0.0);
        assert!(merged.std_error().is_finite() && merged.std_error() >= 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0).collect();
        let mut all = RunningStats::new();
        for x in &xs {
            all.push(*x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(*x);
            } else {
                b.push(*x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);

        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trace_records_errors() {
        let mut t = ConvergenceTrace::new(0.5);
        t.record(10, 0.8);
        t.record(100, 0.55);
        assert_eq!(t.points().len(), 2);
        assert!((t.points()[0].abs_error - 0.3).abs() < 1e-12);
        assert!((t.points()[1].abs_error - 0.05).abs() < 1e-12);
        assert_eq!(t.reference(), 0.5);
    }

    #[test]
    fn loglog_slope_of_perfect_sqrt_decay() {
        let mut t = ConvergenceTrace::new(0.0);
        for m in [10usize, 100, 1000, 10_000] {
            // error = 1/sqrt(m)
            t.record(m, 1.0 / (m as f64).sqrt());
        }
        let slope = t.loglog_slope().unwrap();
        assert!((slope + 0.5).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn loglog_slope_none_for_degenerate_traces() {
        let mut t = ConvergenceTrace::new(1.0);
        t.record(10, 1.0); // zero error — skipped
        assert_eq!(t.loglog_slope(), None);
    }
}
