//! # trex-shapley
//!
//! The Shapley-value engine of the T-REx reproduction.
//!
//! The paper (§2.2–§2.3) casts "how much did this constraint / this cell
//! contribute to the repair of the cell of interest?" as the Shapley value
//! of a cooperative game whose characteristic function queries the black-box
//! repair algorithm. This crate provides the game abstractions and four
//! solvers:
//!
//! | solver | module | cost | used for |
//! |---|---|---|---|
//! | subset enumeration (def. of §2.2) | [`exact`] | `Θ(2^n)` | constraints (few players) |
//! | permutation enumeration | [`perm`] | `Θ(n!·n)` | cross-check oracle |
//! | permutation sampling ([7], Example 2.5) | [`sampling`] | `Θ(m)` | cells (many players) |
//! | parallel permutation sampling | [`parallel`] | `Θ(m / threads)` | cells, multi-core |
//! | stratified / antithetic variants | [`stratified`] | `Θ(m)` | ablation A3 |
//!
//! Every sampling estimator — plain, adaptive, stratified, antithetic —
//! has a [`parallel`] counterpart with the same `(seed, threads)`
//! determinism contract (`threads = 1` replays the serial path bit for
//! bit).
//!
//! All solvers operate on [`Game`]/[`StochasticGame`] and are exercised
//! against closed-form fixtures ([`game::fixtures`]) and against each other
//! by property tests (Shapley axioms: efficiency, symmetry, dummy,
//! linearity).

#![warn(missing_docs)]

pub mod banzhaf;
pub mod config;
pub mod convergence;
pub mod exact;
pub mod game;
pub mod interaction;
pub mod parallel;
pub mod perm;
pub mod sampling;
pub mod stratified;

pub use banzhaf::{banzhaf_estimate, banzhaf_exact};
pub use config::{exec_config_from_knobs, ExecConfig};
pub use convergence::{ConvergenceTrace, RunningStats, TracePoint};
pub use exact::{
    shapley_exact, shapley_exact_player, shapley_exact_rational, ExactError, Rational,
    MAX_EXACT_PLAYERS,
};
pub use game::{Coalition, FnGame, Game, StochasticGame};
pub use interaction::shapley_interaction_exact;
pub use parallel::{
    available_threads, estimate_all_walk_anytime, resolve_threads, AnytimeCheckpoint,
    AnytimeControl, ParallelConfig, Schedule, ThreadsError, MAX_THREADS,
};
pub use perm::{shapley_permutation_exact, MAX_PERM_PLAYERS};
pub use sampling::{
    estimate_all, estimate_all_walk, estimate_player, estimate_player_adaptive,
    estimate_player_adaptive_rounds, player_seed, round_seed, Estimate, SamplingConfig,
};
pub use stratified::{estimate_player_antithetic, estimate_player_stratified};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod axiom_tests {
    //! Property tests of the Shapley axioms on random games.

    use super::*;
    use proptest::prelude::*;

    /// A random game over `n ≤ 6` players given by its `2^n` coalition
    /// values (v(∅) forced to 0).
    #[derive(Debug, Clone)]
    struct TableGame {
        n: usize,
        values: Vec<f64>,
    }

    impl Game for TableGame {
        fn num_players(&self) -> usize {
            self.n
        }
        fn value(&self, c: &Coalition) -> f64 {
            let mut mask = 0usize;
            for i in c.iter() {
                mask |= 1 << i;
            }
            self.values[mask]
        }
    }

    fn arb_game(max_n: usize) -> impl Strategy<Value = TableGame> {
        (1..=max_n).prop_flat_map(|n| {
            proptest::collection::vec(-10.0f64..10.0, 1 << n).prop_map(move |mut values| {
                values[0] = 0.0;
                TableGame { n, values }
            })
        })
    }

    fn arb_binary_game(max_n: usize) -> impl Strategy<Value = TableGame> {
        (1..=max_n).prop_flat_map(|n| {
            proptest::collection::vec(proptest::bool::ANY, 1 << n).prop_map(move |bits| {
                let mut values: Vec<f64> = bits
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect();
                values[0] = 0.0;
                TableGame { n, values }
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Efficiency: Σφ_i = v(N).
        #[test]
        fn efficiency(g in arb_game(6)) {
            let phi = shapley_exact(&g).unwrap();
            let grand = g.value(&Coalition::full(g.n));
            prop_assert!((phi.iter().sum::<f64>() - grand).abs() < 1e-9);
        }

        /// Dummy: a player whose marginal contribution is always 0 gets 0.
        #[test]
        fn dummy_player(g in arb_game(5)) {
            // Force player 0 to be a dummy: v(S ∪ {0}) = v(S).
            let mut g = g;
            let size = g.values.len();
            for mask in 0..size {
                if mask & 1 == 1 {
                    g.values[mask] = g.values[mask & !1];
                }
            }
            let phi = shapley_exact(&g).unwrap();
            prop_assert!(phi[0].abs() < 1e-9, "dummy got {}", phi[0]);
        }

        /// Symmetry: interchangeable players get equal values. We symmetrize
        /// players 0 and 1 by averaging the game over the swap.
        #[test]
        fn symmetry(g in arb_game(5)) {
            if g.n < 2 { return Ok(()); }
            let mut g = g;
            let size = g.values.len();
            let swap01 = |mask: usize| {
                let b0 = mask & 1;
                let b1 = (mask >> 1) & 1;
                (mask & !3) | (b0 << 1) | b1
            };
            let orig = g.values.clone();
            for mask in 0..size {
                g.values[mask] = 0.5 * (orig[mask] + orig[swap01(mask)]);
            }
            let phi = shapley_exact(&g).unwrap();
            prop_assert!((phi[0] - phi[1]).abs() < 1e-9);
        }

        /// Linearity: Shap(v + w) = Shap(v) + Shap(w).
        #[test]
        fn linearity(a in arb_game(5), b in arb_game(5)) {
            if a.n != b.n { return Ok(()); }
            let sum = TableGame {
                n: a.n,
                values: a.values.iter().zip(&b.values).map(|(x, y)| x + y).collect(),
            };
            let pa = shapley_exact(&a).unwrap();
            let pb = shapley_exact(&b).unwrap();
            let ps = shapley_exact(&sum).unwrap();
            for i in 0..a.n {
                prop_assert!((ps[i] - (pa[i] + pb[i])).abs() < 1e-9);
            }
        }

        /// The permutation-enumeration solver agrees with subset enumeration.
        #[test]
        fn perm_matches_subset(g in arb_game(5)) {
            let a = shapley_exact(&g).unwrap();
            let b = shapley_permutation_exact(&g);
            for i in 0..g.n {
                prop_assert!((a[i] - b[i]).abs() < 1e-9);
            }
        }

        /// The rational solver agrees with the float solver on 0/1 games.
        #[test]
        fn rational_matches_float_on_binary(g in arb_binary_game(6)) {
            let f = shapley_exact(&g).unwrap();
            let r = shapley_exact_rational(&g).unwrap();
            for i in 0..g.n {
                prop_assert!((f[i] - r[i].to_f64()).abs() < 1e-9);
            }
        }

        /// For monotone 0/1 games every Shapley value lies in [0, 1].
        #[test]
        fn binary_game_values_bounded(g in arb_binary_game(5)) {
            // Make the game monotone by propagating 1s upward.
            let mut g = g;
            let n = g.n;
            let size = 1usize << n;
            for mask in 0..size {
                for i in 0..n {
                    if mask >> i & 1 == 1 && g.values[mask & !(1 << i)] == 1.0 {
                        g.values[mask] = 1.0;
                    }
                }
            }
            let phi = shapley_exact(&g).unwrap();
            for p in phi {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
            }
        }

        /// The sampling estimator is within a generous tolerance of exact.
        #[test]
        fn sampling_close_to_exact(g in arb_game(5), seed in 0u64..1000) {
            let exact = shapley_exact(&g).unwrap();
            for (p, want) in exact.iter().enumerate().take(2) {
                let est = estimate_player(&g, p, SamplingConfig { samples: 3000, seed });
                let tol = est.ci_half_width(5.0).max(0.3);
                prop_assert!(
                    (est.value - want).abs() <= tol,
                    "player {p}: est {} exact {want} tol {}", est.value, tol
                );
            }
        }
    }
}
