//! Minimal JSON emission and validation (no external dependencies).
//!
//! The server only ever *writes* JSON — request inputs arrive as query
//! parameters — so this module is an escaper, a finite-number formatter,
//! and a strict syntax validator ([`validate`]) used by the server's tests
//! and by the `exp_load` harness to check every streamed checkpoint line.

use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted JSON string literal for `s`.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Format a finite `f64` as a JSON number (shortest round-trip form).
///
/// JSON has no NaN or infinity; the explanation pipeline guarantees finite
/// estimates (see `RunningStats::variance`), so a non-finite value here is
/// a bug upstream — it serializes as `null` rather than corrupting the
/// stream, and the validator downstream will flag it.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Strictly validate that `s` is one complete JSON value (RFC 8259
/// syntax: no trailing garbage, no `NaN`/`Infinity` extensions). Returns a
/// position-carrying message on the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at offset {pos}")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string_lit(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos} (wanted {word})"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        string_lit(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn string_lit(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).unwrap_or_default();
                    if hex.len() != 4 || !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at offset {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at offset {pos}")),
            },
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(-3.0), "-3.0");
        assert_eq!(num(1e300), "1e300");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        // Every emitted number must itself validate.
        for x in [0.0, -0.0, 1.5e-9, 123456789.125, f64::MIN_POSITIVE] {
            validate(&num(x)).unwrap();
        }
    }

    #[test]
    fn validator_accepts_real_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            "\"x\\n\\u0041\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}",
            " { \"k\" : true } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "NaN",
            "Infinity",
            "01x",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "'single'",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
