//! Request routing and JSON rendering for every endpoint.
//!
//! One shared [`trex::Session`] lives behind an `RwLock`: explanation and
//! violation reads take the read lock (they run concurrently, pooling
//! coalition answers through the session's shared `OracleCache`), repair
//! and input mutations take the write lock (and the session flushes the
//! cache itself). Per-request execution knobs (`?threads=…&seed=…`) are
//! validated by `trex_shapley::exec_config_from_knobs` — the exact
//! validation path and error wording of the CLI flags.

use crate::http::{
    chunk_begin, chunk_finish, chunk_line, write_error, write_json, BadRequest, Request,
};
use crate::json;
use std::io;
use std::net::TcpStream;
use std::sync::RwLock;
use std::time::{Duration, Instant};
use trex::{cell_label, cell_players, CellExplanation, ExplainError, MaskMode, Session};
use trex_shapley::{AnytimeControl, ExecConfig, SamplingConfig};
use trex_table::{CellRef, Table, Value};

/// Default per-player walk budget of a cell explanation when the request
/// does not pin `samples`.
pub const DEFAULT_SAMPLES: usize = 2000;

/// Default number of checkpoints an anytime stream aims for when the
/// request does not pin `checkpoint` (the walks-per-checkpoint stride).
const DEFAULT_CHECKPOINTS: usize = 20;

/// The shared state behind every worker thread.
pub(crate) struct ServerState {
    pub(crate) session: RwLock<Session>,
}

impl ServerState {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, Session> {
        // A panic in one request must not wedge the server: poisoned locks
        // still guard consistent data here (handlers never leave the
        // session half-mutated across an unwind point).
        self.session.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Session> {
        self.session.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Serve one connection: read the request, dispatch, answer errors.
pub(crate) fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    // A client that stops reading mid-stream must not pin a worker (and
    // the session read lock) forever: a stalled write errors out and the
    // anytime driver stops.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let req = match crate::http::read_request(&mut stream) {
        Err(_) => return, // dead socket; nothing to answer
        Ok(Err(bad)) => {
            let _ = write_error(&mut stream, bad.status, &bad.message);
            return;
        }
        Ok(Ok(req)) => req,
    };
    if let Err(bad) = dispatch(state, &req, &mut stream) {
        let _ = write_error(&mut stream, bad.status, &bad.message);
    }
}

fn dispatch(state: &ServerState, req: &Request, stream: &mut TcpStream) -> Result<(), BadRequest> {
    let io = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => health(req, stream),
        ("GET", "/violations") => violations(state, req, stream),
        ("POST", "/repair") => repair(state, req, stream),
        ("GET", "/explain") => explain(state, req, stream),
        ("POST", "/cell") => set_cell(state, req, stream),
        ("POST", "/constraint") => upsert_constraint(state, req, stream),
        ("DELETE", "/constraint") => remove_constraint(state, req, stream),
        (_, "/health" | "/violations" | "/repair" | "/explain" | "/cell" | "/constraint") => {
            return Err(BadRequest::status(
                405,
                format!("method {} not allowed for {}", req.method, req.path),
            ))
        }
        _ => {
            return Err(BadRequest::status(
                404,
                format!(
                "no such endpoint {} (have /health /violations /repair /explain /cell /constraint)",
                req.path
            ),
            ))
        }
    };
    // An I/O failure answering the request means the client disappeared;
    // there is no one left to tell.
    let _ = io;
    Ok(())
}

// --- parameter plumbing -------------------------------------------------

/// Names [`request_exec`] consumes, shared by every endpoint allowlist.
const EXEC_PARAMS: [&str; 6] = [
    "threads",
    "schedule",
    "oracle-cap",
    "oracle-batch",
    "seed",
    "prune-redundant",
];

/// Reject query parameters no handler reads — a typoed `?shedule=` must
/// error, not silently fall back to defaults (mirrors the CLI's
/// unknown-flag rejection).
fn check_params(req: &Request, extra: &[&str]) -> Result<(), BadRequest> {
    for (name, _) in &req.query {
        if !EXEC_PARAMS.contains(&name.as_str()) && !extra.contains(&name.as_str()) {
            return Err(BadRequest::new(format!("unknown parameter {name:?}")));
        }
    }
    Ok(())
}

/// Parse the request's execution knobs through the shared CLI/server
/// validation path, then apply the server-side rule the CLI only warns
/// about: an `oracle-batch` with no backend attached is rejected — a
/// remote client asking for batching it cannot get deserves an error,
/// not silence.
fn request_exec(req: &Request, session: &Session) -> Result<ExecConfig, BadRequest> {
    let exec =
        trex_shapley::exec_config_from_knobs(|name| req.param(name)).map_err(BadRequest::new)?;
    if exec.oracle_batch().is_some() && session.oracle_backend().is_none() {
        return Err(BadRequest::new(ExecConfig::ORACLE_BATCH_WITHOUT_BACKEND));
    }
    Ok(exec)
}

/// Parse a `tROW.Attr` cell spec against the session table (1-based row,
/// the CLI's `--cell` grammar).
fn parse_cell(table: &Table, spec: &str) -> Result<CellRef, BadRequest> {
    let (row_part, attr_part) = spec
        .split_once('.')
        .ok_or_else(|| BadRequest::new(format!("cell {spec:?}: expected tROW.Attr")))?;
    let row_text = row_part.strip_prefix('t').unwrap_or(row_part);
    let row: usize = row_text
        .parse()
        .map_err(|_| BadRequest::new(format!("cell {spec:?}: bad row {row_text:?}")))?;
    if row == 0 || row > table.num_rows() {
        return Err(BadRequest::new(format!(
            "cell {spec:?}: row {row} out of range 1..={}",
            table.num_rows()
        )));
    }
    let attr = table
        .schema()
        .resolve(attr_part)
        .ok_or_else(|| BadRequest::new(format!("cell {spec:?}: no attribute {attr_part:?}")))?;
    Ok(CellRef::new(row - 1, attr))
}

fn parse_usize(req: &Request, name: &str, default: usize) -> Result<usize, BadRequest> {
    match req.param(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| BadRequest::new(format!("{name}: cannot parse {v:?}"))),
    }
}

fn explain_error(e: ExplainError) -> BadRequest {
    // Every ExplainError is a property of the request (bad cell, cell not
    // repaired, table too large for exact) — a client error, not a 500.
    BadRequest::new(e.to_string())
}

// --- endpoints ----------------------------------------------------------

fn health(req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    if let Err(bad) = check_params(req, &[]) {
        return write_error(stream, bad.status, &bad.message);
    }
    write_json(stream, 200, "{\"status\":\"ok\"}")
}

fn violations(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let session = state.read();
    let (exec, ()) = match (request_exec(req, &session), check_params(req, &[])) {
        (Ok(e), Ok(())) => (e, ()),
        (Err(bad), _) | (_, Err(bad)) => return write_error(stream, bad.status, &bad.message),
    };
    let violations = match session.violations_for(&exec) {
        Ok(v) => v,
        Err(e) => return write_error(stream, 400, &e.to_string()),
    };
    let table = session.table();
    let items: Vec<String> = violations
        .iter()
        .map(|v| {
            let cells: Vec<String> = v
                .cells
                .iter()
                .map(|c| json::string(&cell_label(table, *c)))
                .collect();
            format!(
                "{{\"constraint\":{},\"row1\":{},\"row2\":{},\"cells\":[{}]}}",
                json::string(&v.constraint),
                v.row1 + 1,
                v.row2.map_or("null".to_string(), |r| (r + 1).to_string()),
                cells.join(",")
            )
        })
        .collect();
    let body = format!(
        "{{\"count\":{},\"violations\":[{}]}}",
        items.len(),
        items.join(",")
    );
    write_json(stream, 200, &body)
}

fn repair(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    if let Err(bad) = check_params(req, &[]) {
        return write_error(stream, bad.status, &bad.message);
    }
    let mut session = state.write();
    let result = session.repair();
    let table = session.table();
    let changes: Vec<String> = result
        .changes
        .iter()
        .map(|c| {
            format!(
                "{{\"cell\":{},\"from\":{},\"to\":{}}}",
                json::string(&cell_label(table, c.cell)),
                json::string(&c.from.render()),
                json::string(&c.to.render())
            )
        })
        .collect();
    let body = format!(
        "{{\"count\":{},\"changes\":[{}]}}",
        changes.len(),
        changes.join(",")
    );
    write_json(stream, 200, &body)
}

fn set_cell(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let mut session = state.write();
    let outcome = (|| -> Result<String, BadRequest> {
        check_params(req, &["cell", "value"])?;
        let spec = req
            .param("cell")
            .ok_or_else(|| BadRequest::new("missing required parameter \"cell\""))?;
        let cell = parse_cell(session.table(), spec)?;
        let raw = req
            .param("value")
            .ok_or_else(|| BadRequest::new("missing required parameter \"value\""))?;
        let dtype = session.table().schema().attr(cell.attr).dtype;
        let value = Value::parse_as(raw, dtype).map_err(|e| BadRequest::new(e.to_string()))?;
        let label = cell_label(session.table(), cell);
        let previous = session.set_cell(cell, value.clone());
        Ok(format!(
            "{{\"cell\":{},\"previous\":{},\"value\":{}}}",
            json::string(&label),
            json::string(&previous.render()),
            json::string(&value.render())
        ))
    })();
    match outcome {
        Ok(body) => write_json(stream, 200, &body),
        Err(bad) => write_error(stream, bad.status, &bad.message),
    }
}

fn upsert_constraint(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let mut session = state.write();
    let outcome = (|| -> Result<String, BadRequest> {
        check_params(req, &["dc", "name"])?;
        let text = req
            .param("dc")
            .ok_or_else(|| BadRequest::new("missing required parameter \"dc\""))?;
        let default_name = format!("DC{}", session.constraints().len() + 1);
        let name = req.param("name").unwrap_or(&default_name);
        let dc = trex_constraints::parse_dc_named(text, name)
            .map_err(|e| BadRequest::new(e.to_string()))?;
        let name = dc.name.clone();
        session.upsert_constraint(dc);
        Ok(format!(
            "{{\"name\":{},\"constraints\":{}}}",
            json::string(&name),
            session.constraints().len()
        ))
    })();
    match outcome {
        Ok(body) => write_json(stream, 200, &body),
        Err(bad) => write_error(stream, bad.status, &bad.message),
    }
}

fn remove_constraint(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let mut session = state.write();
    let outcome = (|| -> Result<String, BadRequest> {
        check_params(req, &["name"])?;
        let name = req
            .param("name")
            .ok_or_else(|| BadRequest::new("missing required parameter \"name\""))?;
        match session.remove_constraint(name) {
            Some(dc) => Ok(format!(
                "{{\"removed\":{},\"constraints\":{}}}",
                json::string(&dc.name),
                session.constraints().len()
            )),
            None => Err(BadRequest::status(
                404,
                format!("no constraint named {name:?}"),
            )),
        }
    })();
    match outcome {
        Ok(body) => write_json(stream, 200, &body),
        Err(bad) => write_error(stream, bad.status, &bad.message),
    }
}

fn explain(state: &ServerState, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let session = state.read();
    let setup = (|| -> Result<(ExecConfig, CellRef), BadRequest> {
        check_params(
            req,
            &[
                "cell",
                "kind",
                "mode",
                "samples",
                "budget_ms",
                "checkpoint",
                "stream",
            ],
        )?;
        let exec = request_exec(req, &session)?;
        let spec = req
            .param("cell")
            .ok_or_else(|| BadRequest::new("missing required parameter \"cell\""))?;
        let cell = parse_cell(session.table(), spec)?;
        Ok((exec, cell))
    })();
    let (exec, cell) = match setup {
        Ok(v) => v,
        Err(bad) => return write_error(stream, bad.status, &bad.message),
    };
    match req.param("kind").unwrap_or("cells") {
        "constraints" => explain_constraints(&session, req, stream, cell, &exec),
        "cells" => explain_cells(&session, req, stream, cell, &exec),
        other => write_error(
            stream,
            400,
            &format!("unknown kind {other:?} (constraints | cells)"),
        ),
    }
}

fn explain_constraints(
    session: &Session,
    req: &Request,
    stream: &mut TcpStream,
    cell: CellRef,
    exec: &ExecConfig,
) -> io::Result<()> {
    for p in ["mode", "samples", "budget_ms", "checkpoint", "stream"] {
        if req.param(p).is_some() {
            return write_error(
                stream,
                400,
                &format!("parameter {p:?} only applies to kind=cells"),
            );
        }
    }
    let explanation = match session.explain_constraints_for(cell, exec) {
        Ok(e) => e,
        Err(e) => {
            let bad = explain_error(e);
            return write_error(stream, bad.status, &bad.message);
        }
    };
    let ranking: Vec<String> = explanation
        .ranking
        .entries()
        .iter()
        .map(|e| {
            format!(
                "{{\"label\":{},\"value\":{}}}",
                json::string(&e.label),
                json::num(e.value)
            )
        })
        .collect();
    let exact: Vec<String> = explanation
        .exact
        .iter()
        .map(|(label, r)| {
            format!(
                "{{\"label\":{},\"value\":{}}}",
                json::string(label),
                json::string(&r.to_string())
            )
        })
        .collect();
    let body = format!(
        "{{\"target\":{},\"ranking\":[{}],\"exact\":[{}]}}",
        json::string(&explanation.target.render()),
        ranking.join(","),
        exact.join(",")
    );
    write_json(stream, 200, &body)
}

/// The `"target":…,"cells":…,"values":…,"ranking":…` core of a cell
/// explanation, shared verbatim by the batch response and the stream's
/// final line — the determinism contract ("final stream line equals batch
/// explain bit for bit") is checked by comparing these strings.
fn cells_payload(table: &Table, e: &CellExplanation) -> String {
    let cells: Vec<String> = e
        .players
        .iter()
        .map(|c| json::string(&cell_label(table, *c)))
        .collect();
    let values: Vec<String> = e.values.iter().map(|v| json::num(*v)).collect();
    let ranking: Vec<String> = e
        .ranking
        .entries()
        .iter()
        .map(|entry| {
            format!(
                "{{\"label\":{},\"value\":{},\"std_error\":{}}}",
                json::string(&entry.label),
                json::num(entry.value),
                json::num(entry.std_error.unwrap_or(0.0))
            )
        })
        .collect();
    format!(
        "\"target\":{},\"cells\":[{}],\"values\":[{}],\"ranking\":[{}]",
        json::string(&e.target.render()),
        cells.join(","),
        values.join(","),
        ranking.join(",")
    )
}

fn mask_mode(req: &Request) -> Result<MaskMode, BadRequest> {
    match req.param("mode").unwrap_or("null") {
        "null" => Ok(MaskMode::Null),
        "distinct" => Ok(MaskMode::Distinct),
        other => Err(BadRequest::new(format!(
            "unknown mode {other:?} (null | distinct)"
        ))),
    }
}

fn explain_cells(
    session: &Session,
    req: &Request,
    stream: &mut TcpStream,
    cell: CellRef,
    exec: &ExecConfig,
) -> io::Result<()> {
    let setup = (|| -> Result<(MaskMode, SamplingConfig), BadRequest> {
        let mode = mask_mode(req)?;
        let samples = parse_usize(req, "samples", DEFAULT_SAMPLES)?;
        if samples == 0 {
            return Err(BadRequest::new("samples must be >= 1"));
        }
        Ok((
            mode,
            SamplingConfig {
                samples,
                seed: exec.seed().unwrap_or(0),
            },
        ))
    })();
    let (mode, config) = match setup {
        Ok(v) => v,
        Err(bad) => return write_error(stream, bad.status, &bad.message),
    };
    let streaming = req.param("budget_ms").is_some() || req.param("stream").is_some();
    if !streaming {
        return match session.explain_cells_masked_for(cell, mode, config, exec) {
            Ok(e) => write_json(
                stream,
                200,
                &format!("{{{}}}", cells_payload(session.table(), &e)),
            ),
            Err(e) => {
                let bad = explain_error(e);
                write_error(stream, bad.status, &bad.message)
            }
        };
    }

    // --- the anytime stream ---
    let params = (|| -> Result<(Option<Duration>, usize), BadRequest> {
        let budget = match req.param("budget_ms") {
            None => None,
            Some(v) => Some(Duration::from_millis(v.parse().map_err(|_| {
                BadRequest::new(format!("budget_ms: cannot parse {v:?}"))
            })?)),
        };
        let default_every = (config.samples / DEFAULT_CHECKPOINTS).max(1);
        let every = parse_usize(req, "checkpoint", default_every)?;
        if every == 0 {
            return Err(BadRequest::new("checkpoint must be >= 1"));
        }
        Ok((budget, every))
    })();
    let (budget, every) = match params {
        Ok(v) => v,
        Err(bad) => return write_error(stream, bad.status, &bad.message),
    };

    // Player labels are known up front (every cell but the explained one,
    // row-major) so checkpoint lines can be labeled without waiting for
    // the run to finish.
    let labels: Vec<String> = cell_players(session.table(), cell)
        .into_iter()
        .map(|c| cell_label(session.table(), c))
        .collect();
    let started = Instant::now();
    let deadline = budget.map(|b| started + b);
    let mut begun = false;
    let mut client_gone = false;
    let mut last_completed = 0usize;
    let mut total = 0usize;
    let outcome = session.explain_cells_masked_anytime(cell, mode, config, exec, every, |cp| {
        last_completed = cp.completed;
        total = cp.total;
        if !begun {
            if chunk_begin(stream).is_err() {
                client_gone = true;
                return AnytimeControl::Stop;
            }
            begun = true;
        }
        let estimates: Vec<String> = cp
            .estimates
            .iter()
            .zip(&labels)
            .map(|(e, label)| {
                format!(
                    "{{\"cell\":{},\"value\":{},\"std_error\":{},\"ci95\":{},\"samples\":{}}}",
                    json::string(label),
                    json::num(e.value),
                    json::num(e.std_error()),
                    json::num(e.ci_half_width(1.96)),
                    e.samples
                )
            })
            .collect();
        let line = format!(
            "{{\"final\":false,\"completed\":{},\"total\":{},\"elapsed_ms\":{},\"estimates\":[{}]}}",
            cp.completed,
            cp.total,
            started.elapsed().as_millis(),
            estimates.join(",")
        );
        if chunk_line(stream, &line).is_err() {
            client_gone = true;
            return AnytimeControl::Stop;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return AnytimeControl::Stop;
        }
        AnytimeControl::Continue
    });
    match outcome {
        Err(e) => {
            // Explanation errors surface before the first checkpoint (the
            // repair-target pre-flight), so the plain HTTP error still fits
            // on the wire.
            debug_assert!(!begun);
            let bad = explain_error(e);
            write_error(stream, bad.status, &bad.message)
        }
        Ok((explanation, finished)) => {
            if client_gone {
                return Ok(()); // nobody is listening
            }
            if !begun {
                // Degenerate stream that stopped before its first line
                // could be written — still answer something well-formed.
                chunk_begin(stream)?;
            }
            let line = format!(
                "{{\"final\":true,\"finished\":{},\"completed\":{},\"total\":{},\"elapsed_ms\":{},{}}}",
                finished,
                last_completed,
                total,
                started.elapsed().as_millis(),
                cells_payload(session.table(), &explanation)
            );
            chunk_line(stream, &line)?;
            chunk_finish(stream)
        }
    }
}
