//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for
//! the explanation service: request-line + header parsing, query-string
//! decoding, fixed-length JSON responses, and chunked (streaming)
//! responses for the anytime endpoint. No external dependencies, no TLS,
//! no keep-alive (every response closes the connection).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request head (request line + headers), a guard against
/// hostile or broken clients streaming garbage forever.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Longest accepted request body. Bodies are read (to keep the connection
/// in a sane state) but ignored — every input travels in the query string.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, decoded path, decoded query parameters.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path portion of the target, percent-decoded (`/explain`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request the server refuses, with the status code to answer.
#[derive(Debug)]
pub struct BadRequest {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable reason (becomes the JSON `error` field).
    pub message: String,
}

impl BadRequest {
    /// A 400 with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        BadRequest {
            status: 400,
            message: message.into(),
        }
    }

    /// An arbitrary-status refusal.
    pub fn status(status: u16, message: impl Into<String>) -> Self {
        BadRequest {
            status,
            message: message.into(),
        }
    }
}

/// Read and parse one request from `stream`. `Ok(Err(_))` is a malformed
/// request that deserves an HTTP error response; `Err(_)` is a dead socket.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, BadRequest>> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Ok(Err(BadRequest::status(431, "request head too large")));
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => {
            return Ok(Err(BadRequest::new(format!(
                "malformed request line {request_line:?}"
            ))))
        }
    };
    // Drain any body so the TCP stream is left in a known state.
    let mut content_length = 0usize;
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(BadRequest::status(413, "request body too large")));
    }
    if content_length > 0 {
        let mut sink = vec![0u8; content_length];
        reader.read_exact(&mut sink)?;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path);
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k), percent_decode(v)));
        }
    }
    Ok(Ok(Request {
        method,
        path,
        query,
    }))
}

/// Decode `%XX` sequences and `+`-as-space, the two encodings query strings
/// carry. Bad escapes pass through verbatim (they will fail downstream
/// validation with a readable message instead of a decoding panic).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).unwrap_or_default();
                match (hex_val(hex.first()), hex_val(hex.get(1))) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(c @ b'0'..=b'9') => Some(c - b'0'),
        Some(c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length JSON response and flush it.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write a JSON error response: `{"error": message}`.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    write_json(
        stream,
        status,
        &format!("{{\"error\":{}}}", crate::json::string(message)),
    )
}

// --- chunked (streaming) responses -------------------------------------
//
// The anytime endpoint's channel: `Transfer-Encoding: chunked`, one
// complete newline-terminated JSON document per chunk, flushed as it
// happens so the client sees checkpoints live. These are free functions
// (not a writer struct) so the streaming callback can lazily start the
// response on its first checkpoint while the surrounding handler retains
// use of the stream afterwards. A write error means the client went away,
// which the caller turns into an early stop.

/// Send the streaming response head and switch the connection to chunked
/// mode.
pub fn chunk_begin(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Send `line` plus a trailing newline as one chunk and flush.
pub fn chunk_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    let payload = format!("{line}\n");
    write!(stream, "{:x}\r\n", payload.len())?;
    stream.write_all(payload.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Send the terminating zero-length chunk.
pub fn chunk_finish(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("t5.Country"), "t5.Country");
        assert_eq!(percent_decode("%21%28t1.A%3Dt2.A%29"), "!(t1.A=t2.A)");
        // Bad escapes pass through instead of panicking.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
