//! T-REx as a service: a long-lived HTTP/JSON explanation server.
//!
//! [`serve`] binds a `std::net::TcpListener`, wraps one [`trex::Session`]
//! in an `RwLock`, and answers requests on a bounded thread pool — no
//! external dependencies. Endpoints (all inputs via query string):
//!
//! | method | path           | effect                                           |
//! |--------|----------------|--------------------------------------------------|
//! | GET    | `/health`      | liveness probe                                   |
//! | GET    | `/violations`  | current denial-constraint violations             |
//! | POST   | `/repair`      | run the repair algorithm, return the change set  |
//! | GET    | `/explain`     | constraint or cell Shapley explanation           |
//! | POST   | `/cell`        | mutate a table cell (flushes the oracle cache)   |
//! | POST   | `/constraint`  | add or replace a denial constraint               |
//! | DELETE | `/constraint`  | remove a denial constraint by name               |
//!
//! Every endpoint accepts the CLI's execution knobs (`threads`,
//! `schedule`, `oracle-cap`, `oracle-batch`, `seed`, `prune-redundant`)
//! as query parameters, validated through the same
//! `trex_shapley::exec_config_from_knobs` path as the CLI flags.
//!
//! The headline is the **anytime** mode of `GET /explain?kind=cells`:
//! adding `budget_ms=N` (or `stream=1`) switches the response to
//! `Transfer-Encoding: chunked` NDJSON — one JSON line per sampling
//! checkpoint carrying the running Shapley estimates with standard errors
//! and 95% confidence intervals, then one `"final":true` line whose
//! payload is byte-identical to what the batch endpoint would return for
//! the same `(seed, threads, schedule)` when the run completes within
//! budget. The deadline cuts sampling off at the next checkpoint, and a
//! disconnected client cancels the walk instead of burning the budget.
//!
//! Concurrent explanation requests share the session's bounded
//! `OracleCache`, so coalition repairs computed for one client are hits
//! for the next.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use trex::Session;

pub mod http;
pub mod json;
mod routes;

use routes::ServerState;
pub use routes::DEFAULT_SAMPLES;

/// How the server binds and how many requests it works on at once.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering requests. Each in-flight explanation may
    /// additionally use its request's `threads` knob internally.
    pub http_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
        }
    }
}

/// Connections queued beyond the workers before the server starts
/// shedding load with 503s.
const MAX_PENDING: usize = 1024;

struct WorkQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<WorkQueue>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// `http://host:port` for this server.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting, finish queued work, and join every thread.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the server stops (it never does on its own) — the CLI's
    /// foreground mode.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start serving `session` per `config`. Returns once the listener is
/// bound; requests are handled on background threads until the handle is
/// shut down or dropped.
pub fn serve(session: Session, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        session: RwLock::new(session),
    });
    let queue = Arc::new(WorkQueue {
        pending: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<JoinHandle<()>> = (0..config.http_threads.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("trex-http-{i}"))
                .spawn(move || worker_loop(&state, &queue, &stop))
                .expect("spawn http worker")
        })
        .collect();

    let accept = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("trex-accept".to_string())
            .spawn(move || accept_loop(&listener, &queue, &stop))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        workers,
        queue,
    })
}

fn accept_loop(listener: &TcpListener, queue: &WorkQueue, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let mut pending = queue.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending.len() >= MAX_PENDING {
            drop(pending);
            // Shed load without involving a worker: the client gets a
            // clear 503 instead of a timeout.
            let _ = stream.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\ncontent-length: 26\r\nconnection: close\r\n\r\n{\"error\":\"server is busy\"}",
            );
            continue;
        }
        pending.push_back(stream);
        drop(pending);
        queue.ready.notify_one();
    }
}

fn worker_loop(state: &ServerState, queue: &WorkQueue, stop: &AtomicBool) {
    loop {
        let stream = {
            let mut pending = queue.pending.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = pending.pop_front() {
                    break s;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                pending = queue.ready.wait(pending).unwrap_or_else(|e| e.into_inner());
            }
        };
        routes::handle_connection(state, stream);
    }
}
