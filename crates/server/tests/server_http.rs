//! End-to-end tests over real sockets: a `trex-server` instance serving
//! the La Liga fixture, exercised by a hand-rolled HTTP client (the same
//! no-dependency discipline as the server itself).

use std::io::{Read, Write};
use std::net::TcpStream;
use trex::Session;
use trex_datagen::laliga;
use trex_server::{json, serve, ServerConfig, ServerHandle};

fn start_server() -> ServerHandle {
    let table = laliga::dirty_table();
    let session = Session::new(Box::new(laliga::algorithm1()), table, laliga::constraints());
    serve(session, &ServerConfig::default()).expect("bind server")
}

/// One full request/response cycle: returns (status, headers, body).
fn request(handle: &ServerHandle, method: &str, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        decode_chunked(body)
    } else {
        body.to_string()
    };
    (status, head.to_string(), body)
}

fn get(handle: &ServerHandle, target: &str) -> (u16, String) {
    let (status, _, body) = request(handle, "GET", target);
    (status, body)
}

/// Decode a chunked transfer-encoded body back to the raw payload.
fn decode_chunked(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip payload + CRLF
    }
    out
}

#[test]
fn health_answers_ok() {
    let server = start_server();
    let (status, body) = get(&server, "/health");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}");
}

#[test]
fn violations_render_as_valid_json() {
    let server = start_server();
    let (status, body) = get(&server, "/violations");
    assert_eq!(status, 200);
    json::validate(&body).expect("violations response is valid JSON");
    // The dirty fixture violates its constraints; rows are 1-based labels.
    assert!(body.contains("\"count\":"));
    assert!(body.contains("\"constraint\":"));
    assert!(!body.contains("\"count\":0,"));
}

#[test]
fn constraint_explanation_matches_direct_session() {
    let table = laliga::dirty_table();
    let cell = laliga::cell_of_interest(&table);
    let session = Session::new(
        Box::new(laliga::algorithm1()),
        table.clone(),
        laliga::constraints(),
    );
    let direct = session.explain_constraints(cell).expect("direct explain");

    let server = serve(session, &ServerConfig::default()).expect("bind");
    let (status, body) = get(&server, "/explain?kind=constraints&cell=t5.Country");
    assert_eq!(status, 200);
    json::validate(&body).expect("constraint explanation is valid JSON");
    // The exact rationals from the paper's worked example survive the wire.
    for (label, value) in &direct.exact {
        let fragment = format!(
            "{{\"label\":{},\"value\":{}}}",
            json::string(label),
            json::string(&value.to_string())
        );
        assert!(body.contains(&fragment), "missing {fragment} in {body}");
    }
}

#[test]
fn batch_cell_explanation_is_valid_and_deterministic() {
    let server = start_server();
    let target = "/explain?cell=t5.Country&samples=200&seed=7&threads=2&schedule=player";
    let (status, first) = get(&server, target);
    assert_eq!(status, 200);
    json::validate(&first).expect("cell explanation is valid JSON");
    assert!(first.contains("\"ranking\":["));
    // Same knobs, second request: byte-identical (and a cache hit inside).
    let (_, second) = get(&server, target);
    assert_eq!(first, second);
}

#[test]
fn anytime_stream_lines_are_valid_and_final_matches_batch() {
    let server = start_server();
    let knobs = "cell=t5.Country&samples=200&seed=7&threads=2&schedule=player";
    let (status, head, stream_body) = request(
        &server,
        "GET",
        &format!("/explain?{knobs}&stream=1&checkpoint=50"),
    );
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "stream must be chunked: {head}"
    );

    let lines: Vec<&str> = stream_body.lines().collect();
    assert!(
        lines.len() >= 2,
        "expected checkpoints + final: {stream_body}"
    );
    for line in &lines {
        json::validate(line).unwrap_or_else(|e| panic!("bad stream line {line}: {e}"));
        // Finite estimates only: a NaN/inf would serialize as null.
        assert!(!line.contains("null"), "non-finite value in {line}");
    }
    let (checkpoints, final_line) = lines.split_at(lines.len() - 1);
    for line in checkpoints {
        assert!(line.starts_with("{\"final\":false,"), "{line}");
        assert!(line.contains("\"estimates\":["));
        assert!(line.contains("\"ci95\":"));
    }
    let final_line = final_line[0];
    assert!(final_line.starts_with("{\"final\":true,\"finished\":true,"));

    // The determinism contract: the final line's payload is byte-identical
    // to the batch endpoint under the same (seed, threads, schedule).
    let (_, batch) = get(&server, &format!("/explain?{knobs}"));
    let payload = batch
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .expect("batch body is an object");
    assert!(
        final_line.contains(payload),
        "final stream line must embed the batch payload\nfinal: {final_line}\nbatch: {payload}"
    );
}

#[test]
fn zero_budget_stream_still_answers_with_a_final_line() {
    let server = start_server();
    let (status, _, body) = request(
        &server,
        "GET",
        "/explain?cell=t5.Country&samples=400&seed=3&budget_ms=0",
    );
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    let last = lines.last().expect("at least the final line");
    json::validate(last).expect("final line is valid JSON");
    assert!(
        last.starts_with("{\"final\":true,\"finished\":false,"),
        "{last}"
    );
}

#[test]
fn estimate_serialization_pins_finite_stats_form() {
    // Satellite: the serialized estimate form is pinned — degenerate
    // single-sample stats (variance clamp) must yield "std_error":0.0,
    // never null/NaN, and the JSON shape is exactly this.
    let server = start_server();
    let (status, _, body) = request(
        &server,
        "GET",
        "/explain?cell=t5.Country&samples=1&seed=1&stream=1&checkpoint=1",
    );
    assert_eq!(status, 200);
    for line in body.lines() {
        json::validate(line).expect("valid JSON");
        assert!(
            !line.contains("null"),
            "degenerate stats must stay finite: {line}"
        );
    }
    assert!(
        body.contains("\"std_error\":0.0"),
        "single-sample std_error serializes as 0.0: {body}"
    );
}

#[test]
fn mutations_over_http_keep_explanations_fresh() {
    // Satellite: mutate-then-re-explain through the HTTP surface. Removing
    // C3 changes the constraint game exactly as in the paper's example —
    // the stale cached answers must not survive the mutation.
    let server = start_server();
    let (_, before) = get(&server, "/explain?kind=constraints&cell=t5.Country");
    assert!(before.contains("\"value\":\"2/3\""), "{before}");

    let (status, _, body) = request(&server, "DELETE", "/constraint?name=C3");
    assert_eq!(status, 200, "{body}");

    let (_, after) = get(&server, "/explain?kind=constraints&cell=t5.Country");
    assert!(
        after.contains("\"value\":\"1/2\""),
        "post-removal exact values must be fresh: {after}"
    );
    assert!(!after.contains("\"label\":\"C3\""));
}

#[test]
fn cell_mutation_roundtrip() {
    let server = start_server();
    let (status, _, body) = request(&server, "POST", "/cell?cell=t1.Place&value=99");
    assert_eq!(status, 200, "{body}");
    json::validate(&body).expect("valid JSON");
    assert!(body.contains("\"value\":\"99\""));
    // The change is visible to subsequent reads of the shared session.
    let (_, _, again) = request(&server, "POST", "/cell?cell=t1.Place&value=77");
    assert!(again.contains("\"previous\":\"99\""), "{again}");
}

#[test]
fn constraint_upsert_roundtrip() {
    let server = start_server();
    let (status, _, body) = request(
        &server,
        "POST",
        "/constraint?name=C9&dc=%21(t1.Team%3Dt2.Team)",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"name\":\"C9\""));
    let (status, _, removed) = request(&server, "DELETE", "/constraint?name=C9");
    assert_eq!(status, 200, "{removed}");
    assert!(removed.contains("\"removed\":\"C9\""));
}

#[test]
fn bad_requests_get_pinned_errors() {
    let server = start_server();

    // Unknown endpoint and wrong method.
    let (status, body) = get(&server, "/nope");
    assert_eq!(status, 404, "{body}");
    let (status, _, body) = request(&server, "POST", "/violations");
    assert_eq!(status, 405, "{body}");

    // Unknown query parameter (typo protection).
    let (status, body) = get(&server, "/explain?cell=t5.Country&shedule=player");
    assert_eq!(status, 400);
    assert!(body.contains("unknown parameter \\\"shedule\\\""), "{body}");

    // Exec knobs validate through the shared CLI path.
    let (status, body) = get(&server, "/explain?cell=t5.Country&schedule=bogus");
    assert_eq!(status, 400);
    assert!(body.contains("schedule"), "{body}");

    // Missing and malformed cells.
    let (status, body) = get(&server, "/explain");
    assert_eq!(status, 400);
    assert!(
        body.contains("missing required parameter \\\"cell\\\""),
        "{body}"
    );
    let (status, body) = get(&server, "/explain?cell=t999.Country");
    assert_eq!(status, 400);
    assert!(body.contains("out of range"), "{body}");

    // Satellite: oracle-batch with no backend attached is an error on the
    // server API (the CLI merely warns), with the one shared message.
    let (status, body) = get(&server, "/explain?cell=t5.Country&oracle-batch=16");
    assert_eq!(status, 400);
    assert!(
        body.contains("no oracle backend is attached"),
        "must reuse ExecConfig::ORACLE_BATCH_WITHOUT_BACKEND: {body}"
    );
}

#[test]
fn concurrent_clients_share_one_session() {
    let server = start_server();
    let url: Vec<String> = (0..3)
        .map(|seed| {
            format!("/explain?cell=t5.Country&samples=120&seed={seed}&threads=2&schedule=player")
        })
        .collect();
    // Solo answers first, then the same requests hammered concurrently.
    let solo: Vec<String> = url.iter().map(|u| get(&server, u).1).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let url = &url[i % url.len()];
                let server = &server;
                scope.spawn(move || get(server, url).1)
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let body = h.join().expect("client thread");
            assert_eq!(
                body,
                solo[i % solo.len()],
                "request {i} must be bit-identical"
            );
        }
    });
}
