//! Experiment E6: exact Shapley computation is exponential in the number of
//! players, permutation sampling is linear in the sample count — the
//! asymmetry that motivates the paper's two-solver design ("with DCs the
//! naïve approach is feasible… the number of cells can be very large, so
//! T-REx uses a sampling algorithm", §2.3).
//!
//! Series:
//! * `exact/n` — subset enumeration over random monotone binary games,
//!   n ∈ {4, 8, 12, 16} (expect ~2^n growth);
//! * `rational/n` — the exact rational solver at the same sizes;
//! * `sampling/m` — per-player sampling at n = 40, m ∈ {100, 1k, 10k}
//!   (expect linear growth in m).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trex_bench::RandomBinaryGame;
use trex_shapley::{estimate_player, shapley_exact, shapley_exact_rational, SamplingConfig};

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_exact");
    for n in [4usize, 8, 12, 16] {
        let game = RandomBinaryGame::new(n, 3, 7);
        group.bench_with_input(BenchmarkId::new("float", n), &game, |b, g| {
            b.iter(|| shapley_exact(black_box(g)).unwrap())
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("rational", n), &game, |b, g| {
                b.iter(|| shapley_exact_rational(black_box(g)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_sampling");
    let game = RandomBinaryGame::new(40, 5, 11);
    for m in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                estimate_player(
                    black_box(&game),
                    0,
                    SamplingConfig {
                        samples: m,
                        seed: 3,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_sampling);
criterion_main!(benches);
