//! Ablation A3: plain permutation sampling vs stratified vs antithetic
//! variants, time per equal sample budget — serial and on the parallel
//! engine. (The variance comparison — the interesting half — is printed by
//! `exp_convergence`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trex_bench::RandomBinaryGame;
use trex_shapley::{
    estimate_player, estimate_player_antithetic, estimate_player_stratified, parallel,
    SamplingConfig,
};

fn bench_variants(c: &mut Criterion) {
    let game = RandomBinaryGame::new(24, 4, 5);
    let mut group = c.benchmark_group("sampling_variants");
    // Equalized budgets: plain m = 24·s, stratified s per stratum (24
    // strata), antithetic m/2 pairs.
    let s = 50usize;
    let m = 24 * s;
    group.bench_with_input(BenchmarkId::new("plain", m), &m, |b, &m| {
        b.iter(|| {
            estimate_player(
                black_box(&game),
                0,
                SamplingConfig {
                    samples: m,
                    seed: 9,
                },
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("stratified", s), &s, |b, &s| {
        b.iter(|| estimate_player_stratified(black_box(&game), 0, s, 9))
    });
    group.bench_with_input(BenchmarkId::new("antithetic", m / 2), &(m / 2), |b, &p| {
        b.iter(|| estimate_player_antithetic(black_box(&game), 0, p, 9))
    });
    group.finish();
}

/// The same variants lifted onto the parallel engine: equal budgets, worker
/// counts 1/2/4. At 1 worker this measures the (small) scope overhead over
/// the serial rows above; past the hardware thread count extra workers only
/// re-chunk.
fn bench_variants_parallel(c: &mut Criterion) {
    let game = RandomBinaryGame::new(24, 4, 5);
    let mut group = c.benchmark_group("sampling_variants_parallel");
    let s = 50usize;
    let m = 24 * s;
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("stratified", threads),
            &threads,
            |b, &t| b.iter(|| parallel::estimate_player_stratified(black_box(&game), 0, s, 9, t)),
        );
        group.bench_with_input(
            BenchmarkId::new("antithetic", threads),
            &threads,
            |b, &t| {
                b.iter(|| parallel::estimate_player_antithetic(black_box(&game), 0, m / 2, 9, t))
            },
        );
        group.bench_with_input(BenchmarkId::new("adaptive", threads), &threads, |b, &t| {
            b.iter(|| {
                parallel::estimate_player_adaptive(black_box(&game), 0, 0.02, 1.96, 128, m, 9, t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_variants_parallel);
criterion_main!(benches);
