//! Ablation A1: oracle memoization. A full constraint explanation runs the
//! exact float solver *and* the rational cross-check — with the cache the
//! second solve is free; without it every coalition repairs twice.
//!
//! The `oracle_shards` group is the contention sweep behind the
//! `ShardedOracle::DEFAULT_SHARDS` choice: hot cache hits hammered from
//! every hardware thread at 1/4/16/64 shards. One shard serializes all
//! workers on a single mutex; the sweep shows where adding shards stops
//! paying (16 on every machine profiled so far — see `with_config`'s docs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trex::ConstraintGame;
use trex_constraints::{parse_dcs, DenialConstraint};
use trex_datagen::laliga;
use trex_repair::{RepairAlgorithm, RepairResult, ShardedOracle};
use trex_shapley::{available_threads, shapley_exact, shapley_exact_rational};
use trex_table::{AttrId, CellRef, Table, TableBuilder, Value};

fn bench_oracle_cache(c: &mut Criterion) {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);

    let mut group = c.benchmark_group("oracle_cache");
    group.bench_function("cached_double_solve", |b| {
        b.iter(|| {
            let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
            let f = shapley_exact(black_box(&game)).unwrap();
            let r = shapley_exact_rational(black_box(&game)).unwrap();
            (f, r)
        })
    });
    group.bench_function("uncached_double_solve", |b| {
        b.iter(|| {
            let game = ConstraintGame::without_cache(&alg, &dcs, &dirty, cell, Value::str("Spain"));
            let f = shapley_exact(black_box(&game)).unwrap();
            let r = shapley_exact_rational(black_box(&game)).unwrap();
            (f, r)
        })
    });
    group.finish();
}

/// A no-op-style repairer for the contention sweep: repairs (0,0) whenever
/// any constraint is passed. Cheap on purpose — the sweep must measure lock
/// contention, not repair time.
struct TinyRepair;

impl RepairAlgorithm for TinyRepair {
    fn name(&self) -> &str {
        "tiny"
    }
    fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        let mut clean = dirty.clone();
        if !dcs.is_empty() {
            clean.set(CellRef::new(0, AttrId(0)), Value::str("FIXED"));
        }
        RepairResult::from_tables(dirty, clean)
    }
}

/// The shard-count contention sweep: every hardware thread hammers a warm
/// cache (pure hits — the worst case for the shard locks, since nothing
/// amortizes the acquisition). The winner sets `DEFAULT_SHARDS`.
fn bench_oracle_shards(c: &mut Criterion) {
    let alg = TinyRepair;
    let tables: Vec<Table> = (0..64)
        .map(|i| {
            TableBuilder::new()
                .str_columns(["A"])
                .str_row([format!("v{i}").as_str()])
                .build()
        })
        .collect();
    let dcs = parse_dcs("C1: !(t1.A != t2.A)").unwrap();
    let cell = CellRef::new(0, AttrId(0));
    let workers = available_threads();
    let mut group = c.benchmark_group("oracle_shards");
    for shards in [1usize, 4, 16, 64] {
        let oracle = ShardedOracle::with_config(&alg, ShardedOracle::DEFAULT_CAPACITY, shards);
        // Warm every key so the measured loop is pure cache hits.
        for t in &tables {
            let _ = oracle.repairs_cell_to(&dcs, t, cell, &Value::str("FIXED"));
        }
        group.bench_function(format!("hits_{shards}_shards_{workers}_workers"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let oracle = &oracle;
                        let dcs = &dcs;
                        let tables = &tables;
                        scope.spawn(move || {
                            // Each worker walks the keys from its own offset
                            // so concurrent queries spread over the shards.
                            for i in 0..256usize {
                                let t = &tables[(w * 17 + i) % tables.len()];
                                black_box(oracle.repairs_cell_to(
                                    dcs,
                                    t,
                                    cell,
                                    &Value::str("FIXED"),
                                ));
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_cache, bench_oracle_shards);
criterion_main!(benches);
