//! Ablation A1: oracle memoization. A full constraint explanation runs the
//! exact float solver *and* the rational cross-check — with the cache the
//! second solve is free; without it every coalition repairs twice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trex::ConstraintGame;
use trex_datagen::laliga;
use trex_shapley::{shapley_exact, shapley_exact_rational};
use trex_table::Value;

fn bench_oracle_cache(c: &mut Criterion) {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);

    let mut group = c.benchmark_group("oracle_cache");
    group.bench_function("cached_double_solve", |b| {
        b.iter(|| {
            let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
            let f = shapley_exact(black_box(&game)).unwrap();
            let r = shapley_exact_rational(black_box(&game)).unwrap();
            (f, r)
        })
    });
    group.bench_function("uncached_double_solve", |b| {
        b.iter(|| {
            let game = ConstraintGame::without_cache(&alg, &dcs, &dirty, cell, Value::str("Spain"));
            let f = shapley_exact(black_box(&game)).unwrap();
            let r = shapley_exact_rational(black_box(&game)).unwrap();
            (f, r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_cache);
criterion_main!(benches);
