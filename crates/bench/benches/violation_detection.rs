//! Ablation A2: hash-partitioned vs nested-loop violation detection on
//! standings tables of growing size. The indexed path should win by a
//! growing factor (quadratic vs near-linear for selective join keys).
//! The thread-scaling group measures the parallel row-pair scan behind
//! `trex violations --threads` / `trex repair --threads`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trex_bench::standings_workload;
use trex_constraints::{
    find_all_violations_par, find_violations, find_violations_indexed, DenialConstraint,
};
use trex_table::Table;

fn resolved(table: &Table) -> Vec<DenialConstraint> {
    trex_datagen::soccer::soccer_constraints()
        .iter()
        .map(|d| d.resolved(table.schema()).unwrap())
        .collect()
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_detection");
    for rows in [48usize, 96, 192, 384] {
        let (table, _) = standings_workload(rows, 0.02, 3);
        let dcs = resolved(&table);
        group.throughput(Throughput::Elements(table.num_rows() as u64));
        group.bench_with_input(
            BenchmarkId::new("nested_loop", table.num_rows()),
            &table,
            |b, t| {
                b.iter(|| {
                    dcs.iter()
                        .map(|dc| find_violations(black_box(dc), black_box(t)).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed", table.num_rows()),
            &table,
            |b, t| {
                b.iter(|| {
                    dcs.iter()
                        .map(|dc| find_violations_indexed(black_box(dc), black_box(t)).len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

/// Thread scaling of the parallel scan at a fixed table size. Output is
/// identical to the serial scan at every worker count, so this group is
/// purely a wall-time measurement.
fn bench_detection_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_detection_threads");
    let (table, _) = standings_workload(384, 0.02, 3);
    let dcs = resolved(&table);
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("indexed_par", threads),
            &threads,
            |b, &t| b.iter(|| find_all_violations_par(black_box(&dcs), black_box(&table), t).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detection, bench_detection_parallel);
criterion_main!(benches);
