//! Experiment E5 (timing side): cost of the sampling estimator as the
//! sample count grows, on the paper's own cell game (La Liga table,
//! Algorithm 1, cell of interest t5[Country]). The error-vs-m curve itself
//! is produced by `cargo run -p trex-bench --bin exp_convergence`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trex::{CellGameMasked, CellGameSampled, MaskMode};
use trex_datagen::laliga;
use trex_shapley::{estimate_all_walk, estimate_player, SamplingConfig};
use trex_table::Value;

fn bench_cell_game_sampling(c: &mut Criterion) {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);

    let mut group = c.benchmark_group("cell_sampling_la_liga");
    group.sample_size(10);

    // Per-player replacement sampling (Example 2.5) for one tracked cell:
    // t5[League], located in the player list (which skips the cell of
    // interest).
    let sampled = CellGameSampled::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
    let league = dirty.schema().id("League");
    let league_player = sampled
        .players()
        .iter()
        .position(|c| *c == trex_table::CellRef::new(4, league))
        .expect("t5[League] is a player");
    for m in [50usize, 200, 800] {
        group.bench_with_input(
            BenchmarkId::new("replacement_one_player", m),
            &m,
            |b, &m| {
                b.iter(|| {
                    estimate_player(
                        black_box(&sampled),
                        league_player,
                        SamplingConfig {
                            samples: m,
                            seed: 1,
                        },
                    )
                })
            },
        );
    }

    // Permutation-walk estimation of all 35 players under masked semantics.
    let masked = CellGameMasked::new(
        &alg,
        &dcs,
        &dirty,
        cell,
        Value::str("Spain"),
        MaskMode::Null,
    );
    for m in [10usize, 40, 160] {
        group.bench_with_input(BenchmarkId::new("masked_walk_all", m), &m, |b, &m| {
            b.iter(|| {
                estimate_all_walk(
                    black_box(&masked),
                    SamplingConfig {
                        samples: m,
                        seed: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cell_game_sampling);
criterion_main!(benches);
