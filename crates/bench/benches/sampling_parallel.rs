//! Thread-scaling of the parallel permutation engine on the paper's own
//! cell game (la Liga table, Algorithm 1, cell of interest t5[Country]):
//! the same walk budget at 1, 2, 4, and 8 workers, plus the per-player
//! replacement estimator at 1 vs 4 workers. On a multi-core machine the
//! walk time should drop near-linearly until the hardware thread count;
//! `BENCH_convergence.json` (emitted by `exp_convergence --json`) records
//! the measured speedup over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trex::{CellGameMasked, CellGameSampled, MaskMode};
use trex_datagen::laliga;
use trex_shapley::{parallel, ParallelConfig};
use trex_table::Value;

fn bench_parallel_sampling(c: &mut Criterion) {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);

    let mut group = c.benchmark_group("sampling_parallel_la_liga");
    group.sample_size(10);

    // Walk estimation of all 35 players under masked semantics, split
    // across workers. The game (and so the oracle cache) is rebuilt every
    // iteration: a shared warm cache would turn every query into a hit and
    // the bench would measure mutex overhead instead of repair-evaluation
    // scaling (exp_convergence::timed_walk makes the same choice).
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("masked_walk_160", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let masked = CellGameMasked::new(
                        &alg,
                        &dcs,
                        &dirty,
                        cell,
                        Value::str("Spain"),
                        MaskMode::Null,
                    );
                    parallel::estimate_all_walk(
                        black_box(&masked),
                        ParallelConfig::new(160, 1, threads),
                    )
                })
            },
        );
    }

    // Replacement-semantics estimation (Example 2.5) of all players: the
    // uncached game, where every sample pays a full repair — the workload
    // the parallel engine exists for.
    let sampled = CellGameSampled::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("replacement_all_20", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    parallel::estimate_all(black_box(&sampled), ParallelConfig::new(20, 1, threads))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sampling);
criterion_main!(benches);
