//! Repair-engine cost (supports experiment A4): wall time of each engine on
//! standings workloads of growing size, fixed 2% dirt.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trex_bench::standings_workload;
use trex_repair::{FdChaseRepair, HolisticRepair, HoloCleanStyle, RepairAlgorithm};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_engines");
    group.sample_size(10);
    for rows in [48usize, 96, 192] {
        let (dirty, dcs) = standings_workload(rows, 0.02, 13);
        group.throughput(Throughput::Elements(dirty.num_rows() as u64));
        let engines: Vec<Box<dyn RepairAlgorithm>> = vec![
            Box::new(trex_datagen::soccer::soccer_algorithm1()),
            Box::new(HoloCleanStyle::new()),
            Box::new(FdChaseRepair::new()),
            Box::new(HolisticRepair::new()),
        ];
        for alg in engines {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), dirty.num_rows()),
                &dirty,
                |b, t| b.iter(|| alg.repair(black_box(&dcs), black_box(t))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
