//! Experiment E5: the sampling estimator converges to the exact Shapley
//! value at the Monte-Carlo rate (error ∝ 1/√m), the variance-reduced
//! variants (ablation A3) beat plain sampling at equal budget — and the
//! parallel permutation engine delivers the same workload faster.
//!
//! Ground truth comes from exact subset enumeration on a small cell game
//! (a 2×4 table: 7 player cells), so the error is against the *definition*,
//! not a long sampling run. The speedup section runs the paper's own la
//! Liga cell game (35 players) through the serial and parallel walk
//! estimators and reports wall time, throughput, and oracle hit rate.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_convergence`
//!
//! Flags (all optional):
//!   --samples N     permutation walks for the speedup section (default 2000)
//!   --threads N     parallel worker count; 0 = available parallelism (default)
//!   --max-m N       cap on the convergence table's sample sizes (default 32768)
//!   --json PATH     also write the machine-readable benchmark record
//!                   (the BENCH_convergence.json the CI bench-smoke job tracks)

use std::time::Instant;
use trex::{CellGameMasked, MaskMode};
use trex_constraints::parse_dcs;
use trex_datagen::laliga;
use trex_repair::{FixAction, OracleStats, Rule, RuleRepair};
use trex_shapley::{
    estimate_player, estimate_player_antithetic, estimate_player_stratified, parallel,
    resolve_threads, sampling, shapley_exact, ConvergenceTrace, Game, ParallelConfig,
    SamplingConfig,
};
use trex_table::{CellRef, TableBuilder, Value};

/// Minimal `--flag value` reader (the experiment binaries stay
/// dependency-free; rich parsing lives in the CLI crate). Unknown flags are
/// fatal: a typo in the CI bench-smoke command must fail the job, not
/// silently fall back to defaults and mislabel the perf trajectory.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    const KNOWN: [&'static str; 4] = ["--samples", "--threads", "--max-m", "--json"];

    fn parse() -> Flags {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            assert!(
                Self::KNOWN.contains(&flag.as_str()),
                "unknown flag {flag:?} (known: {})",
                Self::KNOWN.join(", ")
            );
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("{flag}: missing value"));
            assert!(
                !value.starts_with("--"),
                "{flag}: missing value (got flag {value:?})"
            );
            pairs.push((flag, value));
        }
        Flags { pairs }
    }

    fn get(&self, name: &str) -> Option<&str> {
        debug_assert!(Self::KNOWN.contains(&name));
        self.pairs
            .iter()
            .find(|(flag, _)| flag == name)
            .map(|(_, value)| value.as_str())
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name}: bad value {v:?}"))
            })
            .unwrap_or(default)
    }
}

/// One timed run of the la Liga walk estimator.
struct TimedRun {
    wall_ms: f64,
    samples_per_sec: f64,
    oracle: OracleStats,
    top_label: String,
    players: usize,
}

fn timed_walk(samples: usize, threads: usize) -> TimedRun {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let cell = laliga::cell_of_interest(&dirty);
    // A fresh game per run: the oracle cache must start cold so hit rates
    // and wall times are comparable across runs.
    let game = CellGameMasked::new(
        &alg,
        &dcs,
        &dirty,
        cell,
        Value::str("Spain"),
        MaskMode::Null,
    );
    let start = Instant::now();
    let estimates = if threads == 1 {
        sampling::estimate_all_walk(&game, SamplingConfig { samples, seed: 1 })
    } else {
        parallel::estimate_all_walk(&game, ParallelConfig::new(samples, 1, threads))
    };
    let wall = start.elapsed();
    let top = (0..Game::num_players(&game))
        .max_by(|a, b| estimates[*a].value.total_cmp(&estimates[*b].value))
        .map(|i| Game::player_label(&game, i))
        .unwrap_or_default();
    let wall_s = wall.as_secs_f64().max(1e-9);
    TimedRun {
        wall_ms: wall.as_secs_f64() * 1e3,
        samples_per_sec: samples as f64 / wall_s,
        oracle: game.oracle_stats(),
        top_label: top,
        players: Game::num_players(&game),
    }
}

fn main() {
    let flags = Flags::parse();
    let samples = flags.get_usize("--samples", 2000);
    let threads =
        resolve_threads(flags.get_usize("--threads", 0)).unwrap_or_else(|e| panic!("{e}"));
    let max_m = flags.get_usize("--max-m", 32_768);
    let json_path = flags.get("--json").map(str::to_string);

    // ---- Part 1: error-vs-m table on a small game with exact ground truth.
    let table = TableBuilder::new()
        .str_columns(["League", "Country", "City", "Pad"])
        .str_row(["L", "Spain", "Madrid", "x"])
        .str_row(["L", "España", "Madrid", "y"])
        .build();
    let dcs = parse_dcs(
        "C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
         C3: !(t1.League = t2.League & t1.Country != t2.Country)\n",
    )
    .unwrap();
    let alg = RuleRepair::new(vec![
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        ),
    ]);
    let cell = CellRef::new(1, table.schema().id("Country"));
    let game = CellGameMasked::new(
        &alg,
        &dcs,
        &table,
        cell,
        Value::str("Spain"),
        MaskMode::Null,
    );
    let exact = shapley_exact(&game).unwrap();
    let player = (0..Game::num_players(&game))
        .max_by(|a, b| exact[*a].total_cmp(&exact[*b]))
        .unwrap();
    println!(
        "tracked player: {} (exact Shapley {:.6})",
        Game::player_label(&game, player),
        exact[player]
    );
    println!();

    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "m", "plain", "err", "stratified", "err", "antithetic", "err"
    );
    let mut plain_trace = ConvergenceTrace::new(exact[player]);
    let n = Game::num_players(&game);
    for m in [32usize, 128, 512, 2048, 8192, 32768]
        .into_iter()
        .filter(|m| *m <= max_m)
    {
        // Average error over several seeds to smooth the table.
        let seeds = [1u64, 2, 3, 4, 5];
        let avg = |f: &dyn Fn(u64) -> f64| {
            let (mut est_sum, mut err_sum) = (0.0, 0.0);
            for &s in &seeds {
                let v = f(s);
                est_sum += v;
                err_sum += (v - exact[player]).abs();
            }
            (est_sum / seeds.len() as f64, err_sum / seeds.len() as f64)
        };
        let (p_est, p_err) = avg(&|s| {
            estimate_player(
                &game,
                player,
                SamplingConfig {
                    samples: m,
                    seed: s,
                },
            )
            .value
        });
        let (s_est, s_err) =
            avg(&|s| estimate_player_stratified(&game, player, (m / n).max(1), s).value);
        let (a_est, a_err) = avg(&|s| estimate_player_antithetic(&game, player, m / 2, s).value);
        // Track the seed-averaged |error| (recorded as exact + err so the
        // trace's abs_error equals the averaged error).
        plain_trace.record(m, exact[player] + p_err);
        println!(
            "{m:>8} | {p_est:>10.4} {p_err:>10.4} | {s_est:>10.4} {s_err:>10.4} | {a_est:>10.4} {a_err:>10.4}"
        );
    }
    println!();
    let slope = plain_trace.loglog_slope();
    if let Some(slope) = slope {
        println!("plain estimator log-log error slope: {slope:.3} (Monte-Carlo rate ≈ -0.5)");
    }

    // ---- Part 2: serial vs parallel walk estimation on the la Liga game.
    println!();
    println!("== la Liga cell game: {samples} permutation walks, serial vs {threads} thread(s) ==");
    let serial = timed_walk(samples, 1);
    let par = timed_walk(samples, threads);
    let speedup = serial.wall_ms / par.wall_ms.max(1e-9);
    println!(
        "serial:   {:>10.1} ms  {:>10.1} walks/s  oracle hit rate {:.3}",
        serial.wall_ms,
        serial.samples_per_sec,
        serial.oracle.hit_rate()
    );
    println!(
        "parallel: {:>10.1} ms  {:>10.1} walks/s  oracle hit rate {:.3}  (x{speedup:.2})",
        par.wall_ms,
        par.samples_per_sec,
        par.oracle.hit_rate()
    );
    println!(
        "top-ranked cell: {} (serial) / {} (parallel)",
        serial.top_label, par.top_label
    );

    // ---- Part 2b: the variance-reduced estimators on the parallel engine.
    // Same ground-truth game as Part 1; estimates differ across thread
    // counts (each worker draws its own stream) but stay unbiased. With
    // --threads 1 each call replays its *serial* counterpart
    // (estimate_player_stratified / _antithetic / _adaptive at this seed)
    // bit for bit — the contract tests/parallel_equivalence.rs pins.
    println!();
    println!("== variance-reduced estimators on {threads} thread(s) (m = 2048 budget) ==");
    let m = 2048usize.min(max_m.max(n));
    let strat = trex_shapley::parallel::estimate_player_stratified(
        &game,
        player,
        (m / n).max(1),
        1,
        threads,
    );
    let anti = trex_shapley::parallel::estimate_player_antithetic(&game, player, m / 2, 1, threads);
    let (adapt, adapt_ok) = trex_shapley::parallel::estimate_player_adaptive(
        &game, player, 0.01, 1.96, 64, m, 1, threads,
    );
    println!(
        "stratified: {:+.4} (err {:.4}, {} samples)",
        strat.value,
        (strat.value - exact[player]).abs(),
        strat.samples
    );
    println!(
        "antithetic: {:+.4} (err {:.4}, {} samples)",
        anti.value,
        (anti.value - exact[player]).abs(),
        anti.samples
    );
    println!(
        "adaptive:   {:+.4} (err {:.4}, {} samples, converged: {adapt_ok})",
        adapt.value,
        (adapt.value - exact[player]).abs(),
        adapt.samples
    );

    // The all-player drivers over the whole ground-truth game, on the
    // schedule `auto` would pick for this shape (player-sharded output is
    // identical to the serial ladder loop at any thread count).
    let schedule = trex_shapley::Schedule::auto(n, threads);
    let max_err = |ests: &[trex_shapley::Estimate]| {
        ests.iter()
            .zip(&exact)
            .map(|(e, x)| (e.value - x).abs())
            .fold(0.0f64, f64::max)
    };
    let all_strat = trex_shapley::parallel::estimate_all_stratified(
        &game,
        (m / n).max(1),
        1,
        threads,
        schedule,
    );
    let all_anti =
        trex_shapley::parallel::estimate_all_antithetic(&game, m / 2, 1, threads, schedule);
    println!(
        "all-player drivers ({schedule} schedule, all {n} cells): \
         stratified max err {:.4}, antithetic max err {:.4}",
        max_err(&all_strat),
        max_err(&all_anti)
    );

    // ---- Part 3: the machine-readable record the CI perf trajectory reads.
    if let Some(path) = json_path {
        let slope_json = slope
            .map(|s| format!("{s:.6}"))
            .unwrap_or_else(|| "null".to_string());
        let json = format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"convergence\",\n",
                "  \"game\": \"laliga_cell_masked_null\",\n",
                "  \"players\": {players},\n",
                "  \"samples\": {samples},\n",
                "  \"threads\": {threads},\n",
                "  \"hardware_threads\": {hw},\n",
                "  \"serial\": {{ \"wall_ms\": {swall:.3}, \"samples_per_sec\": {srate:.1} }},\n",
                "  \"parallel\": {{ \"wall_ms\": {pwall:.3}, \"samples_per_sec\": {prate:.1} }},\n",
                "  \"speedup\": {speedup:.4},\n",
                "  \"oracle\": {{ \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {rate:.6} }},\n",
                "  \"loglog_slope\": {slope_json}\n",
                "}}\n",
            ),
            players = par.players,
            samples = samples,
            threads = threads,
            hw = parallel::available_threads(),
            swall = serial.wall_ms,
            srate = serial.samples_per_sec,
            pwall = par.wall_ms,
            prate = par.samples_per_sec,
            speedup = speedup,
            hits = par.oracle.hits,
            misses = par.oracle.misses,
            rate = par.oracle.hit_rate(),
            slope_json = slope_json,
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
