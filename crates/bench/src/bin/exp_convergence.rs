//! Experiment E5: the sampling estimator converges to the exact Shapley
//! value at the Monte-Carlo rate (error ∝ 1/√m), and the variance-reduced
//! variants (ablation A3) beat plain sampling at equal budget.
//!
//! Ground truth comes from exact subset enumeration on a small cell game
//! (a 2×4 table: 7 player cells), so the error is against the *definition*,
//! not a long sampling run.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_convergence`

use trex::{CellGameMasked, MaskMode};
use trex_constraints::parse_dcs;
use trex_repair::{FixAction, Rule, RuleRepair};
use trex_shapley::{
    estimate_player, estimate_player_antithetic, estimate_player_stratified, shapley_exact,
    ConvergenceTrace, Game, SamplingConfig,
};
use trex_table::{CellRef, TableBuilder, Value};

fn main() {
    // Small game with a known exact solution.
    let table = TableBuilder::new()
        .str_columns(["League", "Country", "City", "Pad"])
        .str_row(["L", "Spain", "Madrid", "x"])
        .str_row(["L", "España", "Madrid", "y"])
        .build();
    let dcs = parse_dcs(
        "C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
         C3: !(t1.League = t2.League & t1.Country != t2.Country)\n",
    )
    .unwrap();
    let alg = RuleRepair::new(vec![
        Rule::new(
            "C2",
            FixAction::MostCommonGiven {
                attr: "Country".into(),
                given: "City".into(),
            },
        ),
        Rule::new(
            "C3",
            FixAction::MostCommon {
                attr: "Country".into(),
            },
        ),
    ]);
    let cell = CellRef::new(1, table.schema().id("Country"));
    let game = CellGameMasked::new(
        &alg,
        &dcs,
        &table,
        cell,
        Value::str("Spain"),
        MaskMode::Null,
    );
    let exact = shapley_exact(&game).unwrap();
    let player = (0..Game::num_players(&game))
        .max_by(|a, b| exact[*a].total_cmp(&exact[*b]))
        .unwrap();
    println!(
        "tracked player: {} (exact Shapley {:.6})",
        Game::player_label(&game, player),
        exact[player]
    );
    println!();

    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "m", "plain", "err", "stratified", "err", "antithetic", "err"
    );
    let mut plain_trace = ConvergenceTrace::new(exact[player]);
    let n = Game::num_players(&game);
    for m in [32usize, 128, 512, 2048, 8192, 32768] {
        // Average error over several seeds to smooth the table.
        let seeds = [1u64, 2, 3, 4, 5];
        let avg = |f: &dyn Fn(u64) -> f64| {
            let (mut est_sum, mut err_sum) = (0.0, 0.0);
            for &s in &seeds {
                let v = f(s);
                est_sum += v;
                err_sum += (v - exact[player]).abs();
            }
            (est_sum / seeds.len() as f64, err_sum / seeds.len() as f64)
        };
        let (p_est, p_err) = avg(&|s| {
            estimate_player(
                &game,
                player,
                SamplingConfig {
                    samples: m,
                    seed: s,
                },
            )
            .value
        });
        let (s_est, s_err) =
            avg(&|s| estimate_player_stratified(&game, player, (m / n).max(1), s).value);
        let (a_est, a_err) = avg(&|s| estimate_player_antithetic(&game, player, m / 2, s).value);
        // Track the seed-averaged |error| (recorded as exact + err so the
        // trace's abs_error equals the averaged error).
        plain_trace.record(m, exact[player] + p_err);
        println!(
            "{m:>8} | {p_est:>10.4} {p_err:>10.4} | {s_est:>10.4} {s_err:>10.4} | {a_est:>10.4} {a_err:>10.4}"
        );
    }
    println!();
    if let Some(slope) = plain_trace.loglog_slope() {
        println!("plain estimator log-log error slope: {slope:.3} (Monte-Carlo rate ≈ -0.5)");
    }
}
