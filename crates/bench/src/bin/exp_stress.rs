//! Experiment E7: the end-to-end stress harness over the scenario corpus.
//!
//! Runs the full demo pipeline — generate → violations → repair → explain
//! — at configurable scale under a wall-clock budget, and records per-phase
//! wall time and rows/s, resident-set telemetry from `/proc/self/status`
//! (`VmRSS` per phase, `VmHWM` peak), the repair-oracle hit/eviction
//! counters of the explanation, and the thread/schedule knobs into a JSON
//! artifact next to the other `exp_*` outputs. This is the profile the
//! next perf PR targets: at a million rows it shows which hot path
//! dominates (the violation scan, the rule repair's column statistics, or
//! the coalition repairs behind the explanation).
//!
//! Run: `cargo run --release -p trex-bench --bin exp_stress -- --rows 1000000 --json exp_stress.json`
//!
//! Flags (all optional):
//!   --schema NAME     laliga | soccer | adult | sensor (default soccer —
//!                     the schema whose equality buckets stay bounded at
//!                     any scale; laliga/adult go quadratic, see the
//!                     scenario module docs)
//!   --rows N          target row count (default 1000000)
//!   --seed N          scenario seed (default 0)
//!   --rate F          total error rate, split across kinds with exact
//!                     accounting (default 0.00001; must dirty >= 1 cell)
//!   --skew F          Zipf exponent for sensor keys and duplicate donors
//!                     (default 1.2)
//!   --threads N       worker threads, 0 = all cores (default 0)
//!   --schedule S      player | budget | steal | auto (default auto)
//!   --oracle-cap N    bound the explain oracle to N entries (default:
//!                     oracle default; small values force evictions)
//!   --oracle-batch N  cap the coalition queries per oracle dispatch
//!                     (>= 1; default unbounded; identical output)
//!   --budget-secs N   wall-clock budget; exceeding it fails the run
//!                     (default 1800)
//!   --json PATH       write the machine-readable artifact

use std::time::Instant;
use trex::Session;
use trex_datagen::{generate_scenario, ErrorRates, ScenarioConfig, SchemaKind};
use trex_repair::RepairAlgorithm as _;
use trex_shapley::{parallel, resolve_threads, ExecConfig, Schedule};
use trex_table::EncodedTable;

struct StressArgs {
    schema: SchemaKind,
    rows: usize,
    seed: u64,
    rate: f64,
    skew: f64,
    threads: usize,
    schedule: Option<Schedule>,
    schedule_name: String,
    oracle_cap: Option<usize>,
    oracle_batch: Option<usize>,
    budget_secs: u64,
    json: Option<String>,
}

/// Minimal flag reader in the `exp_scaling` style (the experiment binaries
/// stay dependency-free). Any unknown flag is fatal: a typo in the CI
/// command must fail the job, not silently mislabel the artifact.
fn parse_args() -> StressArgs {
    let mut out = StressArgs {
        schema: SchemaKind::Soccer,
        rows: 1_000_000,
        seed: 0,
        rate: 0.000_01,
        skew: 1.2,
        threads: 0,
        schedule: None,
        schedule_name: "auto".to_string(),
        oracle_cap: None,
        oracle_batch: None,
        budget_secs: 1800,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            let v = iter
                .next()
                .unwrap_or_else(|| panic!("{flag}: missing value"));
            assert!(!v.starts_with("--"), "{flag}: missing value");
            v
        };
        match flag.as_str() {
            "--schema" => out.schema = value().parse().expect("--schema"),
            "--rows" => out.rows = value().parse().expect("--rows"),
            "--seed" => out.seed = value().parse().expect("--seed"),
            "--rate" => out.rate = value().parse().expect("--rate"),
            "--skew" => out.skew = value().parse().expect("--skew"),
            "--threads" => out.threads = value().parse().expect("--threads"),
            "--schedule" => {
                out.schedule_name = value();
                out.schedule = match out.schedule_name.as_str() {
                    "auto" => None,
                    "player" => Some(Schedule::PlayerSharded),
                    "budget" => Some(Schedule::BudgetSplit),
                    "steal" => Some(Schedule::WorkStealing),
                    other => panic!("--schedule {other:?} (known: auto, player, budget, steal)"),
                };
            }
            "--oracle-cap" => out.oracle_cap = Some(value().parse().expect("--oracle-cap")),
            "--oracle-batch" => {
                let batch: usize = value().parse().expect("--oracle-batch");
                assert!(batch >= 1, "--oracle-batch must be >= 1");
                out.oracle_batch = Some(batch);
            }
            "--budget-secs" => out.budget_secs = value().parse().expect("--budget-secs"),
            "--json" => out.json = Some(value()),
            other => panic!(
                "unknown flag {other:?} (known: --schema --rows --seed --rate --skew \
                 --threads --schedule --oracle-cap --oracle-batch --budget-secs --json)"
            ),
        }
    }
    out
}

/// One `/proc/self/status` field in kB (`VmRSS`, `VmHWM`). `None` where
/// procfs is unavailable (non-Linux dev boxes) or the field is absent —
/// distinguishable from a genuine 0 kB reading, so the artifact records
/// `null` instead of a fake measurement.
fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            if let Some(rest) = rest.strip_prefix(':') {
                return rest.split_whitespace().next()?.parse().ok();
            }
        }
    }
    None
}

fn rss_mb() -> Option<f64> {
    Some(proc_status_kb("VmRSS")? as f64 / 1024.0)
}

fn peak_rss_mb() -> Option<f64> {
    Some(proc_status_kb("VmHWM")? as f64 / 1024.0)
}

/// `{x:.1}` for a present measurement, JSON `null` for an absent one.
fn mb_json(x: Option<f64>) -> String {
    x.map_or("null".to_string(), |v| format!("{v:.1}"))
}

/// One finished phase, as reported to stdout and the JSON artifact.
struct Phase {
    name: &'static str,
    wall_ms: f64,
    rows_per_sec: f64,
    rss_mb: Option<f64>,
    /// Extra JSON fields, pre-rendered as `"key": value` pairs.
    extra: Vec<String>,
}

fn finish_phase(name: &'static str, rows: usize, started: Instant, extra: Vec<String>) -> Phase {
    let wall = started.elapsed().as_secs_f64();
    let phase = Phase {
        name,
        wall_ms: wall * 1e3,
        rows_per_sec: rows as f64 / wall.max(1e-9),
        rss_mb: rss_mb(),
        extra,
    };
    println!(
        "{name:>12} {:>12.1} ms {:>14.0} rows/s {:>9} MB rss",
        phase.wall_ms,
        phase.rows_per_sec,
        phase
            .rss_mb
            .map_or("n/a".to_string(), |m| format!("{m:.1}")),
    );
    phase
}

fn main() {
    let args = parse_args();
    let threads = resolve_threads(args.threads).expect("--threads");
    println!(
        "== exp_stress: {} @ {} rows (seed {}, rate {}, skew {}, {} thread(s), schedule {}, budget {}s) ==",
        args.schema,
        args.rows,
        args.seed,
        args.rate,
        args.skew,
        threads,
        args.schedule_name,
        args.budget_secs,
    );
    let total_start = Instant::now();
    let mut phases: Vec<Phase> = Vec::new();

    // Phase 1: generate the scenario (clean table + injected errors +
    // constraints + schema-matched repairer).
    let mut config = ScenarioConfig::new(args.schema, args.rows, args.seed);
    config.error.rates = Some(ErrorRates::split(args.rate));
    config.error.duplicate_skew = args.skew;
    config.sensor.skew = args.skew;
    let started = Instant::now();
    let scenario = generate_scenario(&config);
    let rows = scenario.clean.num_rows();
    let cells = scenario.clean.num_cells();
    let injected = scenario.injection.truth.len();
    let fingerprint = scenario.fingerprint();
    phases.push(finish_phase(
        "datagen",
        rows,
        started,
        vec![format!("\"errors_injected\": {injected}")],
    ));
    assert!(
        injected > 0,
        "rate {} dirtied no cell of {} eligible — raise --rate or --rows",
        args.rate,
        cells,
    );

    // Dictionary telemetry (not a phase — the encode rides inside the
    // violation scan in production; this run surfaces its cost and the
    // per-column cardinalities the columnar core works with).
    let started = Instant::now();
    let encoded = EncodedTable::encode(&scenario.injection.dirty);
    let encode_ms = started.elapsed().as_secs_f64() * 1e3;
    let distinct = encoded.distinct_counts();
    println!("  dictionary {encode_ms:>10.1} ms encode, distinct per column {distinct:?}");

    // One execution configuration drives the whole pipeline: the repair
    // engine's violation scans, the session's detection, and the
    // explanation's sampling/oracle all read the same knobs.
    let mut cfg = ExecConfig::new().with_threads(threads);
    if let Some(s) = args.schedule {
        cfg = cfg.with_schedule(s);
    }
    if let Some(cap) = args.oracle_cap {
        cfg = cfg.with_oracle_cap(cap);
    }
    if let Some(batch) = args.oracle_batch {
        cfg = cfg.with_oracle_batch(batch);
    }

    // The session drives the remaining phases end to end, exactly like the
    // demo loop: detection and repair on the session's worker threads, the
    // explanation over the bounded sharded oracle.
    let repairer = scenario.repairer.clone().with_exec(&cfg);
    let mut session = Session::new(
        Box::new(repairer),
        scenario.injection.dirty.clone(),
        scenario.constraints.clone(),
    )
    .with_config(cfg);

    // Phase 2: violation detection (the input screen).
    let started = Instant::now();
    let violations = session.violations().expect("constraints resolve").len();
    phases.push(finish_phase(
        "violations",
        rows,
        started,
        vec![format!("\"violations\": {violations}")],
    ));
    assert!(violations > 0, "injected errors must violate something");

    // Phase 3: repair (the Repair button).
    let started = Instant::now();
    let repair = session.repair();
    let repaired = repair.changes.len();
    phases.push(finish_phase(
        "repair",
        rows,
        started,
        vec![format!("\"cells_repaired\": {repaired}")],
    ));
    assert!(
        repaired > 0,
        "the scenario repairer must change at least one cell"
    );

    // Phase 4: explain the first repaired cell (the Explain button,
    // constraint half — the solver that stays exact at any table size).
    let cell = repair.changes[0].cell;
    let started = Instant::now();
    let (explanation, oracle, batches) = session
        .explain_constraints_with_batch_stats(cell)
        .expect("a repaired cell explains");
    let top = explanation.ranking.top().expect("non-empty ranking");
    phases.push(finish_phase(
        "explain",
        rows,
        started,
        vec![
            format!("\"explained_cell\": \"{cell}\""),
            format!("\"top_constraint\": \"{}\"", top.label),
            format!(
                "\"oracle\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"batches\": {}, \"batched_queries\": {} }}",
                oracle.hits, oracle.misses, oracle.evictions, batches.batches, batches.queries
            ),
        ],
    ));

    let elapsed = total_start.elapsed().as_secs_f64();
    let within_budget = elapsed <= args.budget_secs as f64;
    let peak = peak_rss_mb();
    println!(
        "\ntotal {elapsed:.1}s of {}s budget ({}); peak rss {} MB; \
         top constraint {} for {cell}",
        args.budget_secs,
        if within_budget { "ok" } else { "EXCEEDED" },
        peak.map_or("n/a".to_string(), |m| format!("{m:.1}")),
        top.label,
    );

    if let Some(path) = &args.json {
        let phase_json: Vec<String> = phases
            .iter()
            .map(|p| {
                let mut fields = vec![
                    format!("\"phase\": \"{}\"", p.name),
                    format!("\"wall_ms\": {:.3}", p.wall_ms),
                    format!("\"rows_per_sec\": {:.1}", p.rows_per_sec),
                    format!("\"rss_mb\": {}", mb_json(p.rss_mb)),
                ];
                fields.extend(p.extra.iter().cloned());
                format!("    {{ {} }}", fields.join(", "))
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"stress\",\n",
                "  \"schema\": \"{schema}\",\n",
                "  \"rows_target\": {rows_target},\n",
                "  \"rows\": {rows},\n",
                "  \"cells\": {cells},\n",
                "  \"seed\": {seed},\n",
                "  \"rate\": {rate},\n",
                "  \"skew\": {skew},\n",
                "  \"errors_injected\": {injected},\n",
                "  \"fingerprint\": \"{fingerprint:016x}\",\n",
                "  \"threads\": {threads},\n",
                "  \"hardware_threads\": {hw},\n",
                "  \"schedule\": \"{schedule}\",\n",
                "  \"oracle_capacity\": {cap},\n",
                "  \"oracle_batch\": {batch},\n",
                "  \"budget_secs\": {budget},\n",
                "  \"elapsed_secs\": {elapsed:.3},\n",
                "  \"within_budget\": {within},\n",
                "  \"peak_rss_mb\": {peak},\n",
                "  \"dictionary\": {{ \"encode_ms\": {encode_ms:.3}, ",
                "\"distinct_counts\": [{distinct}] }},\n",
                "  \"phases\": [\n{phases}\n  ]\n",
                "}}\n",
            ),
            schema = args.schema,
            rows_target = args.rows,
            rows = rows,
            cells = cells,
            seed = args.seed,
            rate = args.rate,
            skew = args.skew,
            injected = injected,
            fingerprint = fingerprint,
            threads = threads,
            hw = parallel::available_threads(),
            schedule = args.schedule_name,
            cap = args
                .oracle_cap
                .map_or("null".to_string(), |c| c.to_string()),
            batch = args
                .oracle_batch
                .map_or("null".to_string(), |b| b.to_string()),
            budget = args.budget_secs,
            elapsed = elapsed,
            within = within_budget,
            peak = mb_json(peak),
            encode_ms = encode_ms,
            distinct = distinct
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            phases = phase_json.join(",\n"),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if !within_budget {
        eprintln!(
            "exp_stress: wall clock {elapsed:.1}s exceeded the {}s budget",
            args.budget_secs
        );
        std::process::exit(1);
    }
}
