//! Experiment E8: the §4 demo scenario, quantified — acting on the
//! top-ranked explanation (removing the culprit constraint) improves the
//! repair, measured by precision/recall/F1 against injected ground truth,
//! across several seeds.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_demo_scenario`

use trex::Session;
use trex_constraints::parse_dcs;
use trex_datagen::{errors, soccer};
use trex_repair::{score_repair, FixAction, Rule, RuleRepair};

fn main() {
    println!(
        "{:>5} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | culprit ranked 1st?",
        "seed", "errors", "prec", "recall", "F1", "prec'", "recall'", "F1'"
    );
    let mut culprit_top = 0usize;
    let runs = 8u64;
    for seed in 0..runs {
        let clean = soccer::generate_clean(&soccer::SoccerConfig {
            countries: 3,
            cities_per_country: 2,
            teams_per_city: 2,
            years: 2,
            seed: 50 + seed,
        });
        let injected = errors::inject_errors(
            &clean,
            &errors::ErrorConfig {
                rate: 0.04,
                kind_weights: [0, 0, 1, 0, 0],
                columns: vec!["Country".to_string()],
                seed: 900 + seed,
                ..Default::default()
            },
        );
        let dcs = parse_dcs(
            "C2: !(t1.City = t2.City & t1.Country != t2.Country)\n\
             C3: !(t1.League = t2.League & t1.Country != t2.Country)\n\
             B: !(t1.League = t2.League & t1.City != t2.City)\n",
        )
        .unwrap();
        let alg = RuleRepair::new(vec![
            Rule::new(
                "C2",
                FixAction::MostCommonGiven {
                    attr: "Country".into(),
                    given: "City".into(),
                },
            ),
            Rule::new(
                "C3",
                FixAction::MostCommonGiven {
                    attr: "Country".into(),
                    given: "League".into(),
                },
            ),
            Rule::new(
                "B",
                FixAction::MostCommon {
                    attr: "City".into(),
                },
            ),
        ]);
        let mut session = Session::new(Box::new(alg), injected.dirty.clone(), dcs);
        let before = session.repair();
        let qb = score_repair(&before.changes, &injected.truth);

        // Explain a bogus City repair, if any.
        let city_attr = injected.dirty.schema().id("City");
        let ranked_first = before
            .changes
            .iter()
            .map(|c| c.cell)
            .find(|c| c.attr == city_attr)
            .map(|bogus| {
                let explanation = session.explain_constraints(bogus).unwrap();
                explanation.ranking.top().unwrap().label == "B"
            })
            .unwrap_or(false);
        if ranked_first {
            culprit_top += 1;
        }

        session.remove_constraint("B");
        let after = session.repair();
        let qa = score_repair(&after.changes, &injected.truth);
        println!(
            "{:>5} {:>7} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} | {}",
            seed,
            injected.truth.len(),
            qb.precision(),
            qb.recall(),
            qb.f1(),
            qa.precision(),
            qa.recall(),
            qa.f1(),
            if ranked_first {
                "yes"
            } else {
                "n/a (no bogus repair)"
            }
        );
    }
    println!(
        "\nculprit constraint ranked first in {culprit_top}/{runs} runs with a bogus repair;\n\
         F1 after removal should dominate F1 before in every run."
    );
}
