//! Experiment E8: load test of the explanation service.
//!
//! Starts an in-process `trex-server` over a scenario-corpus table (or
//! targets an already-running one via `--addr`), hammers it with
//! concurrent clients mixing `/violations` reads with streamed anytime
//! `/explain` requests, checks every response — each streamed checkpoint
//! line must be a complete JSON document — and records throughput plus
//! p50/p99 latency per endpoint into a JSON artifact, which CI validates.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_load -- --json exp_load.json`
//!
//! Flags (all optional):
//!   --schema NAME     laliga | soccer | adult | sensor (default laliga)
//!   --rows N          scenario rows (non-laliga schemas; default 200)
//!   --seed N          scenario seed (default 0)
//!   --clients N       concurrent client threads (default 8)
//!   --requests N      requests per client (default 25)
//!   --samples N       sampling budget of each /explain (default 400)
//!   --budget-ms N     anytime budget per streamed /explain (default 250)
//!   --http-threads N  server worker threads (default 4; in-process only)
//!   --addr HOST:PORT  target an external server instead of starting one
//!   --json PATH       write the machine-readable artifact

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use trex::Session;
use trex_datagen::{generate_scenario, laliga, ScenarioConfig, SchemaKind};
use trex_repair::RepairAlgorithm as _;
use trex_server::{json, serve, ServerConfig};

struct LoadArgs {
    schema: SchemaKind,
    rows: usize,
    seed: u64,
    clients: usize,
    requests: usize,
    samples: usize,
    budget_ms: u64,
    http_threads: usize,
    addr: Option<String>,
    json: Option<String>,
}

/// Minimal flag reader in the `exp_stress` style (the experiment binaries
/// stay dependency-free). Any unknown flag is fatal: a typo in the CI
/// command must fail the job, not silently mislabel the artifact.
fn parse_args() -> LoadArgs {
    let mut out = LoadArgs {
        schema: SchemaKind::Laliga,
        rows: 200,
        seed: 0,
        clients: 8,
        requests: 25,
        samples: 400,
        budget_ms: 250,
        http_threads: 4,
        addr: None,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            let v = iter
                .next()
                .unwrap_or_else(|| panic!("{flag}: missing value"));
            assert!(!v.starts_with("--"), "{flag}: missing value");
            v
        };
        match flag.as_str() {
            "--schema" => out.schema = value().parse().expect("--schema"),
            "--rows" => out.rows = value().parse().expect("--rows"),
            "--seed" => out.seed = value().parse().expect("--seed"),
            "--clients" => out.clients = value().parse().expect("--clients"),
            "--requests" => out.requests = value().parse().expect("--requests"),
            "--samples" => out.samples = value().parse().expect("--samples"),
            "--budget-ms" => out.budget_ms = value().parse().expect("--budget-ms"),
            "--http-threads" => out.http_threads = value().parse().expect("--http-threads"),
            "--addr" => out.addr = Some(value()),
            "--json" => out.json = Some(value()),
            other => panic!(
                "unknown flag {other:?} (known: --schema --rows --seed --clients \
                 --requests --samples --budget-ms --http-threads --addr --json)"
            ),
        }
    }
    assert!(out.clients >= 1, "--clients must be >= 1");
    assert!(out.requests >= 1, "--requests must be >= 1");
    out
}

/// One raw HTTP request/response over a fresh connection. Returns
/// (status, body-with-chunked-decoded, stream-lines-if-chunked).
fn fetch(addr: &str, target: &str) -> (u16, String, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    if !head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        return (status, body.to_string(), Vec::new());
    }
    let mut payload = String::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        payload.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    let lines = payload.lines().map(str::to_string).collect();
    (status, payload, lines)
}

/// Latency percentile over a sorted sample (nearest-rank).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

struct EndpointStats {
    name: &'static str,
    count: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn summarize(name: &'static str, mut latencies_ms: Vec<f64>) -> EndpointStats {
    latencies_ms.sort_by(f64::total_cmp);
    EndpointStats {
        name,
        count: latencies_ms.len(),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    let args = parse_args();

    // The target: either an external server or an in-process one over the
    // requested scenario. The explained cell is always a cell the scenario
    // repairer actually changes, so /explain succeeds.
    let mut handle = None;
    let (addr, cell_spec) = match &args.addr {
        Some(addr) => (addr.clone(), "t5.Country".to_string()),
        None => {
            let (session, cell_spec) = if args.schema == SchemaKind::Laliga {
                let table = laliga::dirty_table();
                let cell = laliga::cell_of_interest(&table);
                let spec = format!("t{}.{}", cell.row + 1, table.schema().attr(cell.attr).name);
                let session =
                    Session::new(Box::new(laliga::algorithm1()), table, laliga::constraints());
                (session, spec)
            } else {
                let scenario =
                    generate_scenario(&ScenarioConfig::new(args.schema, args.rows, args.seed));
                let dirty = scenario.injection.dirty.clone();
                let repaired = scenario.repairer.repair(&scenario.constraints, &dirty);
                let cell = repaired
                    .changes
                    .first()
                    .expect("the scenario repairer changes at least one cell")
                    .cell;
                let spec = format!("t{}.{}", cell.row + 1, dirty.schema().attr(cell.attr).name);
                let session = Session::new(
                    Box::new(scenario.repairer.clone()),
                    dirty,
                    scenario.constraints.clone(),
                );
                (session, spec)
            };
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                http_threads: args.http_threads,
            };
            let h = serve(session, &config).expect("bind in-process server");
            let addr = h.addr().to_string();
            handle = Some(h);
            (addr, cell_spec)
        }
    };

    println!(
        "== exp_load: {} @ {addr} ({} client(s) x {} request(s), {} samples, {} ms budget) ==",
        args.schema, args.clients, args.requests, args.samples, args.budget_ms,
    );

    let stream_lines_total = AtomicUsize::new(0);
    let started = Instant::now();
    let (violation_lat, explain_lat): (Vec<f64>, Vec<f64>) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..args.clients)
            .map(|client| {
                let addr = &addr;
                let cell_spec = &cell_spec;
                let args = &args;
                let stream_lines_total = &stream_lines_total;
                scope.spawn(move || {
                    let mut violations = Vec::new();
                    let mut explains = Vec::new();
                    for r in 0..args.requests {
                        // 1-in-3 violations reads, the rest anytime streams —
                        // reads and streams interleave on the shared session.
                        if (client + r) % 3 == 0 {
                            let t = Instant::now();
                            let (status, body, _) = fetch(addr, "/violations");
                            violations.push(t.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(status, 200, "/violations: {body}");
                            json::validate(&body)
                                .unwrap_or_else(|e| panic!("/violations body: {e}"));
                        } else {
                            let seed = client * args.requests + r;
                            let target = format!(
                                "/explain?cell={cell_spec}&samples={}&seed={seed}&budget_ms={}",
                                args.samples, args.budget_ms,
                            );
                            let t = Instant::now();
                            let (status, body, lines) = fetch(addr, &target);
                            explains.push(t.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(status, 200, "{target}: {body}");
                            assert!(!lines.is_empty(), "{target}: empty stream");
                            for line in &lines {
                                json::validate(line)
                                    .unwrap_or_else(|e| panic!("bad stream line {line}: {e}"));
                            }
                            let last = lines.last().unwrap();
                            assert!(
                                last.starts_with("{\"final\":true,"),
                                "{target}: stream must end with the final line: {last}"
                            );
                            stream_lines_total.fetch_add(lines.len(), Ordering::Relaxed);
                        }
                    }
                    (violations, explains)
                })
            })
            .collect();
        let mut violations = Vec::new();
        let mut explains = Vec::new();
        for w in workers {
            let (v, e) = w.join().expect("client thread");
            violations.extend(v);
            explains.extend(e);
        }
        (violations, explains)
    });
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(h) = handle.take() {
        drop(h); // shut the in-process server down before reporting
    }

    let total_requests = violation_lat.len() + explain_lat.len();
    let requests_per_sec = total_requests as f64 / elapsed.max(1e-9);
    let stream_lines = stream_lines_total.load(Ordering::Relaxed);
    let stats = [
        summarize("violations", violation_lat),
        summarize("explain_stream", explain_lat),
    ];
    for s in &stats {
        println!(
            "{:>16} {:>6} request(s)  p50 {:>8.1} ms  p99 {:>8.1} ms  max {:>8.1} ms",
            s.name, s.count, s.p50_ms, s.p99_ms, s.max_ms
        );
    }
    println!(
        "\ntotal {total_requests} request(s) in {elapsed:.2}s = {requests_per_sec:.1} req/s; \
         {stream_lines} valid stream line(s)"
    );

    if let Some(path) = &args.json {
        let endpoints: Vec<String> = stats
            .iter()
            .map(|s| {
                format!(
                    "    {{ \"endpoint\": \"{}\", \"count\": {}, \"p50_ms\": {:.3}, \
                     \"p99_ms\": {:.3}, \"max_ms\": {:.3} }}",
                    s.name, s.count, s.p50_ms, s.p99_ms, s.max_ms
                )
            })
            .collect();
        let artifact = format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"load\",\n",
                "  \"schema\": \"{schema}\",\n",
                "  \"seed\": {seed},\n",
                "  \"clients\": {clients},\n",
                "  \"requests_per_client\": {per_client},\n",
                "  \"samples\": {samples},\n",
                "  \"budget_ms\": {budget},\n",
                "  \"http_threads\": {http_threads},\n",
                "  \"total_requests\": {total},\n",
                "  \"elapsed_secs\": {elapsed:.3},\n",
                "  \"requests_per_sec\": {rps:.1},\n",
                "  \"stream_lines\": {lines},\n",
                "  \"endpoints\": [\n{endpoints}\n  ]\n",
                "}}\n",
            ),
            schema = args.schema,
            seed = args.seed,
            clients = args.clients,
            per_client = args.requests,
            samples = args.samples,
            budget = args.budget_ms,
            http_threads = args.http_threads,
            total = total_requests,
            elapsed = elapsed,
            rps = requests_per_sec,
            lines = stream_lines,
            endpoints = endpoints.join(",\n"),
        );
        json::validate(&artifact).expect("the artifact itself must be valid JSON");
        std::fs::write(path, artifact).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
