//! Experiment A4: repair quality (precision / recall / F1 / detection) of
//! every engine on standings workloads across error rates — the comparison
//! a full-paper evaluation of the underlying repairers would report, and
//! the context for the demo's "improves the repair" claims.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_repair_quality`

use trex_datagen::{errors, soccer};
use trex_repair::{score_repair, FdChaseRepair, HolisticRepair, HoloCleanStyle, RepairAlgorithm};

fn main() {
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries: 4,
        cities_per_country: 3,
        teams_per_city: 2,
        years: 2,
        seed: 21,
    });
    let dcs = soccer::soccer_constraints();
    println!(
        "workload: {} rows × {} attrs; errors: out-of-domain + in-column swaps on Country/City",
        clean.num_rows(),
        clean.arity()
    );
    println!(
        "\n{:<24} {:>6} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "engine", "rate", "errors", "repaired", "prec", "recall", "F1", "detect"
    );

    for rate in [0.01f64, 0.03, 0.06] {
        let injected = errors::inject_errors(
            &clean,
            &errors::ErrorConfig {
                rate,
                kind_weights: [1, 0, 2, 0, 0],
                columns: vec!["Country".to_string(), "City".to_string()],
                seed: 100 + (rate * 1000.0) as u64,
                ..Default::default()
            },
        );
        let engines: Vec<Box<dyn RepairAlgorithm>> = vec![
            Box::new(soccer::soccer_algorithm1()),
            Box::new(HoloCleanStyle::new()),
            Box::new(FdChaseRepair::new()),
            Box::new(HolisticRepair::new()),
        ];
        for alg in engines {
            let result = alg.repair(&dcs, &injected.dirty);
            let q = score_repair(&result.changes, &injected.truth);
            println!(
                "{:<24} {:>6.2} {:>7} {:>10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                alg.name(),
                rate,
                injected.truth.len(),
                q.changed,
                q.precision(),
                q.recall(),
                q.f1(),
                q.detection_recall()
            );
        }
        println!();
    }
    println!("expected shape: all engines detect nearly all errors; value-exact");
    println!("recall is highest for the conditioned rule engine and holoclean-style,");
    println!("with fd-chase blind to non-FD constraints and holistic trading");
    println!("precision for minimality at higher rates.");
}
