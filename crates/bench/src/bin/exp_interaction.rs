//! Extension experiment X1: Shapley interaction indices and Banzhaf values
//! for the paper's constraint game.
//!
//! Example 2.3 explains *in prose* that C1 and C2 matter only "as a pair"
//! while C3 acts alone; the interaction index makes that machine-checkable:
//! `I(C1,C2) > 0` (complements), `I(C1,C3) < 0` (substitutes), and every
//! interaction with the dummy C4 is zero. Banzhaf values confirm the
//! ranking is not an artifact of Shapley's coalition-size weighting.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_interaction`

use trex::Explainer;
use trex_datagen::laliga;

fn main() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let ex = Explainer::new(&alg);
    let cell = laliga::cell_of_interest(&dirty);

    let shapley = ex.explain_constraints(&dcs, &dirty, cell).unwrap();
    let banzhaf = ex.constraint_banzhaf(&dcs, &dirty, cell).unwrap();
    let (labels, m) = ex.constraint_interactions(&dcs, &dirty, cell).unwrap();

    println!("constraint attribution for the repair of t5[Country] → Spain\n");
    println!("{:<5} {:>10} {:>10}", "DC", "Shapley", "Banzhaf");
    for l in &labels {
        println!(
            "{:<5} {:>10.4} {:>10.4}",
            l,
            shapley.ranking.get(l).unwrap().value,
            banzhaf.get(l).unwrap().value,
        );
    }

    println!("\npairwise Shapley interaction indices (+ complements, − substitutes):\n");
    print!("{:<5}", "");
    for l in &labels {
        print!("{l:>9}");
    }
    println!();
    for (i, l) in labels.iter().enumerate() {
        print!("{l:<5}");
        for (j, value) in m[i].iter().enumerate() {
            if i == j {
                print!("{:>9}", "·");
            } else {
                print!("{value:>9.4}");
            }
        }
        println!();
    }
    println!(
        "\nreading: I(C1,C2) = {:+.4} > 0 — the pair carries the C1∧C2 repair\n\
         route together (the paper: \"the contribution of C1 and C2, as a\n\
         pair, is half that of C3\"); I(C1,C3) = {:+.4} < 0 — C3 makes C1\n\
         redundant; C4 is a dummy with all-zero interactions.",
        m[0][1], m[0][2]
    );
    assert!(m[0][1] > 0.0 && m[0][2] < 0.0 && m[0][3] == 0.0);
}
