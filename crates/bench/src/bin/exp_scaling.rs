//! Experiment E6: wall-clock scaling of the two solvers — exact Shapley is
//! exponential in the player count (fine for constraint sets, "usually
//! small"), sampling is linear in m·players (the only option for cells) —
//! plus the thread-scaling of the parallel walk estimator (both work
//! schedules side by side) and of constraint violation detection (the
//! row-pair scan behind `trex violations` / `trex repair`).
//!
//! Run: `cargo run --release -p trex-bench --bin exp_scaling`
//!
//! Flags (all optional):
//!   --json PATH     also write the machine-readable scaling record (the
//!                   exp_scaling.json the CI bench-smoke job uploads as an
//!                   artifact next to bench_current.json)

use std::time::{Duration, Instant};
use trex::{ExecConfig, Explainer};
use trex_bench::RandomBinaryGame;
use trex_constraints::{
    find_all_violations_par, find_all_violations_par_pruned, generate_dcs, parse_dcs,
    statically_unviolable, DcGenConfig, DenialConstraint,
};
use trex_datagen::laliga;
use trex_repair::MockRemoteRepair;
use trex_shapley::{
    estimate_player, estimate_player_adaptive_rounds, parallel, player_seed, shapley_exact,
    Estimate, ParallelConfig, SamplingConfig, Schedule, StochasticGame,
};
use trex_table::{Table, TableBuilder};

/// A synthetic league table with planted conflicts: `rows` rows bucketed
/// into 60 teams (7 cities each, so every bucket violates the Team→City FD)
/// plus a sprinkling of Country disagreements.
fn synthetic_table(rows: usize) -> Table {
    let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
    for i in 0..rows {
        let team = format!("T{}", i % 60);
        let city = format!("C{}", i % 7);
        let country = if i % 97 == 0 { "X" } else { "Y" }.to_string();
        b = b.str_row([team.as_str(), city.as_str(), country.as_str()]);
    }
    b.build()
}

fn violation_dcs(table: &Table) -> Vec<DenialConstraint> {
    parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .unwrap()
    .into_iter()
    .map(|dc| dc.resolved(table.schema()).unwrap())
    .collect()
}

/// FNV-1a over the exact bits of an adaptive result set: the output
/// fingerprint CI compares between the stealing schedule and its serial
/// reference.
fn estimates_hash(results: &[(Estimate, bool)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (e, converged) in results {
        mix(&mut h, e.value.to_bits());
        mix(&mut h, e.std_dev.to_bits());
        mix(&mut h, e.samples as u64);
        mix(&mut h, u64::from(*converged));
    }
    h
}

/// Minimal `--json PATH` reader (the experiment binaries stay
/// dependency-free). Any other flag is fatal: a typo in the CI command must
/// fail the job, not silently mislabel the artifact.
fn json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.into_iter();
    let mut path = None;
    while let Some(flag) = iter.next() {
        assert!(flag == "--json", "unknown flag {flag:?} (known: --json)");
        let value = iter.next().expect("--json: missing value");
        assert!(!value.starts_with("--"), "--json: missing value");
        path = Some(value);
    }
    path
}

fn main() {
    let json_path = json_flag();
    println!("== exact subset enumeration: time vs players (2^n growth) ==");
    println!("{:>4} {:>12} {:>14}", "n", "coalitions", "time");
    for n in [4usize, 8, 12, 16, 20] {
        let game = RandomBinaryGame::new(n, 3, 7);
        let start = Instant::now();
        let phi = shapley_exact(&game).unwrap();
        let dt = start.elapsed();
        assert_eq!(phi.len(), n);
        println!("{n:>4} {:>12} {:>14.3?}", 1u64 << n, dt);
    }

    println!("\n== permutation sampling: time vs m (linear), n = 40 ==");
    println!("{:>8} {:>14} {:>14}", "m", "time", "time/sample");
    let game = RandomBinaryGame::new(40, 5, 11);
    for m in [1_000usize, 10_000, 100_000] {
        let start = Instant::now();
        let est = estimate_player(
            &game,
            0,
            SamplingConfig {
                samples: m,
                seed: 3,
            },
        );
        let dt = start.elapsed();
        println!("{m:>8} {:>14.3?} {:>14.1?}", dt, dt / m as u32);
        let _ = est;
    }

    println!(
        "\n== parallel walk estimation: time vs threads, both schedules (n = 40, m = 2000) =="
    );
    println!(
        "({} hardware thread(s) available; past that, extra workers only re-chunk)",
        parallel::available_threads()
    );
    println!("(budget-split: deterministic per (seed, threads); player-sharded:");
    println!(" identical to the serial estimator at every thread count. The sharded");
    println!(" walk replays ~2n evaluations per walk vs the serial n+1, so on a");
    println!(" cheap uncached game like this one budget-split wins on raw time;");
    println!(" player-sharding pays off when evaluations are repair-oracle calls)");
    println!(
        "{:>8} {:>14} {:>10} {:>14} {:>10}",
        "threads", "budget", "speedup", "player", "speedup"
    );
    let game = RandomBinaryGame::new(40, 5, 11);
    let mut budget_base = None;
    let mut player_base = None;
    let mut sharded_reference: Option<Vec<trex_shapley::Estimate>> = None;
    let mut walk_rows: Vec<(usize, f64, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let ests = parallel::estimate_all_walk(&game, ParallelConfig::new(2000, 3, threads));
        let budget_dt = start.elapsed();
        assert_eq!(ests.len(), 40);
        let start = Instant::now();
        let sharded = parallel::estimate_all_walk(
            &game,
            ParallelConfig::new(2000, 3, threads).with_schedule(Schedule::PlayerSharded),
        );
        let player_dt = start.elapsed();
        // The player-sharded contract, asserted while we measure: every
        // thread count reproduces the same (serial) estimates.
        let reference = sharded_reference.get_or_insert_with(|| sharded.clone());
        assert_eq!(
            *reference, sharded,
            "player-sharded output changed at {threads} threads"
        );
        let b_base = *budget_base.get_or_insert(budget_dt);
        let p_base = *player_base.get_or_insert(player_dt);
        println!(
            "{threads:>8} {budget_dt:>14.3?} {:>9.2}x {player_dt:>14.3?} {:>9.2}x",
            b_base.as_secs_f64() / budget_dt.as_secs_f64().max(1e-12),
            p_base.as_secs_f64() / player_dt.as_secs_f64().max(1e-12)
        );
        walk_rows.push((
            threads,
            budget_dt.as_secs_f64() * 1e3,
            player_dt.as_secs_f64() * 1e3,
        ));
    }

    println!("\n== adaptive budgets, one hot player: steal vs player schedule ==");
    println!("(16 players; player 0 is a ±1 coin flip that runs to the 6000-sample");
    println!(" cap, the rest are dummies that stop at two batches — so one player");
    println!(" owns ~80% of the budget. player-sharding pins that budget to one");
    println!(" worker; stealing spreads its rounds across every idle worker. The");
    println!(" steal output is asserted bit-identical to its serial round-laddered");
    println!(" reference at every thread count while we measure.)");
    println!(
        "{:>8} {:>14} {:>10} {:>14} {:>10}",
        "threads", "player", "speedup", "steal", "speedup"
    );
    let hot_game = trex_shapley::game::fixtures::one_hot(16, 20_000);
    let hot_players = StochasticGame::num_players(&hot_game);
    let (tol, z, batch, cap, hot_seed) = (0.02f64, 1.96f64, 50usize, 6000usize, 17u64);
    let steal_serial: Vec<(Estimate, bool)> = (0..hot_players)
        .map(|p| {
            estimate_player_adaptive_rounds(
                &hot_game,
                p,
                tol,
                z,
                batch,
                cap,
                player_seed(hot_seed, p),
            )
        })
        .collect();
    assert!(!steal_serial[0].1, "the hot player must run to the cap");
    assert!(steal_serial[1].1, "dummies must converge early");
    let steal_hash = estimates_hash(&steal_serial);
    // Best of 3 runs per measurement: the steal-beats-player assertion
    // below gates CI, so one preempted run on a shared runner must not be
    // able to flip a timing comparison with a ~3× expected margin.
    let best_of = |schedule: Schedule, threads: usize| {
        let mut best: Option<(std::time::Duration, Vec<(Estimate, bool)>)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let out = parallel::estimate_all_adaptive(
                &hot_game, tol, z, batch, cap, hot_seed, threads, schedule,
            );
            let dt = start.elapsed();
            if best.as_ref().is_none_or(|(b, _)| dt < *b) {
                best = Some((dt, out));
            }
        }
        best.expect("three runs produce a best")
    };
    let mut player_base = None;
    let mut steal_base = None;
    let mut steal_rows: Vec<(usize, f64, f64, u64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (player_dt, sharded) = best_of(Schedule::PlayerSharded, threads);
        assert_eq!(sharded.len(), hot_players);
        let (steal_dt, stolen) = best_of(Schedule::WorkStealing, threads);
        // The stealing determinism contract, asserted while we measure:
        // every thread count reproduces the serial round ladder exactly.
        assert_eq!(
            stolen, steal_serial,
            "work-stealing output diverged from serial at {threads} threads"
        );
        // The headline claim: with real cores, stealing beats player-
        // sharding on this workload (the hot player's rounds spread out
        // instead of pinning one worker). Only asserted where the hardware
        // can show it — a single-core box serializes both schedules.
        if parallel::available_threads() >= 4 && threads >= 4 {
            assert!(
                steal_dt < player_dt,
                "stealing must beat player-sharding on the one-hot-player \
                 workload at {threads} threads ({steal_dt:?} vs {player_dt:?})"
            );
        }
        let p_base = *player_base.get_or_insert(player_dt);
        let s_base = *steal_base.get_or_insert(steal_dt);
        println!(
            "{threads:>8} {player_dt:>14.3?} {:>9.2}x {steal_dt:>14.3?} {:>9.2}x",
            p_base.as_secs_f64() / player_dt.as_secs_f64().max(1e-12),
            s_base.as_secs_f64() / steal_dt.as_secs_f64().max(1e-12)
        );
        steal_rows.push((
            threads,
            player_dt.as_secs_f64() * 1e3,
            steal_dt.as_secs_f64() * 1e3,
            estimates_hash(&stolen),
        ));
    }

    println!("\n== violation detection: time vs threads (2000 rows, 2 DCs) ==");
    println!("(the row-pair scan behind `trex violations` / `trex repair`;");
    println!(" output is identical at every thread count — wall time only)");
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "threads", "time", "speedup", "violations"
    );
    let table = synthetic_table(2000);
    let dcs = violation_dcs(&table);
    let mut baseline: Option<(std::time::Duration, usize)> = None;
    let mut violation_rows: Vec<(usize, f64, usize)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let violations = find_all_violations_par(&dcs, &table, threads);
        let dt = start.elapsed();
        let (base, count) = *baseline.get_or_insert((dt, violations.len()));
        assert_eq!(
            violations.len(),
            count,
            "parallel detection changed the violation count"
        );
        println!(
            "{threads:>8} {dt:>14.3?} {:>9.2}x {:>12}",
            base.as_secs_f64() / dt.as_secs_f64().max(1e-12),
            violations.len()
        );
        violation_rows.push((threads, dt.as_secs_f64() * 1e3, violations.len()));
    }

    println!("\n== static pruning: full vs pruned scan (2000 rows, 2 real + 3 dead DCs) ==");
    println!("(the analyzer proves the injected X* constraints can never be violated;");
    println!(" --prune-redundant skips their scans. Output is asserted byte-identical");
    println!(" while we measure — only the dead DCs' wasted pair scans disappear)");
    // The live constraints are the same two FDs as the curve above; the
    // generator only injects the dead ones (contradictory order pairs with
    // no equality join key, so each costs a full nested-loop pass).
    let gen_cfg = DcGenConfig {
        count: 0,
        max_lhs: 2,
        order_fraction: 0.0,
        seed: 11,
        redundant: 0,
        unsat: 3,
    };
    let mut noisy_dcs = violation_dcs(&table);
    noisy_dcs.extend(
        generate_dcs(table.schema(), &gen_cfg)
            .iter()
            .map(|dc| dc.resolved(table.schema()).unwrap()),
    );
    let pruned_away = noisy_dcs
        .iter()
        .filter(|dc| statically_unviolable(dc).is_some())
        .count();
    assert_eq!(
        pruned_away, gen_cfg.unsat,
        "every injected X* constraint must be proven unviolable"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "threads", "full", "pruned", "saved", "violations"
    );
    // Best of 3 per measurement, same rationale as the steal curve: the
    // pruned-beats-full assertion gates CI, so a single preempted run must
    // not flip the comparison.
    let scan_best_of = |threads: usize, pruned: bool| {
        let mut best: Option<std::time::Duration> = None;
        let mut out = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            out = if pruned {
                find_all_violations_par_pruned(&noisy_dcs, &table, threads)
            } else {
                find_all_violations_par(&noisy_dcs, &table, threads)
            };
            let dt = start.elapsed();
            if best.is_none_or(|b| dt < b) {
                best = Some(dt);
            }
        }
        (best.expect("three runs produce a best"), out)
    };
    let mut prune_rows: Vec<(usize, f64, f64, usize)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (full_dt, full) = scan_best_of(threads, false);
        let (pruned_dt, pruned) = scan_best_of(threads, true);
        // The pruning contract, asserted while we measure: skipping
        // statically-unviolable DCs is invisible in the witness list.
        assert_eq!(
            full, pruned,
            "pruned scan changed the output at {threads} threads"
        );
        // The injected dead DCs have no equality-join key, so each costs a
        // full nested-loop pass when unpruned — the pruned scan must win.
        assert!(
            pruned_dt < full_dt,
            "pruning must beat the full scan at {threads} threads \
             ({pruned_dt:?} vs {full_dt:?})"
        );
        println!(
            "{threads:>8} {full_dt:>14.3?} {pruned_dt:>14.3?} {:>9.2}x {:>12}",
            full_dt.as_secs_f64() / pruned_dt.as_secs_f64().max(1e-12),
            full.len()
        );
        prune_rows.push((
            threads,
            full_dt.as_secs_f64() * 1e3,
            pruned_dt.as_secs_f64() * 1e3,
            full.len(),
        ));
    }

    println!("\n== batched oracle dispatch: throughput vs batch size (1ms/call remote) ==");
    println!("(the constraint explanation's 16 coalition repairs, answered by a");
    println!(" MockRemoteRepair that sleeps 1ms per answer_batch round trip — the");
    println!(" per-call-latency profile of a repair service. --oracle-batch style");
    println!(" caps trade dispatches for batch size; the explanation is asserted");
    println!(" byte-identical to the inline path at every cap while we measure)");
    println!(
        "{:>8} {:>12} {:>14} {:>16} {:>10}",
        "batch", "dispatches", "time", "queries/s", "speedup"
    );
    let alg = laliga::algorithm1();
    let demo_table = laliga::dirty_table();
    let demo_dcs = laliga::constraints();
    let demo_cell = laliga::cell_of_interest(&demo_table);
    let inline_reference = Explainer::new(&alg)
        .explain_constraints(&demo_dcs, &demo_table, demo_cell)
        .expect("the demo cell explains");
    let remote_latency = Duration::from_millis(1);
    let mut unbatched_throughput = None;
    let mut best_throughput = 0f64;
    let mut batched_rows: Vec<(usize, usize, usize, f64, f64)> = Vec::new();
    for batch in [1usize, 2, 4, 8, 16] {
        let remote = MockRemoteRepair::mock(laliga::algorithm1(), remote_latency);
        let explainer = Explainer::new(&alg)
            .with_config(ExecConfig::new().with_oracle_batch(batch))
            .with_oracle_backend(&remote);
        // Best of 3, same rationale as the steal curve: the ≥2× assertion
        // below gates CI. Each explanation rebuilds its oracle, so every
        // run pays the full cold-cache dispatch schedule.
        let mut best: Option<(Duration, trex_repair::BatchStats)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let (cons, _, stats) = explainer
                .explain_constraints_with_batch_stats(&demo_dcs, &demo_table, demo_cell)
                .expect("the demo cell explains");
            let dt = start.elapsed();
            // The transport contract, asserted while we measure: routing
            // the coalition repairs through a batching remote backend is
            // invisible in the explanation.
            assert_eq!(
                cons.exact, inline_reference.exact,
                "batched explanation diverged at batch size {batch}"
            );
            if best.as_ref().is_none_or(|(b, _)| dt < *b) {
                best = Some((dt, stats));
            }
        }
        let (dt, stats) = best.expect("three runs produce a best");
        assert_eq!(stats.queries, 16, "4 DCs -> 16 cold coalitions per run");
        assert_eq!(stats.batches, 16usize.div_ceil(batch), "batch size {batch}");
        let throughput = stats.queries as f64 / dt.as_secs_f64().max(1e-12);
        let base = *unbatched_throughput.get_or_insert(throughput);
        best_throughput = best_throughput.max(throughput);
        println!(
            "{batch:>8} {:>12} {dt:>14.3?} {throughput:>16.0} {:>9.2}x",
            stats.batches,
            throughput / base.max(1e-12)
        );
        batched_rows.push((
            batch,
            stats.batches,
            stats.queries,
            dt.as_secs_f64() * 1e3,
            throughput,
        ));
    }
    let batched_speedup = best_throughput / unbatched_throughput.expect("batch 1 ran").max(1e-12);
    // The headline claim: against a per-call-latency backend, batching must
    // recover at least 2× the per-call-dispatch throughput (16 round trips
    // collapse into 1 at batch 16, so the expected margin is ~an order of
    // magnitude; simulated latency makes this hold on any hardware).
    assert!(
        batched_speedup >= 2.0,
        "batched dispatch must be >= 2x per-call dispatch ({batched_speedup:.2}x)"
    );
    println!("best over per-call dispatch: {batched_speedup:.2}x");

    println!("\ninterpretation: exact doubles per added player; sampling is flat per sample");
    println!("and splits across workers — and so does the violation scan, which is why");
    println!("repair loops (detect → fix → re-detect) take --threads too. This is the");
    println!("asymmetry behind the paper's two-solver design (§2.3).");

    // Machine-readable record for the CI artifact: the per-schedule walk
    // curve, the skewed-budget steal curve (with the output fingerprint CI
    // re-checks against the serial hash), and the violation-detection
    // curve, per thread count.
    if let Some(path) = json_path {
        let walk_json: Vec<String> = walk_rows
            .iter()
            .map(|(threads, budget_ms, player_ms)| {
                format!(
                    "    {{ \"threads\": {threads}, \"budget_ms\": {budget_ms:.3}, \
                     \"player_ms\": {player_ms:.3} }}"
                )
            })
            .collect();
        let steal_json: Vec<String> = steal_rows
            .iter()
            .map(|(threads, player_ms, steal_ms, hash)| {
                format!(
                    "    {{ \"threads\": {threads}, \"player_ms\": {player_ms:.3}, \
                     \"steal_ms\": {steal_ms:.3}, \"hash\": \"{hash:016x}\" }}"
                )
            })
            .collect();
        let violation_json: Vec<String> = violation_rows
            .iter()
            .map(|(threads, ms, count)| {
                let rows_per_sec = 2000.0 / (ms / 1e3).max(1e-12);
                format!(
                    "    {{ \"threads\": {threads}, \"wall_ms\": {ms:.3}, \
                     \"rows_per_sec\": {rows_per_sec:.1}, \"violations\": {count} }}"
                )
            })
            .collect();
        let prune_json: Vec<String> = prune_rows
            .iter()
            .map(|(threads, full_ms, pruned_ms, count)| {
                format!(
                    "    {{ \"threads\": {threads}, \"full_ms\": {full_ms:.3}, \
                     \"pruned_ms\": {pruned_ms:.3}, \"violations\": {count} }}"
                )
            })
            .collect();
        let batched_json: Vec<String> = batched_rows
            .iter()
            .map(|(batch, dispatches, queries, ms, throughput)| {
                format!(
                    "    {{ \"batch\": {batch}, \"dispatches\": {dispatches}, \
                     \"queries\": {queries}, \"wall_ms\": {ms:.3}, \
                     \"queries_per_sec\": {throughput:.1} }}"
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"scaling\",\n",
                "  \"hardware_threads\": {hw},\n",
                "  \"walk\": {{\n",
                "    \"players\": 40,\n",
                "    \"samples\": 2000,\n",
                "    \"per_thread\": [\n{walk}\n    ]\n",
                "  }},\n",
                "  \"steal\": {{\n",
                "    \"players\": 16,\n",
                "    \"batch\": 50,\n",
                "    \"max_samples\": 6000,\n",
                "    \"serial_hash\": \"{steal_hash:016x}\",\n",
                "    \"per_thread\": [\n{steal}\n    ]\n",
                "  }},\n",
                "  \"violations\": {{\n",
                "    \"rows\": 2000,\n",
                "    \"dcs\": 2,\n",
                "    \"per_thread\": [\n{violations}\n    ]\n",
                "  }},\n",
                "  \"prune\": {{\n",
                "    \"rows\": 2000,\n",
                "    \"dcs_total\": {dcs_total},\n",
                "    \"dcs_pruned\": {dcs_pruned},\n",
                "    \"per_thread\": [\n{prune}\n    ]\n",
                "  }},\n",
                "  \"batched\": {{\n",
                "    \"latency_ms\": {latency_ms},\n",
                "    \"dcs\": 4,\n",
                "    \"speedup_best_vs_unbatched\": {batched_speedup:.2},\n",
                "    \"per_batch\": [\n{batched}\n    ]\n",
                "  }}\n",
                "}}\n",
            ),
            hw = parallel::available_threads(),
            walk = walk_json.join(",\n"),
            steal_hash = steal_hash,
            steal = steal_json.join(",\n"),
            violations = violation_json.join(",\n"),
            dcs_total = noisy_dcs.len(),
            dcs_pruned = pruned_away,
            prune = prune_json.join(",\n"),
            latency_ms = remote_latency.as_millis(),
            batched_speedup = batched_speedup,
            batched = batched_json.join(",\n"),
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
