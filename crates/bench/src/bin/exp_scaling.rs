//! Experiment E6: wall-clock scaling of the two solvers — exact Shapley is
//! exponential in the player count (fine for constraint sets, "usually
//! small"), sampling is linear in m·players (the only option for cells) —
//! plus the thread-scaling of the parallel walk estimator.
//!
//! Run: `cargo run --release -p trex-bench --bin exp_scaling`

use std::time::Instant;
use trex_bench::RandomBinaryGame;
use trex_shapley::{estimate_player, parallel, shapley_exact, ParallelConfig, SamplingConfig};

fn main() {
    println!("== exact subset enumeration: time vs players (2^n growth) ==");
    println!("{:>4} {:>12} {:>14}", "n", "coalitions", "time");
    for n in [4usize, 8, 12, 16, 20] {
        let game = RandomBinaryGame::new(n, 3, 7);
        let start = Instant::now();
        let phi = shapley_exact(&game).unwrap();
        let dt = start.elapsed();
        assert_eq!(phi.len(), n);
        println!("{n:>4} {:>12} {:>14.3?}", 1u64 << n, dt);
    }

    println!("\n== permutation sampling: time vs m (linear), n = 40 ==");
    println!("{:>8} {:>14} {:>14}", "m", "time", "time/sample");
    let game = RandomBinaryGame::new(40, 5, 11);
    for m in [1_000usize, 10_000, 100_000] {
        let start = Instant::now();
        let est = estimate_player(
            &game,
            0,
            SamplingConfig {
                samples: m,
                seed: 3,
            },
        );
        let dt = start.elapsed();
        println!("{m:>8} {:>14.3?} {:>14.1?}", dt, dt / m as u32);
        let _ = est;
    }

    println!("\n== parallel walk estimation: time vs threads (n = 40, m = 2000) ==");
    println!(
        "({} hardware thread(s) available; past that, extra workers only re-chunk)",
        parallel::available_threads()
    );
    println!("{:>8} {:>14} {:>10}", "threads", "time", "speedup");
    let game = RandomBinaryGame::new(40, 5, 11);
    let mut serial_time = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let ests = parallel::estimate_all_walk(&game, ParallelConfig::new(2000, 3, threads));
        let dt = start.elapsed();
        assert_eq!(ests.len(), 40);
        let base = *serial_time.get_or_insert(dt);
        println!(
            "{threads:>8} {dt:>14.3?} {:>9.2}x",
            base.as_secs_f64() / dt.as_secs_f64().max(1e-12)
        );
    }

    println!("\ninterpretation: exact doubles per added player; sampling is flat per sample");
    println!("and splits across workers. This is the asymmetry behind the paper's");
    println!("two-solver design (§2.3).");
}
