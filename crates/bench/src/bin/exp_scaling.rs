//! Experiment E6: wall-clock scaling of the two solvers — exact Shapley is
//! exponential in the player count (fine for constraint sets, "usually
//! small"), sampling is linear in m·players (the only option for cells) —
//! plus the thread-scaling of the parallel walk estimator and of
//! constraint violation detection (the row-pair scan behind `trex
//! violations` / `trex repair`).
//!
//! Run: `cargo run --release -p trex-bench --bin exp_scaling`

use std::time::Instant;
use trex_bench::RandomBinaryGame;
use trex_constraints::{find_all_violations_par, parse_dcs, DenialConstraint};
use trex_shapley::{estimate_player, parallel, shapley_exact, ParallelConfig, SamplingConfig};
use trex_table::{Table, TableBuilder};

/// A synthetic league table with planted conflicts: `rows` rows bucketed
/// into 60 teams (7 cities each, so every bucket violates the Team→City FD)
/// plus a sprinkling of Country disagreements.
fn synthetic_table(rows: usize) -> Table {
    let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
    for i in 0..rows {
        let team = format!("T{}", i % 60);
        let city = format!("C{}", i % 7);
        let country = if i % 97 == 0 { "X" } else { "Y" }.to_string();
        b = b.str_row([team.as_str(), city.as_str(), country.as_str()]);
    }
    b.build()
}

fn violation_dcs(table: &Table) -> Vec<DenialConstraint> {
    parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .unwrap()
    .into_iter()
    .map(|dc| dc.resolved(table.schema()).unwrap())
    .collect()
}

fn main() {
    println!("== exact subset enumeration: time vs players (2^n growth) ==");
    println!("{:>4} {:>12} {:>14}", "n", "coalitions", "time");
    for n in [4usize, 8, 12, 16, 20] {
        let game = RandomBinaryGame::new(n, 3, 7);
        let start = Instant::now();
        let phi = shapley_exact(&game).unwrap();
        let dt = start.elapsed();
        assert_eq!(phi.len(), n);
        println!("{n:>4} {:>12} {:>14.3?}", 1u64 << n, dt);
    }

    println!("\n== permutation sampling: time vs m (linear), n = 40 ==");
    println!("{:>8} {:>14} {:>14}", "m", "time", "time/sample");
    let game = RandomBinaryGame::new(40, 5, 11);
    for m in [1_000usize, 10_000, 100_000] {
        let start = Instant::now();
        let est = estimate_player(
            &game,
            0,
            SamplingConfig {
                samples: m,
                seed: 3,
            },
        );
        let dt = start.elapsed();
        println!("{m:>8} {:>14.3?} {:>14.1?}", dt, dt / m as u32);
        let _ = est;
    }

    println!("\n== parallel walk estimation: time vs threads (n = 40, m = 2000) ==");
    println!(
        "({} hardware thread(s) available; past that, extra workers only re-chunk)",
        parallel::available_threads()
    );
    println!("{:>8} {:>14} {:>10}", "threads", "time", "speedup");
    let game = RandomBinaryGame::new(40, 5, 11);
    let mut serial_time = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let ests = parallel::estimate_all_walk(&game, ParallelConfig::new(2000, 3, threads));
        let dt = start.elapsed();
        assert_eq!(ests.len(), 40);
        let base = *serial_time.get_or_insert(dt);
        println!(
            "{threads:>8} {dt:>14.3?} {:>9.2}x",
            base.as_secs_f64() / dt.as_secs_f64().max(1e-12)
        );
    }

    println!("\n== violation detection: time vs threads (2000 rows, 2 DCs) ==");
    println!("(the row-pair scan behind `trex violations` / `trex repair`;");
    println!(" output is identical at every thread count — wall time only)");
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "threads", "time", "speedup", "violations"
    );
    let table = synthetic_table(2000);
    let dcs = violation_dcs(&table);
    let mut baseline: Option<(std::time::Duration, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let violations = find_all_violations_par(&dcs, &table, threads);
        let dt = start.elapsed();
        let (base, count) = *baseline.get_or_insert((dt, violations.len()));
        assert_eq!(
            violations.len(),
            count,
            "parallel detection changed the violation count"
        );
        println!(
            "{threads:>8} {dt:>14.3?} {:>9.2}x {:>12}",
            base.as_secs_f64() / dt.as_secs_f64().max(1e-12),
            violations.len()
        );
    }

    println!("\ninterpretation: exact doubles per added player; sampling is flat per sample");
    println!("and splits across workers — and so does the violation scan, which is why");
    println!("repair loops (detect → fix → re-detect) take --threads too. This is the");
    println!("asymmetry behind the paper's two-solver design (§2.3).");
}
