//! Experiment E6: wall-clock scaling of the two solvers — exact Shapley is
//! exponential in the player count (fine for constraint sets, "usually
//! small"), sampling is linear in m·players (the only option for cells) —
//! plus the thread-scaling of the parallel walk estimator (both work
//! schedules side by side) and of constraint violation detection (the
//! row-pair scan behind `trex violations` / `trex repair`).
//!
//! Run: `cargo run --release -p trex-bench --bin exp_scaling`
//!
//! Flags (all optional):
//!   --json PATH     also write the machine-readable scaling record (the
//!                   exp_scaling.json the CI bench-smoke job uploads as an
//!                   artifact next to bench_current.json)

use std::time::Instant;
use trex_bench::RandomBinaryGame;
use trex_constraints::{find_all_violations_par, parse_dcs, DenialConstraint};
use trex_shapley::{
    estimate_player, parallel, shapley_exact, ParallelConfig, SamplingConfig, Schedule,
};
use trex_table::{Table, TableBuilder};

/// A synthetic league table with planted conflicts: `rows` rows bucketed
/// into 60 teams (7 cities each, so every bucket violates the Team→City FD)
/// plus a sprinkling of Country disagreements.
fn synthetic_table(rows: usize) -> Table {
    let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
    for i in 0..rows {
        let team = format!("T{}", i % 60);
        let city = format!("C{}", i % 7);
        let country = if i % 97 == 0 { "X" } else { "Y" }.to_string();
        b = b.str_row([team.as_str(), city.as_str(), country.as_str()]);
    }
    b.build()
}

fn violation_dcs(table: &Table) -> Vec<DenialConstraint> {
    parse_dcs(
        "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n\
         C2: !(t1.City = t2.City & t1.Country != t2.Country)\n",
    )
    .unwrap()
    .into_iter()
    .map(|dc| dc.resolved(table.schema()).unwrap())
    .collect()
}

/// Minimal `--json PATH` reader (the experiment binaries stay
/// dependency-free). Any other flag is fatal: a typo in the CI command must
/// fail the job, not silently mislabel the artifact.
fn json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.into_iter();
    let mut path = None;
    while let Some(flag) = iter.next() {
        assert!(flag == "--json", "unknown flag {flag:?} (known: --json)");
        let value = iter.next().expect("--json: missing value");
        assert!(!value.starts_with("--"), "--json: missing value");
        path = Some(value);
    }
    path
}

fn main() {
    let json_path = json_flag();
    println!("== exact subset enumeration: time vs players (2^n growth) ==");
    println!("{:>4} {:>12} {:>14}", "n", "coalitions", "time");
    for n in [4usize, 8, 12, 16, 20] {
        let game = RandomBinaryGame::new(n, 3, 7);
        let start = Instant::now();
        let phi = shapley_exact(&game).unwrap();
        let dt = start.elapsed();
        assert_eq!(phi.len(), n);
        println!("{n:>4} {:>12} {:>14.3?}", 1u64 << n, dt);
    }

    println!("\n== permutation sampling: time vs m (linear), n = 40 ==");
    println!("{:>8} {:>14} {:>14}", "m", "time", "time/sample");
    let game = RandomBinaryGame::new(40, 5, 11);
    for m in [1_000usize, 10_000, 100_000] {
        let start = Instant::now();
        let est = estimate_player(
            &game,
            0,
            SamplingConfig {
                samples: m,
                seed: 3,
            },
        );
        let dt = start.elapsed();
        println!("{m:>8} {:>14.3?} {:>14.1?}", dt, dt / m as u32);
        let _ = est;
    }

    println!(
        "\n== parallel walk estimation: time vs threads, both schedules (n = 40, m = 2000) =="
    );
    println!(
        "({} hardware thread(s) available; past that, extra workers only re-chunk)",
        parallel::available_threads()
    );
    println!("(budget-split: deterministic per (seed, threads); player-sharded:");
    println!(" identical to the serial estimator at every thread count. The sharded");
    println!(" walk replays ~2n evaluations per walk vs the serial n+1, so on a");
    println!(" cheap uncached game like this one budget-split wins on raw time;");
    println!(" player-sharding pays off when evaluations are repair-oracle calls)");
    println!(
        "{:>8} {:>14} {:>10} {:>14} {:>10}",
        "threads", "budget", "speedup", "player", "speedup"
    );
    let game = RandomBinaryGame::new(40, 5, 11);
    let mut budget_base = None;
    let mut player_base = None;
    let mut sharded_reference: Option<Vec<trex_shapley::Estimate>> = None;
    let mut walk_rows: Vec<(usize, f64, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let ests = parallel::estimate_all_walk(&game, ParallelConfig::new(2000, 3, threads));
        let budget_dt = start.elapsed();
        assert_eq!(ests.len(), 40);
        let start = Instant::now();
        let sharded = parallel::estimate_all_walk(
            &game,
            ParallelConfig::new(2000, 3, threads).with_schedule(Schedule::PlayerSharded),
        );
        let player_dt = start.elapsed();
        // The player-sharded contract, asserted while we measure: every
        // thread count reproduces the same (serial) estimates.
        let reference = sharded_reference.get_or_insert_with(|| sharded.clone());
        assert_eq!(
            *reference, sharded,
            "player-sharded output changed at {threads} threads"
        );
        let b_base = *budget_base.get_or_insert(budget_dt);
        let p_base = *player_base.get_or_insert(player_dt);
        println!(
            "{threads:>8} {budget_dt:>14.3?} {:>9.2}x {player_dt:>14.3?} {:>9.2}x",
            b_base.as_secs_f64() / budget_dt.as_secs_f64().max(1e-12),
            p_base.as_secs_f64() / player_dt.as_secs_f64().max(1e-12)
        );
        walk_rows.push((
            threads,
            budget_dt.as_secs_f64() * 1e3,
            player_dt.as_secs_f64() * 1e3,
        ));
    }

    println!("\n== violation detection: time vs threads (2000 rows, 2 DCs) ==");
    println!("(the row-pair scan behind `trex violations` / `trex repair`;");
    println!(" output is identical at every thread count — wall time only)");
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "threads", "time", "speedup", "violations"
    );
    let table = synthetic_table(2000);
    let dcs = violation_dcs(&table);
    let mut baseline: Option<(std::time::Duration, usize)> = None;
    let mut violation_rows: Vec<(usize, f64, usize)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let violations = find_all_violations_par(&dcs, &table, threads);
        let dt = start.elapsed();
        let (base, count) = *baseline.get_or_insert((dt, violations.len()));
        assert_eq!(
            violations.len(),
            count,
            "parallel detection changed the violation count"
        );
        println!(
            "{threads:>8} {dt:>14.3?} {:>9.2}x {:>12}",
            base.as_secs_f64() / dt.as_secs_f64().max(1e-12),
            violations.len()
        );
        violation_rows.push((threads, dt.as_secs_f64() * 1e3, violations.len()));
    }

    println!("\ninterpretation: exact doubles per added player; sampling is flat per sample");
    println!("and splits across workers — and so does the violation scan, which is why");
    println!("repair loops (detect → fix → re-detect) take --threads too. This is the");
    println!("asymmetry behind the paper's two-solver design (§2.3).");

    // Machine-readable record for the CI artifact: the per-schedule walk
    // curve and the violation-detection curve, per thread count.
    if let Some(path) = json_path {
        let walk_json: Vec<String> = walk_rows
            .iter()
            .map(|(threads, budget_ms, player_ms)| {
                format!(
                    "    {{ \"threads\": {threads}, \"budget_ms\": {budget_ms:.3}, \
                     \"player_ms\": {player_ms:.3} }}"
                )
            })
            .collect();
        let violation_json: Vec<String> = violation_rows
            .iter()
            .map(|(threads, ms, count)| {
                format!(
                    "    {{ \"threads\": {threads}, \"wall_ms\": {ms:.3}, \
                     \"violations\": {count} }}"
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"scaling\",\n",
                "  \"hardware_threads\": {hw},\n",
                "  \"walk\": {{\n",
                "    \"players\": 40,\n",
                "    \"samples\": 2000,\n",
                "    \"per_thread\": [\n{walk}\n    ]\n",
                "  }},\n",
                "  \"violations\": {{\n",
                "    \"rows\": 2000,\n",
                "    \"dcs\": 2,\n",
                "    \"per_thread\": [\n{violations}\n    ]\n",
                "  }}\n",
                "}}\n",
            ),
            hw = parallel::available_threads(),
            walk = walk_json.join(",\n"),
            violations = violation_json.join(",\n"),
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
