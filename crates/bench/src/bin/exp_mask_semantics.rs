//! Experiment E4: the three coalition semantics of the cell game, side by
//! side on the paper's own table and cell of interest:
//!
//! * `null` — the §2.2 definition (absent cell = plain null, witnesses
//!   nothing);
//! * `distinct` — labeled-null masking (absent cell still *differs* from
//!   concrete values), the semantics under which the paper's Example-2.4
//!   coalition counts come out;
//! * `replacement` — the Example-2.5 estimator (absent cell = random
//!   redraw from the column distribution).
//!
//! Run: `cargo run --release -p trex-bench --bin exp_mask_semantics`

use trex::{Explainer, MaskMode};
use trex_datagen::laliga;
use trex_shapley::SamplingConfig;

fn main() {
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    let ex = Explainer::new(&alg);
    let cell = laliga::cell_of_interest(&dirty);
    let m = 3000;

    let null = ex
        .explain_cells_masked(
            &dcs,
            &dirty,
            cell,
            MaskMode::Null,
            SamplingConfig {
                samples: m,
                seed: 1,
            },
        )
        .unwrap();
    let distinct = ex
        .explain_cells_masked(
            &dcs,
            &dirty,
            cell,
            MaskMode::Distinct,
            SamplingConfig {
                samples: m,
                seed: 1,
            },
        )
        .unwrap();
    let replacement = ex
        .explain_cells_sampled(
            &dcs,
            &dirty,
            cell,
            SamplingConfig {
                samples: m,
                seed: 1,
            },
        )
        .unwrap();

    println!("cell Shapley values for the repair of t5[Country] (m = {m}):\n");
    println!(
        "{:<14} | {:>10} | {:>10} | {:>12}",
        "cell", "null", "distinct", "replacement"
    );
    // Union of top-8 labels from each ranking, in null-ranking order.
    let mut labels: Vec<String> = Vec::new();
    for r in [&null.ranking, &distinct.ranking, &replacement.ranking] {
        for e in r.top_k(8) {
            if !labels.contains(&e.label) {
                labels.push(e.label.clone());
            }
        }
    }
    for l in &labels {
        let v = |r: &trex::Ranking| r.get(l).map_or(0.0, |e| e.value);
        println!(
            "{:<14} | {:>10.4} | {:>10.4} | {:>12.4}",
            l,
            v(&null.ranking),
            v(&distinct.ranking),
            v(&replacement.ranking)
        );
    }
    println!("\ntop-ranked cell:");
    println!("  null        → {}", null.ranking.top().unwrap().label);
    println!("  distinct    → {}", distinct.ranking.top().unwrap().label);
    println!(
        "  replacement → {}",
        replacement.ranking.top().unwrap().label
    );
    println!(
        "\nExample 2.4's claim (t5[League] most influential) holds under both\n\
         masked semantics; the replacement estimator measures a different\n\
         game where the Country witness cells carry the mass. t1[Place] is\n\
         exactly zero under all three (dummy player)."
    );
    assert_eq!(null.ranking.top().unwrap().label, "t5[League]");
    assert_eq!(distinct.ranking.top().unwrap().label, "t5[League]");
    assert_eq!(null.ranking.get("t1[Place]").unwrap().value, 0.0);
    assert_eq!(replacement.ranking.get("t1[Place]").unwrap().value, 0.0);
}
