//! # trex-bench
//!
//! Shared fixtures for the benchmark suite and the experiment harness
//! binaries (`src/bin/exp_*.rs`). Each experiment in DESIGN.md §5 maps to
//! one bench target or binary here; EXPERIMENTS.md records the outputs.

use trex_constraints::DenialConstraint;
use trex_datagen::{errors, soccer};
use trex_table::Table;

/// A standings workload of roughly `rows` rows with `dirt` fraction of
/// Country cells corrupted out-of-domain — the canonical benchmark input.
pub fn standings_workload(rows: usize, dirt: f64, seed: u64) -> (Table, Vec<DenialConstraint>) {
    // rows = countries × cities × teams × years; scale countries.
    let per_country = 3 * 2 * 2; // cities × teams × years
    let countries = (rows / per_country).max(1);
    let clean = soccer::generate_clean(&soccer::SoccerConfig {
        countries,
        cities_per_country: 3,
        teams_per_city: 2,
        years: 2,
        seed,
    });
    let injected = errors::inject_errors(
        &clean,
        &errors::ErrorConfig {
            rate: dirt,
            kind_weights: [0, 0, 1, 0, 0],
            columns: vec!["Country".to_string()],
            seed: seed.wrapping_add(1),
            ..Default::default()
        },
    );
    (injected.dirty, soccer::soccer_constraints())
}

/// A random monotone binary (0/1) game over `n` players, defined by `k`
/// random minimal winning coalitions — the shape T-REx constraint games
/// take. Used by the Shapley scaling benchmarks.
pub struct RandomBinaryGame {
    /// Player count.
    pub n: usize,
    minimal_winning: Vec<u64>,
}

impl RandomBinaryGame {
    /// Build with `k` random minimal winning coalitions (deterministic per
    /// seed). The grand coalition always wins.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!((1..=60).contains(&n));
        let mut rng = StdRng::seed_from_u64(seed);
        let minimal_winning = (0..k.max(1))
            .map(|_| {
                let size = rng.gen_range(1..=(n / 2 + 1));
                let mut mask = 0u64;
                while (mask.count_ones() as usize) < size {
                    mask |= 1 << rng.gen_range(0..n);
                }
                mask
            })
            .collect();
        RandomBinaryGame { n, minimal_winning }
    }
}

impl trex_shapley::Game for RandomBinaryGame {
    fn num_players(&self) -> usize {
        self.n
    }

    fn value(&self, coalition: &trex_shapley::Coalition) -> f64 {
        // n ≤ 60 (asserted in `new`), so the whole membership is word 0.
        let mask = coalition.words()[0];
        if self.minimal_winning.iter().any(|w| mask & w == *w) {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_shapley::{shapley_exact, Coalition, Game};

    #[test]
    fn workload_scales_with_rows() {
        let (t, dcs) = standings_workload(48, 0.02, 1);
        assert!(t.num_rows() >= 48);
        assert_eq!(dcs.len(), 4);
    }

    #[test]
    fn random_game_is_binary_and_efficient() {
        let g = RandomBinaryGame::new(8, 3, 42);
        assert!(g.value(&Coalition::full(8)) == 1.0);
        let phi = shapley_exact(&g).unwrap();
        let grand = g.value(&Coalition::full(8)) - g.value(&Coalition::empty(8));
        assert!((phi.iter().sum::<f64>() - grand).abs() < 1e-9);
    }
}
