//! Functional dependencies as a DC subset.
//!
//! The repair literature the paper builds on ([1, 5, 8] in its references)
//! works heavily with functional dependencies `X → Y`: "tuples agreeing on
//! all of X must agree on Y". Every FD is expressible as the denial
//! constraint `¬( ⋀_{A∈X} t1.A = t2.A  ∧  t1.Y ≠ t2.Y )` — e.g. the paper's
//! C1 is `Team → City` and C2 is `City → Country`.
//!
//! This module converts both ways, checks FD satisfaction, and *discovers*
//! the FDs that hold in a table (exactly, by partition refinement) — used by
//! the FD-chase repair baseline and by workload generators that need
//! constraint sets consistent with generated data.

use crate::ast::{CmpOp, DenialConstraint, Operand, Predicate};
use std::collections::HashMap;
use std::fmt;
use trex_table::{AttrId, Table, Value};

/// A functional dependency `lhs → rhs` (single consequent; `X → {Y,Z}` is
/// two FDs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    /// Determinant attribute names.
    pub lhs: Vec<String>,
    /// Dependent attribute name.
    pub rhs: String,
}

impl FunctionalDependency {
    /// Construct an FD.
    pub fn new<I, S>(lhs: I, rhs: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FunctionalDependency {
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into(),
        }
    }

    /// The equivalent denial constraint, named `name`.
    pub fn to_dc(&self, name: impl Into<String>) -> DenialConstraint {
        let mut preds: Vec<Predicate> = self
            .lhs
            .iter()
            .map(|a| Predicate::pair(a.clone(), CmpOp::Eq))
            .collect();
        preds.push(Predicate::pair(self.rhs.clone(), CmpOp::Neq));
        DenialConstraint::new(name, preds)
    }

    /// Recognize an FD-shaped DC: all-equality pairs plus exactly one
    /// same-attribute `!=` pair.
    pub fn from_dc(dc: &DenialConstraint) -> Option<FunctionalDependency> {
        let mut lhs = Vec::new();
        let mut rhs: Option<String> = None;
        for p in &dc.predicates {
            let (a, b) = match (&p.left, &p.right) {
                (
                    Operand::Attr {
                        var: va, name: na, ..
                    },
                    Operand::Attr {
                        var: vb, name: nb, ..
                    },
                ) if va != vb && na == nb => (na.clone(), nb.clone()),
                _ => return None,
            };
            debug_assert_eq!(a, b);
            match p.op {
                CmpOp::Eq => lhs.push(a),
                CmpOp::Neq => {
                    if rhs.replace(a).is_some() {
                        return None; // two inequalities: not an FD
                    }
                }
                _ => return None,
            }
        }
        let rhs = rhs?;
        if lhs.is_empty() {
            return None;
        }
        Some(FunctionalDependency { lhs, rhs })
    }

    /// Does the FD hold on `table`? (Rows with a null on any involved
    /// attribute are skipped, consistent with DC null semantics.)
    pub fn holds(&self, table: &Table) -> bool {
        let Some(ids) = self.resolve(table) else {
            return false;
        };
        let (lhs_ids, rhs_id) = ids;
        let mut seen: HashMap<Vec<Value>, Value> = HashMap::new();
        for r in 0..table.num_rows() {
            let rhs_v = table.value(r, rhs_id);
            if rhs_v.is_null() {
                continue;
            }
            let mut key = Vec::with_capacity(lhs_ids.len());
            let mut has_null = false;
            for a in &lhs_ids {
                let v = table.value(r, *a);
                if v.is_null() {
                    has_null = true;
                    break;
                }
                key.push(v.clone());
            }
            if has_null {
                continue;
            }
            match seen.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rhs_v.clone());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != rhs_v {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn resolve(&self, table: &Table) -> Option<(Vec<AttrId>, AttrId)> {
        let lhs: Option<Vec<AttrId>> = self.lhs.iter().map(|a| table.schema().resolve(a)).collect();
        Some((lhs?, table.schema().resolve(&self.rhs)?))
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs.join(","), self.rhs)
    }
}

/// Discover all *minimal* FDs with `lhs` of size at most `max_lhs` that hold
/// exactly on `table`.
///
/// Exhaustive over attribute subsets — exponential in arity, fine for the
/// ≤ 10-attribute tables of this workspace's workloads. An FD is reported
/// only if no FD with a strict subset of its lhs (and the same rhs) holds.
pub fn discover_fds(table: &Table, max_lhs: usize) -> Vec<FunctionalDependency> {
    let names: Vec<String> = table.schema().names().map(str::to_string).collect();
    let arity = names.len();
    let mut found: Vec<FunctionalDependency> = Vec::new();

    // Enumerate lhs subsets by increasing size so minimality is a subset
    // check against already-found FDs.
    let mut subsets: Vec<Vec<usize>> = vec![vec![]];
    for size in 1..=max_lhs.min(arity.saturating_sub(1)) {
        let mut next = Vec::new();
        for s in subsets.iter().filter(|s| s.len() == size - 1) {
            let start = s.last().map_or(0, |x| x + 1);
            for a in start..arity {
                let mut t = s.clone();
                t.push(a);
                next.push(t);
            }
        }
        subsets.extend(next);
    }

    for lhs_idx in subsets.iter().filter(|s| !s.is_empty()) {
        'rhs: for rhs in 0..arity {
            if lhs_idx.contains(&rhs) {
                continue;
            }
            // Minimality: skip if a subset-lhs FD with this rhs already holds.
            for f in &found {
                if f.rhs == names[rhs]
                    && f.lhs
                        .iter()
                        .all(|a| lhs_idx.iter().any(|i| names[*i] == *a))
                    && f.lhs.len() < lhs_idx.len()
                {
                    continue 'rhs;
                }
            }
            let fd = FunctionalDependency::new(
                lhs_idx.iter().map(|i| names[*i].clone()),
                names[rhs].clone(),
            );
            if fd.holds(table) {
                found.push(fd);
            }
        }
    }
    found
}

/// Convert every FD-shaped DC in `dcs` to an FD, skipping the rest.
pub fn fds_of(dcs: &[DenialConstraint]) -> Vec<FunctionalDependency> {
    dcs.iter()
        .filter_map(FunctionalDependency::from_dc)
        .collect()
}

impl FunctionalDependency {
    /// The `g3` error of the FD on `table`: the minimum fraction of rows
    /// that would have to be removed for the FD to hold exactly. For each
    /// lhs equivalence class the kept rows are those with the class's
    /// plurality rhs value; everything else counts as error. Rows with a
    /// (labeled) null on any involved attribute are outside the measure.
    ///
    /// `g3 = 0` iff [`FunctionalDependency::holds`] (on the non-null rows);
    /// unknown attributes yield `1.0` (maximally violated).
    pub fn g3_error(&self, table: &Table) -> f64 {
        let Some((lhs_ids, rhs_id)) = self.resolve(table) else {
            return 1.0;
        };
        let mut classes: HashMap<Vec<Value>, HashMap<Value, usize>> = HashMap::new();
        let mut measured = 0usize;
        for r in 0..table.num_rows() {
            let rhs_v = table.value(r, rhs_id);
            if !rhs_v.is_concrete() {
                continue;
            }
            let mut key = Vec::with_capacity(lhs_ids.len());
            let mut skip = false;
            for a in &lhs_ids {
                let v = table.value(r, *a);
                if !v.is_concrete() {
                    skip = true;
                    break;
                }
                key.push(v.clone());
            }
            if skip {
                continue;
            }
            measured += 1;
            *classes
                .entry(key)
                .or_default()
                .entry(rhs_v.clone())
                .or_insert(0) += 1;
        }
        if measured == 0 {
            return 0.0;
        }
        let kept: usize = classes
            .values()
            .map(|counts| counts.values().copied().max().unwrap_or(0))
            .sum();
        (measured - kept) as f64 / measured as f64
    }
}

/// Discover all minimal FDs that hold *approximately* on `table`: `g3`
/// error at most `tolerance`. With `tolerance = 0` this coincides with
/// [`discover_fds`]. Useful in the demo loop: mine plausible constraints
/// from a *dirty* table (where exact discovery finds nothing) and let the
/// explanation session validate them.
pub fn discover_fds_approx(
    table: &Table,
    max_lhs: usize,
    tolerance: f64,
) -> Vec<(FunctionalDependency, f64)> {
    let names: Vec<String> = table.schema().names().map(str::to_string).collect();
    let arity = names.len();
    let mut found: Vec<(FunctionalDependency, f64)> = Vec::new();

    let mut subsets: Vec<Vec<usize>> = vec![vec![]];
    for size in 1..=max_lhs.min(arity.saturating_sub(1)) {
        let mut next = Vec::new();
        for s in subsets.iter().filter(|s| s.len() == size - 1) {
            let start = s.last().map_or(0, |x| x + 1);
            for a in start..arity {
                let mut t = s.clone();
                t.push(a);
                next.push(t);
            }
        }
        subsets.extend(next);
    }

    for lhs_idx in subsets.iter().filter(|s| !s.is_empty()) {
        'rhs: for rhs in 0..arity {
            if lhs_idx.contains(&rhs) {
                continue;
            }
            for (f, _) in &found {
                if f.rhs == names[rhs]
                    && f.lhs
                        .iter()
                        .all(|a| lhs_idx.iter().any(|i| names[*i] == *a))
                    && f.lhs.len() < lhs_idx.len()
                {
                    continue 'rhs;
                }
            }
            let fd = FunctionalDependency::new(
                lhs_idx.iter().map(|i| names[*i].clone()),
                names[rhs].clone(),
            );
            let err = fd.g3_error(table);
            if err <= tolerance {
                found.push((fd, err));
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dc;
    use trex_table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Atletico", "Madrid", "Spain"])
            .build()
    }

    #[test]
    fn fd_dc_roundtrip() {
        let fd = FunctionalDependency::new(["Team"], "City");
        let dc = fd.to_dc("C1");
        assert_eq!(
            dc.to_string(),
            "C1: !(t1.Team = t2.Team & t1.City != t2.City)"
        );
        assert_eq!(FunctionalDependency::from_dc(&dc), Some(fd));
    }

    #[test]
    fn composite_lhs_roundtrip() {
        let fd = FunctionalDependency::new(["League", "Year"], "Champion");
        let dc = fd.to_dc("C");
        assert_eq!(FunctionalDependency::from_dc(&dc), Some(fd));
    }

    #[test]
    fn non_fd_dcs_rejected() {
        for src in [
            "!(t1.A = t2.A)",                 // no inequality
            "!(t1.A != t2.A & t1.B != t2.B)", // two inequalities
            "!(t1.A = t2.A & t1.B > t2.B)",   // order predicate
            "!(t1.A = t2.A & t1.B != \"x\")", // constant
        ] {
            let dc = parse_dc(src).unwrap();
            assert_eq!(FunctionalDependency::from_dc(&dc), None, "{src}");
        }
    }

    #[test]
    fn holds_checks_agreement() {
        let t = table();
        assert!(FunctionalDependency::new(["Team"], "City").holds(&t));
        assert!(FunctionalDependency::new(["City"], "Country").holds(&t));
        assert!(!FunctionalDependency::new(["Country"], "City").holds(&t));
    }

    #[test]
    fn holds_skips_null_rows() {
        let mut t = table();
        let city = t.schema().id("City");
        t.set(trex_table::CellRef::new(0, city), Value::Null);
        // Team -> City now vacuously holds for row 0.
        assert!(FunctionalDependency::new(["Team"], "City").holds(&t));
    }

    #[test]
    fn unknown_attribute_means_not_holding() {
        let t = table();
        assert!(!FunctionalDependency::new(["Nope"], "City").holds(&t));
    }

    #[test]
    fn discover_finds_minimal_fds() {
        let t = table();
        let fds = discover_fds(&t, 2);
        assert!(fds.contains(&FunctionalDependency::new(["Team"], "City")));
        assert!(fds.contains(&FunctionalDependency::new(["City"], "Country")));
        // Country -> City does not hold (Spain maps to two cities).
        assert!(!fds.contains(&FunctionalDependency::new(["Country"], "City")));
        // Minimality: since Team -> Country holds (via City), the composite
        // {Team, City} -> Country must not be reported.
        assert!(fds.contains(&FunctionalDependency::new(["Team"], "Country")));
        assert!(!fds.iter().any(|f| f.lhs.len() == 2
            && f.rhs == "Country"
            && f.lhs.contains(&"Team".to_string())));
    }

    #[test]
    fn discovered_fds_all_hold() {
        let t = table();
        for fd in discover_fds(&t, 2) {
            assert!(fd.holds(&t), "{fd}");
        }
    }

    #[test]
    fn display_is_readable() {
        let fd = FunctionalDependency::new(["A", "B"], "C");
        assert_eq!(fd.to_string(), "A,B -> C");
    }

    #[test]
    fn g3_error_zero_iff_holds() {
        let t = table();
        assert_eq!(
            FunctionalDependency::new(["Team"], "City").g3_error(&t),
            0.0
        );
        // Country -> City fails for one of three rows under Spain.
        let e = FunctionalDependency::new(["Country"], "City").g3_error(&t);
        assert!((e - 1.0 / 3.0).abs() < 1e-12, "{e}");
    }

    #[test]
    fn g3_error_of_unknown_attr_is_one() {
        let t = table();
        assert_eq!(
            FunctionalDependency::new(["Nope"], "City").g3_error(&t),
            1.0
        );
    }

    #[test]
    fn g3_skips_null_rows() {
        let mut t = table();
        t.set(
            trex_table::CellRef::new(0, t.schema().id("City")),
            Value::Null,
        );
        // Only rows 1 and 2 measured for Country -> City: Barcelona vs
        // Madrid under Spain -> one must go.
        let e = FunctionalDependency::new(["Country"], "City").g3_error(&t);
        assert!((e - 0.5).abs() < 1e-12, "{e}");
    }

    #[test]
    fn approx_discovery_tolerates_dirt() {
        // Team -> City holds except for one corrupted row out of five.
        let t = trex_table::TableBuilder::new()
            .str_columns(["Team", "City"])
            .str_row(["RM", "Madrid"])
            .str_row(["RM", "Madrid"])
            .str_row(["RM", "Madrid"])
            .str_row(["RM", "Capital"])
            .str_row(["FCB", "Barcelona"])
            .build();
        let exact = discover_fds(&t, 1);
        assert!(!exact.contains(&FunctionalDependency::new(["Team"], "City")));
        let approx = discover_fds_approx(&t, 1, 0.25);
        let entry = approx
            .iter()
            .find(|(f, _)| *f == FunctionalDependency::new(["Team"], "City"))
            .expect("approximate discovery finds the dirty FD");
        assert!((entry.1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn approx_with_zero_tolerance_matches_exact() {
        let t = table();
        let exact = discover_fds(&t, 2);
        let approx: Vec<FunctionalDependency> = discover_fds_approx(&t, 2, 0.0)
            .into_iter()
            .map(|(f, _)| f)
            .collect();
        assert_eq!(exact, approx);
    }
}
