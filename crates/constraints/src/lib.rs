//! # trex-constraints
//!
//! Denial constraints (DCs) for the T-REx reproduction: the constraint
//! language the paper's repairs are driven by ([2] in its references).
//!
//! * [`ast`] — DC abstract syntax (`∀t1,t2.¬(p1 ∧ … ∧ pk)`), resolution
//!   against a schema.
//! * [`parser`] — textual syntax, `C1: !(t1.Team = t2.Team & t1.City !=
//!   t2.City)`, with `Display` round-tripping.
//! * [`eval`] — violation detection with full witnesses (which rows/cells).
//! * [`index`] — hash-partitioned detection for equality-led DCs (ablation
//!   A2 of DESIGN.md).
//! * [`parallel`] — the same detection split over scoped worker threads;
//!   output is identical to the serial scans at any thread count.
//! * [`fd`] — the functional-dependency subset: FD ↔ DC conversion and
//!   exact FD discovery.
//! * [`gen`] — random DC generation for scaling benchmarks.
//! * [`analyze`] / [`diagnostics`] — static analysis of DC programs:
//!   typechecking, unsatisfiability and tautology detection, subsumption,
//!   and scan-cost planning, reported as stable-coded [`Diagnostic`]s.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub(crate) mod compiled;
pub mod diagnostics;
pub mod eval;
pub mod fd;
pub mod gen;
pub mod index;
pub mod mine;
pub mod parallel;
pub mod parser;

pub use analyze::{
    analyze, analyze_with_table, scan_cost_estimates, statically_unviolable, Analysis, DcPlan,
    DcVerdict, PlanStrategy,
};
pub use ast::{CmpOp, DenialConstraint, Operand, Predicate, ResolveError, Span, TupleVar};
pub use diagnostics::{Diagnostic, Severity};
pub use eval::{
    find_all_violations, find_violations, is_clean, noisy_cells, violates_binding, violating_rows,
    violation_counts, Violation,
};
pub use fd::{discover_fds, discover_fds_approx, fds_of, FunctionalDependency};
pub use gen::{generate_dcs, DcGenConfig};
pub use index::{
    find_all_violations_indexed, find_all_violations_indexed_pruned, find_violations_indexed,
    is_clean_indexed,
};
pub use mine::{mine_dcs, MineConfig};
pub use parallel::{
    find_all_violations_par, find_all_violations_par_pruned, find_violations_par, is_clean_par,
    noisy_cells_par,
};
pub use parser::{parse_dc, parse_dc_named, parse_dcs, ParseError};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trex_table::{Schema, Table, Value};

    /// Arbitrary DC whose predicates are same-attribute pairs over C0..C3.
    fn arb_dc() -> impl Strategy<Value = DenialConstraint> {
        let attr = 0usize..4;
        let op = prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Neq),
            Just(CmpOp::Lt),
            Just(CmpOp::Leq),
            Just(CmpOp::Gt),
            Just(CmpOp::Geq),
        ];
        proptest::collection::vec((attr, op), 1..4).prop_map(|preds| {
            DenialConstraint::new(
                "P",
                preds
                    .into_iter()
                    .map(|(a, o)| Predicate::pair(format!("C{a}"), o))
                    .collect(),
            )
        })
    }

    fn arb_table() -> impl Strategy<Value = Table> {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(Value::Null), (0i64..4).prop_map(Value::Int)],
                4,
            ),
            0..7,
        )
        .prop_map(|rows| {
            Table::from_rows(
                Schema::new((0..4).map(|i| (format!("C{i}"), trex_table::DType::Int))),
                rows,
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn parser_display_roundtrip(dc in arb_dc()) {
            let printed = dc.to_string();
            let parsed = parse_dc(&printed).unwrap();
            prop_assert_eq!(dc, parsed);
        }

        #[test]
        fn indexed_equals_nested_loop(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let mut a: Vec<(usize, Option<usize>)> = find_violations(&dc, &t)
                .into_iter().map(|v| (v.row1, v.row2)).collect();
            let mut b: Vec<(usize, Option<usize>)> = find_violations_indexed(&dc, &t)
                .into_iter().map(|v| (v.row1, v.row2)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn nulling_cells_never_creates_violations(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let before = find_violations(&dc, &t).len();
            if t.num_cells() > 0 {
                let mut t2 = t.clone();
                let cell = t2.cells().next().unwrap();
                t2.set(cell, Value::Null);
                let after = find_violations(&dc, &t2).len();
                prop_assert!(after <= before,
                    "nulling a cell increased violations: {before} -> {after}");
            }
        }

        #[test]
        fn all_null_table_is_clean(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let masked = t.masked_keep(&vec![false; t.num_cells()]);
            prop_assert!(is_clean(&[dc], &masked));
        }

        #[test]
        fn unviolable_verdicts_mean_zero_witnesses(dc in arb_dc(), t in arb_table()) {
            // The soundness contract pruning rests on: a DC the analyzer
            // proves statically unviolable has an empty brute-force witness
            // list on every generated table.
            if statically_unviolable(&dc).is_some() {
                let mut dc = dc;
                dc.resolve(t.schema()).unwrap();
                prop_assert!(find_violations(&dc, &t).is_empty());
            }
        }

        #[test]
        fn pruned_scan_is_byte_identical_at_any_thread_count(
            dcs in proptest::collection::vec(arb_dc(), 1..4),
            t in arb_table(),
        ) {
            let dcs: Vec<DenialConstraint> = dcs
                .into_iter()
                .enumerate()
                .map(|(i, mut dc)| {
                    dc.name = format!("P{i}");
                    dc.resolve(t.schema()).unwrap();
                    dc
                })
                .collect();
            let serial = find_all_violations_indexed(&dcs, &t);
            prop_assert_eq!(&serial, &find_all_violations_indexed_pruned(&dcs, &t));
            for threads in [1, 2, 4, 8] {
                prop_assert_eq!(
                    &serial,
                    &find_all_violations_par_pruned(&dcs, &t, threads),
                    "threads = {}", threads
                );
            }
        }

        #[test]
        fn subsumed_dcs_find_no_new_violation_pairs(
            dcs in proptest::collection::vec(arb_dc(), 2..4),
            t in arb_table(),
        ) {
            // A subsumption verdict claims every violation pair of the
            // subsumed DC is already found by its subsumer, so dropping the
            // subsumed DC loses no (row1, row2) pair — the surviving DCs'
            // own witness lists are per-DC and untouched by construction.
            let dcs: Vec<DenialConstraint> = dcs
                .into_iter()
                .enumerate()
                .map(|(i, mut dc)| {
                    dc.name = format!("P{i}");
                    dc.resolve(t.schema()).unwrap();
                    dc
                })
                .collect();
            let analysis = analyze(&dcs, Some(t.schema()));
            for (i, v) in analysis.verdicts.iter().enumerate() {
                let Some(by) = &v.subsumed_by else { continue };
                let subsumer = dcs.iter().find(|d| &d.name == by).unwrap();
                let wins: std::collections::HashSet<(usize, Option<usize>)> =
                    find_violations(subsumer, &t)
                        .into_iter()
                        .map(|w| {
                            let (a, b) = (w.row1, w.row2);
                            // Unordered pair: the t1↔t2 renaming mirrors
                            // ordered pairs.
                            if let Some(b) = b {
                                (a.min(b), Some(a.max(b)))
                            } else {
                                (a, None)
                            }
                        })
                        .collect();
                for w in find_violations(&dcs[i], &t) {
                    let key = if let Some(b) = w.row2 {
                        (w.row1.min(b), Some(w.row1.max(b)))
                    } else {
                        (w.row1, None)
                    };
                    prop_assert!(
                        wins.contains(&key),
                        "{} subsumed by {} but pair {:?} is not covered",
                        dcs[i].name, by, key
                    );
                }
            }
        }

        #[test]
        fn fd_dc_conversion_roundtrip(lhs in proptest::collection::hash_set(0usize..4, 1..3)) {
            let fd = FunctionalDependency::new(
                lhs.iter().map(|i| format!("C{i}")),
                "C9",
            );
            let dc = fd.to_dc("X");
            let back = FunctionalDependency::from_dc(&dc).unwrap();
            prop_assert_eq!(back.rhs, fd.rhs);
            let mut a = back.lhs.clone();
            let mut b = fd.lhs.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
