//! # trex-constraints
//!
//! Denial constraints (DCs) for the T-REx reproduction: the constraint
//! language the paper's repairs are driven by ([2] in its references).
//!
//! * [`ast`] — DC abstract syntax (`∀t1,t2.¬(p1 ∧ … ∧ pk)`), resolution
//!   against a schema.
//! * [`parser`] — textual syntax, `C1: !(t1.Team = t2.Team & t1.City !=
//!   t2.City)`, with `Display` round-tripping.
//! * [`eval`] — violation detection with full witnesses (which rows/cells).
//! * [`index`] — hash-partitioned detection for equality-led DCs (ablation
//!   A2 of DESIGN.md).
//! * [`parallel`] — the same detection split over scoped worker threads;
//!   output is identical to the serial scans at any thread count.
//! * [`fd`] — the functional-dependency subset: FD ↔ DC conversion and
//!   exact FD discovery.
//! * [`gen`] — random DC generation for scaling benchmarks.

#![warn(missing_docs)]

pub mod ast;
pub(crate) mod compiled;
pub mod eval;
pub mod fd;
pub mod gen;
pub mod index;
pub mod mine;
pub mod parallel;
pub mod parser;

pub use ast::{CmpOp, DenialConstraint, Operand, Predicate, ResolveError, TupleVar};
pub use eval::{
    find_all_violations, find_violations, is_clean, noisy_cells, violates_binding, violating_rows,
    violation_counts, Violation,
};
pub use fd::{discover_fds, discover_fds_approx, fds_of, FunctionalDependency};
pub use gen::{generate_dcs, DcGenConfig};
pub use index::{find_all_violations_indexed, find_violations_indexed, is_clean_indexed};
pub use mine::{mine_dcs, MineConfig};
pub use parallel::{find_all_violations_par, find_violations_par, is_clean_par, noisy_cells_par};
pub use parser::{parse_dc, parse_dc_named, parse_dcs, ParseError};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trex_table::{Schema, Table, Value};

    /// Arbitrary DC whose predicates are same-attribute pairs over C0..C3.
    fn arb_dc() -> impl Strategy<Value = DenialConstraint> {
        let attr = 0usize..4;
        let op = prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Neq),
            Just(CmpOp::Lt),
            Just(CmpOp::Leq),
            Just(CmpOp::Gt),
            Just(CmpOp::Geq),
        ];
        proptest::collection::vec((attr, op), 1..4).prop_map(|preds| {
            DenialConstraint::new(
                "P",
                preds
                    .into_iter()
                    .map(|(a, o)| Predicate::pair(format!("C{a}"), o))
                    .collect(),
            )
        })
    }

    fn arb_table() -> impl Strategy<Value = Table> {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(Value::Null), (0i64..4).prop_map(Value::Int)],
                4,
            ),
            0..7,
        )
        .prop_map(|rows| {
            Table::from_rows(
                Schema::new((0..4).map(|i| (format!("C{i}"), trex_table::DType::Int))),
                rows,
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn parser_display_roundtrip(dc in arb_dc()) {
            let printed = dc.to_string();
            let parsed = parse_dc(&printed).unwrap();
            prop_assert_eq!(dc, parsed);
        }

        #[test]
        fn indexed_equals_nested_loop(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let mut a: Vec<(usize, Option<usize>)> = find_violations(&dc, &t)
                .into_iter().map(|v| (v.row1, v.row2)).collect();
            let mut b: Vec<(usize, Option<usize>)> = find_violations_indexed(&dc, &t)
                .into_iter().map(|v| (v.row1, v.row2)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn nulling_cells_never_creates_violations(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let before = find_violations(&dc, &t).len();
            if t.num_cells() > 0 {
                let mut t2 = t.clone();
                let cell = t2.cells().next().unwrap();
                t2.set(cell, Value::Null);
                let after = find_violations(&dc, &t2).len();
                prop_assert!(after <= before,
                    "nulling a cell increased violations: {before} -> {after}");
            }
        }

        #[test]
        fn all_null_table_is_clean(dc in arb_dc(), t in arb_table()) {
            let mut dc = dc;
            dc.resolve(t.schema()).unwrap();
            let masked = t.masked_keep(&vec![false; t.num_cells()]);
            prop_assert!(is_clean(&[dc], &masked));
        }

        #[test]
        fn fd_dc_conversion_roundtrip(lhs in proptest::collection::hash_set(0usize..4, 1..3)) {
            let fd = FunctionalDependency::new(
                lhs.iter().map(|i| format!("C{i}")),
                "C9",
            );
            let dc = fd.to_dc("X");
            let back = FunctionalDependency::from_dc(&dc).unwrap();
            prop_assert_eq!(back.rhs, fd.rhs);
            let mut a = back.lhs.clone();
            let mut b = fd.lhs.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
