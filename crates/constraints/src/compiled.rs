//! Code-level predicate evaluation over a dictionary-encoded table.
//!
//! [`CompiledDc`] splits a resolved DC's predicates once per scan into
//! *fast* predicates — both operands are attributes of the **same** column,
//! so they evaluate as two `u32` loads plus a code comparison through the
//! column's [`Dictionary`](trex_table::Dictionary) — and *slow* predicates
//! (constants or cross-column attribute pairs), which fall back to the
//! exact [`Value`](trex_table::Value)-level evaluation. The split is a pure
//! boolean pre-filter: when a binding passes, the caller builds the witness
//! with the existing value-level machinery, so the output of an encoded
//! scan is byte-identical to the unencoded one.

use crate::ast::{CmpOp, DenialConstraint, Operand, Predicate, TupleVar};
use crate::eval::{operand_value, Violation};
use std::cmp::Ordering;
use trex_table::{AttrId, CellRef, Dictionary, EncodedTable, Table};

/// A same-column attribute-vs-attribute predicate, evaluable on codes.
struct FastPred {
    attr: AttrId,
    op: CmpOp,
    lvar: TupleVar,
    rvar: TupleVar,
}

/// A resolved DC with its predicates pre-sorted into code-level and
/// value-level evaluation paths (see the module docs).
pub(crate) struct CompiledDc<'a> {
    dc: &'a DenialConstraint,
    /// The DC name as a shareable `Arc`, cloned (refcounted) into every
    /// witness instead of heap-copied.
    name: std::sync::Arc<str>,
    fast: Vec<FastPred>,
    slow: Vec<&'a Predicate>,
    /// The `(var, attr)` pairs the predicates read, deduplicated in
    /// discovery order — the witness-cell template of [`CompiledDc::witness`].
    cells: Vec<(TupleVar, AttrId)>,
}

fn row_of(var: TupleVar, r1: usize, r2: usize) -> usize {
    match var {
        TupleVar::T1 => r1,
        TupleVar::T2 => r2,
    }
}

impl<'a> CompiledDc<'a> {
    /// Split `dc`'s predicates into fast (same-column code compares) and
    /// slow (everything else). `dc` must be resolved; unresolved attribute
    /// predicates compile to the slow path, which panics exactly like the
    /// unencoded scan does.
    pub(crate) fn compile(dc: &'a DenialConstraint) -> CompiledDc<'a> {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let mut cells: Vec<(TupleVar, AttrId)> = Vec::new();
        for p in &dc.predicates {
            for o in [&p.left, &p.right] {
                if let Operand::Attr {
                    var,
                    attr_id: Some(a),
                    ..
                } = o
                {
                    if !cells.contains(&(*var, *a)) {
                        cells.push((*var, *a));
                    }
                }
            }
            match (&p.left, &p.right) {
                (
                    Operand::Attr {
                        var: lv,
                        attr_id: Some(la),
                        ..
                    },
                    Operand::Attr {
                        var: rv,
                        attr_id: Some(ra),
                        ..
                    },
                ) if la == ra => fast.push(FastPred {
                    attr: *la,
                    op: p.op,
                    lvar: *lv,
                    rvar: *rv,
                }),
                _ => slow.push(p),
            }
        }
        CompiledDc {
            dc,
            name: std::sync::Arc::from(dc.name.as_str()),
            fast,
            slow,
            cells,
        }
    }

    /// The constraint this was compiled from.
    pub(crate) fn dc(&self) -> &'a DenialConstraint {
        self.dc
    }

    /// The witness for a known-violating ordered binding `(r1, r2)` with
    /// `r1 != r2`: the cells come from the precomputed `(var, attr)`
    /// template, which deduplicates exactly like a per-pair `CellRef` scan
    /// does as long as the two rows differ.
    pub(crate) fn witness(&self, r1: usize, r2: usize) -> Violation {
        debug_assert_ne!(r1, r2, "the cell template assumes distinct rows");
        Violation {
            constraint: self.name.clone(),
            row1: r1,
            row2: Some(r2),
            cells: self
                .cells
                .iter()
                .map(|&(var, attr)| CellRef::new(row_of(var, r1, r2), attr))
                .collect(),
        }
    }

    /// Resolve each fast predicate's column slice and dictionary against one
    /// encoding, so the per-pair loop runs on locals instead of re-indexing
    /// `enc` for every binding. Fast *equality-join* predicates on
    /// `skip_key` attributes are dropped: inside an equality group every row
    /// shares one non-null code per key attribute, and a code is always
    /// sql-equal to itself, so those predicates hold tautologically.
    pub(crate) fn bind<'e>(
        &self,
        enc: &'e EncodedTable,
        skip_key: &[AttrId],
    ) -> BoundDc<'a, '_, 'e> {
        let fast = self
            .fast
            .iter()
            .filter(|f| !(f.op == CmpOp::Eq && f.lvar != f.rvar && skip_key.contains(&f.attr)))
            .map(|f| BoundFast {
                codes: enc.codes(f.attr),
                dict: enc.dict(f.attr),
                op: f.op,
                lvar: f.lvar,
                rvar: f.rvar,
            })
            .collect();
        BoundDc {
            fast,
            slow: &self.slow,
        }
    }

    /// Does the ordered binding `(t1 = r1, t2 = r2)` violate the DC (every
    /// predicate holds)? Exactly [`crate::eval::violates_binding`], with the
    /// same-column predicates answered from `enc`'s codes. One-shot
    /// convenience over [`CompiledDc::bind`] — scans bind once and reuse the
    /// bound value across the pair loop.
    #[cfg(test)]
    pub(crate) fn holds(&self, table: &Table, enc: &EncodedTable, r1: usize, r2: usize) -> bool {
        self.bind(enc, &[]).holds(table, r1, r2)
    }
}

/// A [`FastPred`] bound to one encoding: the column's code slice and
/// dictionary resolved once per scan.
struct BoundFast<'e> {
    codes: &'e [u32],
    dict: &'e Dictionary,
    op: CmpOp,
    lvar: TupleVar,
    rvar: TupleVar,
}

/// A [`CompiledDc`] bound to one [`EncodedTable`] (see [`CompiledDc::bind`]).
pub(crate) struct BoundDc<'a, 's, 'e> {
    fast: Vec<BoundFast<'e>>,
    slow: &'s [&'a Predicate],
}

impl BoundDc<'_, '_, '_> {
    /// Does the ordered binding `(t1 = r1, t2 = r2)` violate the DC? See
    /// [`CompiledDc::holds`]; any equality-join predicates skipped at bind
    /// time are treated as holding.
    #[inline]
    pub(crate) fn holds(&self, table: &Table, r1: usize, r2: usize) -> bool {
        for f in &self.fast {
            let (ca, cb) = (
                f.codes[row_of(f.lvar, r1, r2)],
                f.codes[row_of(f.rvar, r1, r2)],
            );
            let ok = match f.op {
                CmpOp::Eq => f.dict.sql_eq_codes(ca, cb),
                CmpOp::Neq => f.dict.sql_ne_codes(ca, cb),
                CmpOp::Lt => f.dict.sql_cmp_codes(ca, cb) == Some(Ordering::Less),
                CmpOp::Leq => matches!(
                    f.dict.sql_cmp_codes(ca, cb),
                    Some(Ordering::Less | Ordering::Equal)
                ),
                CmpOp::Gt => f.dict.sql_cmp_codes(ca, cb) == Some(Ordering::Greater),
                CmpOp::Geq => matches!(
                    f.dict.sql_cmp_codes(ca, cb),
                    Some(Ordering::Greater | Ordering::Equal)
                ),
            };
            if !ok {
                return false;
            }
        }
        for p in self.slow {
            let (lv, _) = operand_value(&p.left, table, r1, r2);
            let (rv, _) = operand_value(&p.right, table, r1, r2);
            if !p.op.eval(lv, rv) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::violates_binding;
    use crate::parser::parse_dc;
    use trex_table::{CellRef, TableBuilder, Value};

    fn table() -> Table {
        TableBuilder::new()
            .column("Team", trex_table::DType::Str)
            .column("City", trex_table::DType::Str)
            .column("N", trex_table::DType::Int)
            .row([Value::str("Real"), Value::str("Madrid"), Value::int(3)])
            .row([Value::str("Real"), Value::str("Capital"), Value::int(1)])
            .row([Value::str("Barca"), Value::str("Barcelona"), Value::int(3)])
            .row([Value::str("Real"), Value::Null, Value::int(2)])
            .build()
    }

    #[test]
    fn compiled_agrees_with_value_eval_on_every_binding() {
        let t = table();
        let enc = EncodedTable::encode(&t);
        for src in [
            "!(t1.Team = t2.Team & t1.City != t2.City)",
            "!(t1.Team = t2.Team & t1.N > t2.N)",
            "!(t1.N >= t2.N & t1.N <= t2.N & t1.Team != t2.Team)",
            "!(t1.City = \"Capital\")",
            "!(t1.N < t2.N)",
        ] {
            let mut dc = parse_dc(src).unwrap();
            dc.resolve(t.schema()).unwrap();
            let cdc = CompiledDc::compile(&dc);
            for i in 0..t.num_rows() {
                for j in 0..t.num_rows() {
                    assert_eq!(
                        cdc.holds(&t, &enc, i, j),
                        violates_binding(&dc, &t, i, j),
                        "{src} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_column_predicates_use_the_slow_path() {
        let mut t = table();
        t.set(CellRef::new(2, AttrId(0)), Value::str("Barcelona"));
        let mut dc = parse_dc("!(t1.Team = t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let cdc = CompiledDc::compile(&dc);
        assert!(cdc.fast.is_empty(), "cross-column pair cannot use codes");
        let enc = EncodedTable::encode(&t);
        for i in 0..t.num_rows() {
            for j in 0..t.num_rows() {
                assert_eq!(cdc.holds(&t, &enc, i, j), violates_binding(&dc, &t, i, j));
            }
        }
    }

    #[test]
    fn null_and_labeled_null_bindings_never_hold() {
        let mut t = table();
        t.set(CellRef::new(0, AttrId(0)), Value::LabeledNull(9));
        let enc = EncodedTable::encode(&t);
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let cdc = CompiledDc::compile(&dc);
        for i in 0..t.num_rows() {
            for j in 0..t.num_rows() {
                assert_eq!(cdc.holds(&t, &enc, i, j), violates_binding(&dc, &t, i, j));
            }
        }
    }
}
