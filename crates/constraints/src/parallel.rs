//! Multi-threaded violation detection.
//!
//! Violation detection is the inner loop of every repair engine
//! (detect → fix → re-detect) and of the CLI's `violations` screen, and the
//! ordered row-pair scan dominates on real tables — which makes it the
//! natural data-parallel companion to the Shapley engine's parallel
//! samplers (`trex_shapley::parallel`). The functions here split the scan
//! across a fixed worker count with [`std::thread::scope`], but with a
//! *stronger* guarantee than the samplers' `(seed, threads)` contract:
//! detection is a deterministic enumeration, so the output is **identical
//! to the serial functions at any thread count** — same witnesses, same
//! order. A thread count changes wall time only.
//!
//! Work split (always contiguous, results concatenated in worker order):
//!
//! * DCs with an equality join reuse the hash partition of
//!   [`crate::index`]: each group's ordered-pair matrix is decomposed into
//!   outer-row *blocks* ([`pair_blocks`]) — small groups are one block,
//!   giant buckets are cut along the outer-row axis — and the block list
//!   is cut into contiguous ranges balanced by pair count (`b·(b−1)` per
//!   group of size `b`). A single degenerate all-rows bucket therefore
//!   spreads across the workers instead of landing on one.
//! * DCs without an equality join chunk the outer row of the `(i, j)`
//!   nested loop; unary DCs chunk the row range.
//!
//! `threads = 1` dispatches straight to the serial code (no spawn).

use crate::ast::DenialConstraint;
use crate::compiled::CompiledDc;
use crate::eval::{collect_noisy_cells, violation_for, Violation};
use crate::index::{equality_groups, find_violations_indexed_with, scan_group_block};
use std::ops::Range;
use trex_table::{CellRef, EncodedTable, Table};

/// Split `0..items` into `threads` contiguous ranges whose sizes differ by
/// at most one (front-loaded remainder).
fn chunk_ranges(items: usize, threads: usize) -> Vec<Range<usize>> {
    let base = items / threads;
    let extra = items % threads;
    let mut start = 0;
    (0..threads)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// Split `0..costs.len()` into `threads` contiguous ranges with roughly
/// equal cumulative cost (deterministic: cut points are the prefix-sum
/// thresholds `total·(w+1)/threads`). The last range absorbs the tail.
fn partition_by_cost(costs: &[usize], threads: usize) -> Vec<Range<usize>> {
    let total: usize = costs.iter().sum();
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut cum = 0usize;
    for w in 0..threads {
        if w + 1 == threads {
            ranges.push(start..costs.len());
            break;
        }
        let target = total * (w + 1) / threads;
        let mut end = start;
        while end < costs.len() && cum < target {
            cum += costs[end];
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Run `work` over each range on its own scoped thread and concatenate the
/// results in range (= worker) order. Empty ranges contribute nothing and
/// are not spawned; a single non-empty range runs inline (no scope, no
/// spawn) — `--threads` defaults to all hardware threads, so tiny tables
/// must not pay thread overhead for scans that take microseconds.
fn scan_on_workers<F>(mut ranges: Vec<Range<usize>>, work: F) -> Vec<Violation>
where
    F: Fn(Range<usize>) -> Vec<Violation> + Sync,
{
    ranges.retain(|r| !r.is_empty());
    match ranges.len() {
        0 => return Vec::new(),
        1 => return work(ranges.pop().expect("checked len")),
        _ => {}
    }
    let per_worker = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || work(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("violation-scan worker panicked"))
            .collect::<Vec<_>>()
    });
    per_worker.into_iter().flatten().collect()
}

/// Parallel nested-loop scan (the fallback for DCs without an equality
/// join): chunk the outer row range; each worker scans its rows `i` against
/// every `j`.
fn nested_loop_par(
    cdc: &CompiledDc<'_>,
    table: &Table,
    enc: &EncodedTable,
    threads: usize,
) -> Vec<Violation> {
    let dc = cdc.dc();
    let n = table.num_rows();
    let ranges = chunk_ranges(n, threads);
    if dc.is_binary() {
        scan_on_workers(ranges, |rows| {
            let bound = cdc.bind(enc, &[]);
            let mut out = Vec::new();
            for i in rows {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    if bound.holds(table, i, j) {
                        out.push(violation_for(dc, table, i, j).expect("pre-filter agreed"));
                    }
                }
            }
            out
        })
    } else {
        scan_on_workers(ranges, |rows| {
            let bound = cdc.bind(enc, &[]);
            let mut out = Vec::new();
            for i in rows {
                if bound.holds(table, i, i) {
                    out.push(violation_for(dc, table, i, i).expect("pre-filter agreed"));
                }
            }
            out
        })
    }
}

/// One block of within-bucket pair work: the rows `outer` of group
/// `group`, to be scanned against the whole group.
struct PairBlock {
    group: usize,
    outer: Range<usize>,
}

/// Decompose the equality groups' pair matrices into scan blocks: a group
/// whose ordered-pair count fits the per-worker cost share stays one block;
/// a *giant* bucket is cut along its outer-row axis into blocks of roughly
/// the share, so it spreads across workers instead of landing on one.
/// Every outer row of a size-`b` group costs the same `b − 1` inner
/// probes, so equal row counts are equal costs and the split stays
/// balanced whatever the bucket shape. Blocks tile each group's outer loop
/// in order and groups stay in order, so concatenating block outputs
/// reproduces the serial scan exactly.
fn pair_blocks(groups: &[Vec<usize>], threads: usize) -> Vec<PairBlock> {
    let total: usize = groups.iter().map(|g| g.len() * (g.len() - 1)).sum();
    let share = (total / threads).max(1);
    let mut blocks = Vec::new();
    for (group, rows) in groups.iter().enumerate() {
        let b = rows.len();
        if b < 2 {
            continue; // no ordered pairs — nothing a scan could emit
        }
        let cost = b * (b - 1);
        if cost <= share {
            blocks.push(PairBlock { group, outer: 0..b });
            continue;
        }
        let rows_per_block = (share / (b - 1)).max(1);
        let mut start = 0;
        while start < b {
            let end = (start + rows_per_block).min(b);
            blocks.push(PairBlock {
                group,
                outer: start..end,
            });
            start = end;
        }
    }
    blocks
}

/// Find all violations of a single resolved DC on `threads` workers.
///
/// Exactly [`find_violations_indexed`] — same witnesses, same order — for
/// every thread count; `threads = 1` *is* the serial call. The
/// equality-join path splits *within* buckets too ([`pair_blocks`]), so a
/// degenerate table whose rows all share one key still parallelizes.
pub fn find_violations_par(dc: &DenialConstraint, table: &Table, threads: usize) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    find_violations_par_with(dc, table, &enc, threads)
}

/// [`find_violations_par`] against a pre-built encoding of `table`.
fn find_violations_par_with(
    dc: &DenialConstraint,
    table: &Table,
    enc: &EncodedTable,
    threads: usize,
) -> Vec<Violation> {
    assert!(threads >= 1, "threads must be >= 1 (resolve 0 first)");
    // Clamp to the available work: spawning more workers than rows (the
    // finest work unit either path has) only burns spawn/join cycles.
    let threads = threads.min(table.num_rows()).max(1);
    if threads == 1 {
        return find_violations_indexed_with(dc, table, enc);
    }
    let cdc = CompiledDc::compile(dc);
    let Some((key, groups)) = equality_groups(dc, table, enc) else {
        return nested_loop_par(&cdc, table, enc, threads);
    };
    let blocks = pair_blocks(&groups, threads);
    let threads = threads.min(blocks.len()).max(1);
    let costs: Vec<usize> = blocks
        .iter()
        .map(|blk| blk.outer.len() * (groups[blk.group].len() - 1))
        .collect();
    let ranges = partition_by_cost(&costs, threads);
    scan_on_workers(ranges, |range| {
        let mut out = Vec::new();
        for blk in &blocks[range] {
            scan_group_block(
                &cdc,
                table,
                enc,
                &key,
                &groups[blk.group],
                blk.outer.clone(),
                &mut out,
            );
        }
        out
    })
}

/// Parallel variant of [`crate::index::find_all_violations_indexed`]: every
/// DC's scan is split over `threads` workers, DCs are processed in order.
/// The table is encoded once and shared across all DC scans.
pub fn find_all_violations_par(
    dcs: &[DenialConstraint],
    table: &Table,
    threads: usize,
) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .flat_map(|dc| find_violations_par_with(dc, table, &enc, threads))
        .collect()
}

/// [`find_all_violations_par`] minus the scans of DCs that
/// [`crate::analyze::statically_unviolable`] proves can never be violated.
/// A pruned DC's witness list is provably empty on *every* table, so the
/// output is byte-identical to the unpruned scan at any thread count —
/// only the wasted work is skipped. This is the scan behind
/// `ExecConfig::prune_redundant`.
pub fn find_all_violations_par_pruned(
    dcs: &[DenialConstraint],
    table: &Table,
    threads: usize,
) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .filter(|dc| crate::analyze::statically_unviolable(dc).is_none())
        .flat_map(|dc| find_violations_par_with(dc, table, &enc, threads))
        .collect()
}

/// Parallel variant of [`crate::eval::noisy_cells`]: the distinct cells
/// implicated in any violation, sorted. Identical output at any thread
/// count (same reduction, shared with the serial path).
pub fn noisy_cells_par(dcs: &[DenialConstraint], table: &Table, threads: usize) -> Vec<CellRef> {
    collect_noisy_cells(find_all_violations_par(dcs, table, threads))
}

/// Parallel variant of [`crate::index::is_clean_indexed`].
pub fn is_clean_par(dcs: &[DenialConstraint], table: &Table, threads: usize) -> bool {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .all(|dc| find_violations_par_with(dc, table, &enc, threads).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{find_violations, noisy_cells};
    use crate::index::find_violations_indexed;
    use crate::parser::parse_dc;
    use trex_table::{TableBuilder, Value};

    /// A table with several bucket sizes, null keys, and both satisfied and
    /// violated DCs.
    fn table(rows: usize) -> Table {
        let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
        for i in 0..rows {
            let team = format!("T{}", i % 5);
            let city = format!("C{}", i % 3);
            let country = if i % 7 == 0 { "X" } else { "Y" }.to_string();
            b = b.str_row([team.as_str(), city.as_str(), country.as_str()]);
        }
        let mut t = b.build();
        if rows > 4 {
            let team = t.schema().id("Team");
            t.set(trex_table::CellRef::new(4, team), Value::Null);
        }
        t
    }

    fn resolved(src: &str, t: &Table) -> DenialConstraint {
        let mut dc = parse_dc(src).unwrap();
        dc.resolve(t.schema()).unwrap();
        dc
    }

    const DCS: [&str; 4] = [
        "!(t1.Team = t2.Team & t1.City != t2.City)",
        "!(t1.City = t2.City & t1.Country != t2.Country)",
        // No equality join: exercises the nested-loop path.
        "!(t1.Country != t2.Country & t1.City != t2.City)",
        // Unary.
        "!(t1.Country = \"X\")",
    ];

    #[test]
    fn parallel_output_is_identical_to_serial_at_every_thread_count() {
        let t = table(23);
        for src in DCS {
            let dc = resolved(src, &t);
            let serial = find_violations_indexed(&dc, &t);
            for threads in [1usize, 2, 3, 4, 8, 16] {
                let par = find_violations_par(&dc, &t, threads);
                assert_eq!(serial, par, "{src} at {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_matches_nested_loop_set() {
        // Order may differ between indexed and nested-loop scans, but the
        // violation *sets* agree; the parallel scan inherits that.
        let t = table(17);
        for src in DCS {
            let dc = resolved(src, &t);
            let mut a: Vec<(usize, Option<usize>)> = find_violations(&dc, &t)
                .into_iter()
                .map(|v| (v.row1, v.row2))
                .collect();
            let mut b: Vec<(usize, Option<usize>)> = find_violations_par(&dc, &t, 4)
                .into_iter()
                .map(|v| (v.row1, v.row2))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{src}");
        }
    }

    #[test]
    fn all_violations_and_noisy_cells_match_serial() {
        let t = table(19);
        let dcs: Vec<DenialConstraint> = DCS.iter().map(|s| resolved(s, &t)).collect();
        let serial = crate::index::find_all_violations_indexed(&dcs, &t);
        for threads in [2usize, 5] {
            assert_eq!(serial, find_all_violations_par(&dcs, &t, threads));
            assert_eq!(noisy_cells(&dcs, &t), noisy_cells_par(&dcs, &t, threads));
        }
    }

    #[test]
    fn is_clean_par_agrees() {
        let t = table(11);
        let hot = resolved(DCS[0], &t);
        let cold = resolved("!(t1.Team = t2.Team & t1.Team != t2.Team)", &t);
        assert!(!is_clean_par(&[hot], &t, 3));
        assert!(is_clean_par(&[cold], &t, 3));
    }

    #[test]
    fn empty_and_tiny_tables() {
        let t = table(0);
        let dc = resolved(DCS[0], &t);
        assert!(find_violations_par(&dc, &t, 4).is_empty());
        let t1 = table(1);
        let dc1 = resolved(DCS[0], &t1);
        assert!(find_violations_par(&dc1, &t1, 4).is_empty());
    }

    #[test]
    fn more_threads_than_rows_or_groups() {
        let t = table(3);
        for src in DCS {
            let dc = resolved(src, &t);
            assert_eq!(
                find_violations_indexed(&dc, &t),
                find_violations_par(&dc, &t, 64),
                "{src}"
            );
        }
    }

    #[test]
    fn partition_by_cost_tiles_and_balances() {
        let costs = [6usize, 0, 2, 12, 2, 0, 6, 2];
        for threads in [1usize, 2, 3, 4, 8, 12] {
            let ranges = partition_by_cost(&costs, threads);
            assert_eq!(ranges.len(), threads);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, costs.len());
        }
        // The big group lands alone-ish: no worker gets everything when the
        // cost spread allows better.
        let ranges = partition_by_cost(&costs, 2);
        let first: usize = costs[ranges[0].clone()].iter().sum();
        let second: usize = costs[ranges[1].clone()].iter().sum();
        assert!(first > 0 && second > 0, "{ranges:?}");
    }

    #[test]
    #[should_panic(expected = "threads must be >= 1")]
    fn zero_threads_panics() {
        let t = table(3);
        let dc = resolved(DCS[0], &t);
        let _ = find_violations_par(&dc, &t, 0);
    }

    /// The pathological shape the block split exists for: every row shares
    /// one equality-bucket key, so pre-split scheduling put the entire
    /// `n·(n−1)` pair scan on a single worker.
    fn giant_bucket_table(rows: usize) -> Table {
        let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
        for i in 0..rows {
            let city = format!("C{}", i % 4);
            b = b.str_row(["SameTeam", city.as_str(), "Y"]);
        }
        b.build()
    }

    #[test]
    fn giant_bucket_is_serial_identical_at_every_thread_count() {
        let t = giant_bucket_table(61);
        let dc = resolved(DCS[0], &t);
        let serial = find_violations_indexed(&dc, &t);
        assert!(!serial.is_empty(), "the bucket must actually conflict");
        for threads in [1usize, 2, 3, 4, 8, 16, 61, 64] {
            let par = find_violations_par(&dc, &t, threads);
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn giant_bucket_splits_into_multiple_blocks() {
        // One 61-row bucket at 4 threads must not be a single work unit.
        let t = giant_bucket_table(61);
        let dc = resolved(DCS[0], &t);
        let enc = EncodedTable::encode(&t);
        let (_, groups) = equality_groups(&dc, &t, &enc).unwrap();
        assert_eq!(groups.len(), 1, "all rows share the Team key");
        let blocks = pair_blocks(&groups, 4);
        assert!(blocks.len() >= 4, "got {} block(s)", blocks.len());
        // Blocks tile the group's outer rows in order.
        let mut next = 0;
        for blk in &blocks {
            assert_eq!(blk.group, 0);
            assert_eq!(blk.outer.start, next);
            next = blk.outer.end;
        }
        assert_eq!(next, 61);
    }

    #[test]
    fn pair_blocks_keep_small_groups_whole_and_skip_singletons() {
        let groups: Vec<Vec<usize>> = vec![vec![0], vec![1, 2], vec![3], vec![4, 5, 6]];
        // One worker: every group fits the share, singletons vanish.
        let spans = |threads: usize| -> Vec<(usize, Range<usize>)> {
            pair_blocks(&groups, threads)
                .iter()
                .map(|b| (b.group, b.outer.clone()))
                .collect()
        };
        assert_eq!(spans(1), vec![(1, 0..2), (3, 0..3)]);
        // Two workers: the 3-row group's cost (6) exceeds the share (4),
        // so it splits along its outer rows; the 2-row group stays whole.
        assert_eq!(spans(2), vec![(1, 0..2), (3, 0..2), (3, 2..3)]);
    }

    #[test]
    fn all_singleton_buckets_yield_no_violations() {
        // Every row its own bucket: no pairs, no blocks, empty output at
        // any thread count (and no spawns).
        let mut b = TableBuilder::new().str_columns(["Team", "City", "Country"]);
        for i in 0..9 {
            let team = format!("T{i}");
            b = b.str_row([team.as_str(), "C", "Y"]);
        }
        let t = b.build();
        let dc = resolved(DCS[0], &t);
        for threads in [1usize, 4] {
            assert!(find_violations_par(&dc, &t, threads).is_empty());
        }
    }
}
