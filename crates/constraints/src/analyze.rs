//! Static analysis of denial-constraint programs.
//!
//! Classic dependency theory says that satisfiability and implication are
//! decidable for exactly the comparison fragment our DC AST lives in, so a
//! lot can be learned about a constraint program before the first row is
//! scanned. [`analyze`] runs four passes over a parsed program and returns an
//! [`Analysis`] of structured [`Diagnostic`]s plus per-constraint verdicts
//! and a scan-cost plan report:
//!
//! 1. **Schema typecheck** — unknown attributes (`TREX-E001`), comparisons of
//!    a column with a constant of an incomparable type class (`TREX-E002`),
//!    and comparisons between incomparable columns (`TREX-E003`). Under SQL
//!    null semantics a cross-class comparison is simply *false*, so these
//!    predicates can never hold — almost certainly a typo.
//! 2. **Per-DC satisfiability** — [`statically_unviolable`] proves a DC's
//!    predicate conjunction unsatisfiable (`TREX-W101`): constant predicates
//!    that are false, reflexive predicates like `t1.A < t1.A`, contradictory
//!    predicate pairs over the same operands (`t1.A = t2.A & t1.A != t2.A`),
//!    and empty constant intervals (`t1.x < 5 & t1.x > 9`). Tautological
//!    constant predicates are flagged too (`TREX-W102`).
//! 3. **Pairwise subsumption** — constraint *D* is redundant when every
//!    predicate of some *C* is implied by a predicate of *D* (up to the
//!    `t1↔t2` renaming and operator weakening, e.g. `=` implies `<=`): then
//!    every *D*-violation is already a *C*-violation (`TREX-W103`).
//! 4. **Plan report** — per-DC scan-cost estimates from
//!    [`EncodedTable::distinct_counts`] (equality-partition fan-out), ranking
//!    constraints by expected work.
//!
//! # Soundness
//!
//! The unviolability verdict is what scan pruning rests on, so it is
//! deliberately conservative: it only uses *data-independent* reasoning that
//! stays valid under the exact null semantics of [`CmpOp::eval`] (plain
//! nulls compare false under every operator; labeled nulls equal only their
//! own label). The dense-domain assumption (`x < 5 & x > 4` is *satisfiable*
//! over ints) errs in the feasible direction — the analyzer may miss an
//! unsatisfiable DC but never claims a satisfiable one unviolable. Type
//! mismatches (`TREX-E002`/`E003`) are diagnostics only and are *not* used
//! for pruning, since a table's dynamic cell contents can disagree with its
//! declared schema.
//!
//! Subsumption is advisory (warn-only): dropping a subsumed DC would drop
//! the witnesses carrying its own name, and the `=`⇒`<=` weakening has a
//! labeled-null edge (two cells with the same null label are `=` but not
//! `<=`). The scan pruning behind `ExecConfig::prune_redundant` therefore
//! skips only [`statically_unviolable`] DCs, whose witness lists are
//! provably empty — output stays byte-identical.

use crate::ast::{CmpOp, DenialConstraint, Operand, Predicate, TupleVar};
use crate::diagnostics::{codes, json_str, Diagnostic, Severity};
use std::cmp::Ordering;
use std::collections::HashMap;
use trex_table::{DType, EncodedTable, Schema, Table, Value};

// ---------------------------------------------------------------------------
// Relation-set model
// ---------------------------------------------------------------------------

/// Bitmask over the three orderings a comparable pair can be in.
const REL_L: u8 = 1;
const REL_E: u8 = 2;
const REL_G: u8 = 4;

/// The set of orderings under which `op` holds (for a comparable pair).
/// Contradiction detection intersects these: an empty intersection means no
/// ordering satisfies both operators, and the null cases (where `sql_cmp` is
/// `None`) can never satisfy both either — checked case by case against
/// `sql_eq`/`sql_ne`, whose only extra-ordering truths (same-label `=`,
/// cross-label `!=`) never overlap between operators with disjoint masks.
fn rel_mask(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => REL_E,
        CmpOp::Neq => REL_L | REL_G,
        CmpOp::Lt => REL_L,
        CmpOp::Leq => REL_L | REL_E,
        CmpOp::Gt => REL_G,
        CmpOp::Geq => REL_G | REL_E,
    }
}

/// Comparability classes of [`DType`]s: `sql_cmp` orders within a class and
/// returns `None` across classes (ints and floats share the numeric class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Num,
    Text,
    Boolean,
}

impl TypeClass {
    fn of(dt: DType) -> TypeClass {
        match dt {
            DType::Int | DType::Float => TypeClass::Num,
            DType::Str => TypeClass::Text,
            DType::Bool => TypeClass::Boolean,
        }
    }

    fn label(self) -> &'static str {
        match self {
            TypeClass::Num => "numeric",
            TypeClass::Text => "text",
            TypeClass::Boolean => "boolean",
        }
    }
}

// ---------------------------------------------------------------------------
// Normalized predicate form
// ---------------------------------------------------------------------------

/// An operand in canonical form: attribute references by `(var, name)`,
/// constants by value. Ordered so every unordered operand pair has one
/// canonical orientation (attributes sort before constants).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum NormOperand {
    Attr(u8, String),
    Const(Value),
}

fn norm_operand(o: &Operand) -> NormOperand {
    match o {
        Operand::Attr { var, name, .. } => NormOperand::Attr(
            match var {
                TupleVar::T1 => 0,
                TupleVar::T2 => 1,
            },
            name.clone(),
        ),
        Operand::Const(v) => NormOperand::Const(v.clone()),
    }
}

/// A predicate in canonical orientation: operands sorted, operator flipped to
/// match. `t2.A > t1.A` and `t1.A < t2.A` normalize identically.
fn normalize(p: &Predicate) -> (NormOperand, CmpOp, NormOperand) {
    let l = norm_operand(&p.left);
    let r = norm_operand(&p.right);
    if l <= r {
        (l, p.op, r)
    } else {
        (r, p.op.flipped(), l)
    }
}

/// The predicate with `t1` and `t2` exchanged (the σ renaming used by the
/// subsumption pass — a binary DC is symmetric in its tuple variables over
/// the set of *unordered* row pairs).
fn swap_vars(p: &Predicate) -> Predicate {
    let swap = |o: &Operand| match o {
        Operand::Attr { var, name, .. } => Operand::attr(
            match var {
                TupleVar::T1 => TupleVar::T2,
                TupleVar::T2 => TupleVar::T1,
            },
            name.clone(),
        ),
        Operand::Const(v) => Operand::Const(v.clone()),
    };
    Predicate::new(swap(&p.left), p.op, swap(&p.right))
}

// ---------------------------------------------------------------------------
// Satisfiability
// ---------------------------------------------------------------------------

/// Is `x op1 c1 ∧ x op2 c2` satisfiable for some value `x`, given concrete
/// constants? Conservative under the dense-domain assumption: `false` is
/// only returned when no `x` can exist under the exact semantics of
/// [`CmpOp::eval`].
fn const_pair_feasible(op1: CmpOp, c1: &Value, op2: CmpOp, c2: &Value) -> bool {
    use CmpOp::*;
    let is_upper = |op: CmpOp| matches!(op, Lt | Leq);
    match (op1, op2) {
        // Dense domains: something differs from any two constants.
        (Neq, Neq) => true,
        // x = c1 pins x; substitute it into the other predicate.
        (Eq, _) => op2.eval(c1, c2),
        (_, Eq) => op1.eval(c2, c1),
        // Ordering + ≠: x must live in the ordered constant's class, and
        // `sql_ne` between concrete values of different classes is false —
        // so cross-class pairs are unsatisfiable, same-class pairs dense.
        (Neq, _) | (_, Neq) => c1.sql_cmp(c2).is_some(),
        // Two orderings: x is comparable to both constants, so the
        // constants are comparable to each other.
        _ => {
            let d = match c1.sql_cmp(c2) {
                None => return false,
                Some(d) => d,
            };
            match (is_upper(op1), is_upper(op2)) {
                // Same direction: one bound dominates, always satisfiable.
                (true, true) | (false, false) => true,
                // x below c1, x above c2: needs c2 < c1 (or equal with both
                // bounds inclusive).
                (true, false) => {
                    d == Ordering::Greater || (d == Ordering::Equal && op1 == Leq && op2 == Geq)
                }
                (false, true) => {
                    d == Ordering::Less || (d == Ordering::Equal && op1 == Geq && op2 == Leq)
                }
            }
        }
    }
}

/// Proof that `dc` can never be violated on any table, or `None`.
///
/// Only data-independent facts are used (see the module docs on soundness),
/// so a `Some` verdict licenses skipping the DC's scan entirely: its witness
/// list is empty on every input. The returned string is the human-readable
/// reason, quoting the offending predicate(s).
pub fn statically_unviolable(dc: &DenialConstraint) -> Option<String> {
    // Pass 1: single predicates that never hold. A false predicate anywhere
    // in the conjunction makes the DC unviolable.
    for p in &dc.predicates {
        match (&p.left, &p.right) {
            // Constant comparisons evaluate now, with the runtime semantics.
            (Operand::Const(a), Operand::Const(b)) if !p.op.eval(a, b) => {
                return Some(format!("constant predicate `{p}` never holds"));
            }
            // Any comparison against a plain null constant is false.
            (Operand::Const(Value::Null), _) | (_, Operand::Const(Value::Null)) => {
                return Some(format!(
                    "predicate `{p}` compares against null and never holds"
                ));
            }
            // Reflexive self-comparisons: x ≠ x, x < x, x > x never hold
            // (for nulls every comparison is false; for values sql_cmp is
            // reflexively Equal).
            (
                Operand::Attr {
                    var: v1, name: n1, ..
                },
                Operand::Attr {
                    var: v2, name: n2, ..
                },
            ) if v1 == v2 && n1 == n2 => {
                if matches!(p.op, CmpOp::Neq | CmpOp::Lt | CmpOp::Gt) {
                    return Some(format!("reflexive predicate `{p}` never holds"));
                }
            }
            _ => {}
        }
    }

    // Pass 2: contradictory predicate pairs over the same operand pair.
    // Intersect the ordering sets of every operator applied to one
    // normalized (lhs, rhs); an empty intersection is unsatisfiable even
    // under labeled nulls (same-label `=` and cross-label `!=` never rescue
    // a pair of operators with disjoint masks).
    let mut masks: HashMap<(NormOperand, NormOperand), (u8, String)> = HashMap::new();
    for p in &dc.predicates {
        let (l, op, r) = normalize(p);
        let entry = masks
            .entry((l, r))
            .or_insert((REL_L | REL_E | REL_G, p.to_string()));
        entry.0 &= rel_mask(op);
        if entry.0 == 0 {
            return Some(format!(
                "contradictory predicates `{}` and `{p}` cannot both hold",
                entry.1
            ));
        }
        entry.1 = p.to_string();
    }

    // Pass 3: empty constant intervals per (var, attr). Normalize each
    // attribute-vs-constant predicate to `attr op const` and test every pair
    // for joint satisfiability. Non-concrete constants are skipped (plain
    // nulls were already caught above; labeled-null constants have bespoke
    // equality and get no interval reasoning).
    type ConstPreds<'a> = Vec<(CmpOp, &'a Value, &'a Predicate)>;
    let mut by_attr: HashMap<(u8, String), ConstPreds> = HashMap::new();
    for p in &dc.predicates {
        let (var, name, op, c) = match (&p.left, &p.right) {
            (Operand::Attr { var, name, .. }, Operand::Const(c)) => (var, name, p.op, c),
            (Operand::Const(c), Operand::Attr { var, name, .. }) => (var, name, p.op.flipped(), c),
            _ => continue,
        };
        if !c.is_concrete() {
            continue;
        }
        let key = (
            match var {
                TupleVar::T1 => 0,
                TupleVar::T2 => 1,
            },
            name.clone(),
        );
        let prior = by_attr.entry(key).or_default();
        for (op0, c0, p0) in prior.iter() {
            if !const_pair_feasible(*op0, c0, op, c) {
                return Some(format!(
                    "predicates `{p0}` and `{p}` leave no possible value for {var}.{name}"
                ));
            }
        }
        prior.push((op, c, p));
    }

    None
}

// ---------------------------------------------------------------------------
// Subsumption
// ---------------------------------------------------------------------------

/// Does predicate `q` imply predicate `p`? True when both compare the same
/// normalized operand pair and `q`'s ordering set is a subset of `p`'s
/// (`=` implies `<=`, `<` implies `!=`, every predicate implies itself).
fn pred_implies(q: &Predicate, p: &Predicate) -> bool {
    let (ql, qop, qr) = normalize(q);
    let (pl, pop, pr) = normalize(p);
    ql == pl && qr == pr && rel_mask(qop) & !rel_mask(pop) == 0
}

/// Does `c` make `d` redundant? True when, under the identity or the
/// `t1↔t2` renaming of `c`, every predicate of `c` is implied by some
/// predicate of `d` — then `conj(d) ⇒ conj(c)` pointwise, so every
/// violation pair of `d` also violates `c`. Restricted to DCs of the same
/// arity (row-pair vs row-local scans have different binding semantics).
fn makes_redundant(c: &DenialConstraint, d: &DenialConstraint) -> bool {
    if c.predicates.is_empty() || c.is_binary() != d.is_binary() {
        return false;
    }
    let id: Vec<Predicate> = c.predicates.clone();
    let swapped: Vec<Predicate> = c.predicates.iter().map(swap_vars).collect();
    [id, swapped].iter().any(|sigma_c| {
        sigma_c
            .iter()
            .all(|p| d.predicates.iter().any(|q| pred_implies(q, p)))
    })
}

// ---------------------------------------------------------------------------
// Analysis result types
// ---------------------------------------------------------------------------

/// Per-constraint verdict of the satisfiability and subsumption passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcVerdict {
    /// Constraint name.
    pub name: String,
    /// `Some(reason)` iff the DC is statically unviolable (prunable).
    pub unviolable: Option<String>,
    /// `Some(name)` of a constraint that makes this one redundant.
    pub subsumed_by: Option<String>,
}

/// How a DC's violation scan is expected to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Hash-partition on the DC's `t1.A = t2.A` join keys.
    EqualityJoin,
    /// All ordered row pairs (no equality join key).
    NestedLoop,
    /// Row-local scan of a single-tuple DC.
    UnaryScan,
    /// Statically unviolable — the scan can be skipped outright.
    Skipped,
}

impl PlanStrategy {
    /// Stable lowercase label for text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            PlanStrategy::EqualityJoin => "equality-join",
            PlanStrategy::NestedLoop => "nested-loop",
            PlanStrategy::UnaryScan => "unary-scan",
            PlanStrategy::Skipped => "skipped",
        }
    }
}

/// Estimated scan cost of one DC against one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcPlan {
    /// Constraint name.
    pub name: String,
    /// Expected scan shape.
    pub strategy: PlanStrategy,
    /// Equality join keys (for [`PlanStrategy::EqualityJoin`]).
    pub join_attrs: Vec<String>,
    /// Estimated candidate bindings: `n` for unary scans, `n·(n−1)` for
    /// nested loops, `n²/min(Πdᵢ, n)` for an equality join over keys with
    /// distinct counts `dᵢ` (the partition fan-out bound), `0` when skipped.
    pub estimated_pairs: u64,
}

impl DcPlan {
    /// The plan as one JSON object.
    pub fn to_json(&self) -> String {
        let joins = self
            .join_attrs
            .iter()
            .map(|a| json_str(a))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{ \"name\": {}, \"strategy\": {}, \"join_attrs\": [{}], \"estimated_pairs\": {} }}",
            json_str(&self.name),
            json_str(self.strategy.label()),
            joins,
            self.estimated_pairs
        )
    }
}

/// Everything the analyzer learned about a DC program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// All findings, in deterministic order (constraint index, predicate
    /// index, code).
    pub diagnostics: Vec<Diagnostic>,
    /// One verdict per input constraint, in input order.
    pub verdicts: Vec<DcVerdict>,
    /// Scan-cost plan report, most expensive first. Empty unless the
    /// analysis was given a table ([`analyze_with_table`]).
    pub plans: Vec<DcPlan>,
}

impl Analysis {
    /// `true` iff any diagnostic is an error (lint exit code 1).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Table-derived facts that sharpen the schema passes.
struct TableFacts {
    num_rows: usize,
    /// Distinct value count per column (dictionary size), schema order.
    distinct: Vec<usize>,
    /// Per column: is it a `Str` column whose concrete values all parse as
    /// numbers (at least one)? Ordering predicates on such columns compare
    /// lexicographically, which is rarely what the author meant.
    numeric_text: Vec<bool>,
}

/// Analyze a DC program against an optional schema. Without a schema the
/// typecheck pass is skipped; the satisfiability and subsumption passes are
/// purely syntactic and always run. Plans are only produced by
/// [`analyze_with_table`].
pub fn analyze(dcs: &[DenialConstraint], schema: Option<&Schema>) -> Analysis {
    analyze_impl(dcs, schema, None)
}

/// Analyze a DC program against a concrete table: everything [`analyze`]
/// does, plus type inference over the table's contents (`TREX-W104`,
/// sharper `TREX-E002` hints) and the per-DC scan-cost plan report.
pub fn analyze_with_table(dcs: &[DenialConstraint], table: &Table) -> Analysis {
    let enc = EncodedTable::encode(table);
    let schema = table.schema();
    let numeric_text = (0..schema.arity())
        .map(|i| {
            let attr = trex_table::AttrId(i);
            if schema.attr(attr).dtype != DType::Str {
                return false;
            }
            let mut any = false;
            for v in table.column(attr) {
                match v {
                    Value::Str(s) => {
                        if s.trim().parse::<f64>().is_err() {
                            return false;
                        }
                        any = true;
                    }
                    v if !v.is_concrete() => {}
                    _ => return false,
                }
            }
            any
        })
        .collect();
    let facts = TableFacts {
        num_rows: table.num_rows(),
        distinct: enc.distinct_counts(),
        numeric_text,
    };
    analyze_impl(dcs, Some(schema), Some(facts))
}

fn analyze_impl(
    dcs: &[DenialConstraint],
    schema: Option<&Schema>,
    facts: Option<TableFacts>,
) -> Analysis {
    let mut out = Vec::new();
    let mut verdicts = Vec::with_capacity(dcs.len());

    for (i, dc) in dcs.iter().enumerate() {
        let mk = |code, severity, predicate: Option<usize>, message: String, hint| {
            let span = match predicate {
                Some(j) => Some(dc.predicates[j].span),
                None => Some(dc.span),
            }
            .filter(|s| !s.is_empty());
            Diagnostic {
                code,
                severity,
                constraint: dc.name.clone(),
                constraint_index: i,
                predicate,
                span,
                message,
                hint,
            }
        };

        // Pass 1: schema typecheck.
        if let Some(schema) = schema {
            for (j, p) in dc.predicates.iter().enumerate() {
                typecheck_predicate(p, schema, facts.as_ref(), |code, sev, msg, hint| {
                    out.push(mk(code, sev, Some(j), msg, hint));
                });
            }
        }

        // Pass 2: satisfiability, tautologies, degenerate forms.
        let unviolable = statically_unviolable(dc);
        if let Some(reason) = &unviolable {
            out.push(mk(
                codes::UNVIOLABLE,
                Severity::Warn,
                None,
                format!("constraint can never be violated: {reason}"),
                Some("its scan always returns no witnesses; remove or fix the constraint".into()),
            ));
        }
        for (j, p) in dc.predicates.iter().enumerate() {
            if let (Operand::Const(a), Operand::Const(b)) = (&p.left, &p.right) {
                if p.op.eval(a, b) {
                    out.push(mk(
                        codes::TAUTOLOGY,
                        Severity::Warn,
                        Some(j),
                        format!("constant predicate `{p}` always holds"),
                        Some("it adds nothing to the conjunction; remove it".into()),
                    ));
                }
            }
            if let (
                Operand::Attr {
                    var: v1, name: n1, ..
                },
                Operand::Attr {
                    var: v2, name: n2, ..
                },
            ) = (&p.left, &p.right)
            {
                if v1 == v2 && n1 == n2 && matches!(p.op, CmpOp::Eq | CmpOp::Leq | CmpOp::Geq) {
                    out.push(mk(
                        codes::REFLEXIVE,
                        Severity::Info,
                        Some(j),
                        format!("reflexive predicate `{p}` only acts as a not-null guard"),
                        Some(format!("it holds exactly when {v1}.{n1} is non-null")),
                    ));
                }
            }
        }
        if dc.is_binary() && !mentions_t1(dc) {
            out.push(mk(
                codes::DEGENERATE_VARS,
                Severity::Info,
                None,
                "row-pair constraint mentions only t2; it scans all ordered row pairs but reads \
                 a single row"
                    .into(),
                Some("rewrite with t1 if the rule is row-local".into()),
            ));
        }

        verdicts.push(DcVerdict {
            name: dc.name.clone(),
            unviolable,
            subsumed_by: None,
        });
    }

    // Pass 3: pairwise subsumption. A DC already proven unviolable is not
    // re-flagged (its scan is empty regardless), and never serves as the
    // reported subsumer.
    for j in 0..dcs.len() {
        if verdicts[j].unviolable.is_some() {
            continue;
        }
        for i in 0..dcs.len() {
            if i == j || verdicts[i].unviolable.is_some() {
                continue;
            }
            if !makes_redundant(&dcs[i], &dcs[j]) {
                continue;
            }
            let mutual = makes_redundant(&dcs[j], &dcs[i]);
            if mutual && i > j {
                continue; // duplicates: flag only the later one
            }
            let (verb, hint) = if mutual {
                ("duplicates", "remove one of the two")
            } else {
                (
                    "is subsumed by",
                    "every violation it finds is already found there; remove or strengthen it",
                )
            };
            out.push(Diagnostic {
                code: codes::SUBSUMED,
                severity: Severity::Warn,
                constraint: dcs[j].name.clone(),
                constraint_index: j,
                predicate: None,
                span: Some(dcs[j].span).filter(|s| !s.is_empty()),
                message: format!("constraint {verb} `{}`", dcs[i].name),
                hint: Some(hint.into()),
            });
            verdicts[j].subsumed_by = Some(dcs[i].name.clone());
            break;
        }
    }

    // Pass 4: plan report (table required).
    let plans = match (&facts, schema) {
        (Some(facts), Some(schema)) => plan_report(dcs, &verdicts, schema, facts),
        _ => Vec::new(),
    };

    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out.dedup();
    Analysis {
        diagnostics: out,
        verdicts,
        plans,
    }
}

/// Typecheck one predicate against the schema, emitting via `emit`.
fn typecheck_predicate(
    p: &Predicate,
    schema: &Schema,
    facts: Option<&TableFacts>,
    mut emit: impl FnMut(&'static str, Severity, String, Option<String>),
) {
    // Unknown attributes first; a predicate with an unresolved side gets no
    // further type reasoning.
    let mut classes: Vec<Option<(TypeClass, &str)>> = Vec::with_capacity(2);
    for o in [&p.left, &p.right] {
        match o {
            Operand::Attr { name, .. } => match schema.resolve(name) {
                None => {
                    let hint = schema
                        .names()
                        .find(|n| n.eq_ignore_ascii_case(name))
                        .map(|n| format!("did you mean {n:?}?"));
                    emit(
                        codes::UNKNOWN_ATTR,
                        Severity::Error,
                        format!("unknown attribute {name:?}"),
                        hint,
                    );
                    classes.push(None);
                }
                Some(id) => {
                    let attr = schema.attr(id);
                    classes.push(Some((TypeClass::of(attr.dtype), attr.name.as_str())));
                }
            },
            Operand::Const(_) => classes.push(None),
        }
    }

    match (&p.left, &p.right) {
        // Column vs constant.
        (Operand::Attr { .. }, Operand::Const(c)) | (Operand::Const(c), Operand::Attr { .. }) => {
            let attr_class = if matches!(p.left, Operand::Attr { .. }) {
                classes[0]
            } else {
                classes[1]
            };
            let (Some((col_class, col_name)), Some(cdt)) = (attr_class, c.dtype()) else {
                return;
            };
            let const_class = TypeClass::of(cdt);
            if col_class != const_class {
                let numeric_text = facts
                    .zip(schema.resolve(col_name))
                    .map(|(f, id)| f.numeric_text[id.index()])
                    .unwrap_or(false);
                let hint = if numeric_text && const_class == TypeClass::Num {
                    Some(format!(
                        "{col_name} is a text column (CSV columns load as strings) whose values \
                         look numeric; quote the constant or retype the column"
                    ))
                } else {
                    Some(format!(
                        "compare {col_name} against a {} constant",
                        col_class.label()
                    ))
                };
                emit(
                    codes::TYPE_MISMATCH,
                    Severity::Error,
                    format!(
                        "{} column {col_name} compared with {} constant `{c}`: the predicate \
                         never holds",
                        col_class.label(),
                        const_class.label()
                    ),
                    hint,
                );
            }
        }
        // Column vs column.
        (Operand::Attr { .. }, Operand::Attr { .. }) => {
            if let (Some((c1, n1)), Some((c2, n2))) = (classes[0], classes[1]) {
                if c1 != c2 {
                    emit(
                        codes::INCOMPARABLE_COLUMNS,
                        Severity::Error,
                        format!(
                            "comparison between {} column {n1} and {} column {n2}: the \
                             predicate never holds",
                            c1.label(),
                            c2.label()
                        ),
                        Some("cast one side or compare different columns".into()),
                    );
                }
            }
        }
        _ => {}
    }

    // Ordering over numeric-looking text: lexicographic order disagrees
    // with numeric order ("10" < "9").
    if let Some(facts) = facts {
        if matches!(p.op, CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq) {
            for cls in classes.iter().flatten() {
                let (TypeClass::Text, name) = *cls else {
                    continue;
                };
                if let Some(id) = schema.resolve(name) {
                    if facts.numeric_text[id.index()] {
                        emit(
                            codes::TEXT_ORDER,
                            Severity::Warn,
                            format!(
                                "order comparison on text column {name} whose values all look \
                                 numeric: \"10\" sorts before \"9\""
                            ),
                            Some(format!("retype {name} as a numeric column")),
                        );
                    }
                }
            }
        }
    }
}

fn mentions_t1(dc: &DenialConstraint) -> bool {
    dc.predicates.iter().any(|p| {
        [&p.left, &p.right].into_iter().any(|o| {
            matches!(
                o,
                Operand::Attr {
                    var: TupleVar::T1,
                    ..
                }
            )
        })
    })
}

/// The cost model shared by [`plan_report`] and [`scan_cost_estimates`]:
/// one DC's expected scan shape and candidate-binding count against a table
/// of `n` rows with per-column `distinct` counts (schema order).
fn dc_scan_plan(dc: &DenialConstraint, schema: &Schema, n: u64, distinct: &[usize]) -> DcPlan {
    if !dc.is_binary() {
        return DcPlan {
            name: dc.name.clone(),
            strategy: PlanStrategy::UnaryScan,
            join_attrs: Vec::new(),
            estimated_pairs: n,
        };
    }
    let join_attrs: Vec<String> = dc
        .equality_join_attrs()
        .into_iter()
        .map(String::from)
        .collect();
    if join_attrs.is_empty() {
        return DcPlan {
            name: dc.name.clone(),
            strategy: PlanStrategy::NestedLoop,
            join_attrs,
            estimated_pairs: n.saturating_mul(n.saturating_sub(1)),
        };
    }
    // Partition fan-out bound: hashing on keys with Πdᵢ distinct
    // combinations leaves ≈ n²/min(Πdᵢ, n) candidate pairs (never fewer
    // partitions than rows can fill).
    let mut fanout: u64 = 1;
    for a in &join_attrs {
        if let Some(id) = schema.resolve(a) {
            fanout = fanout.saturating_mul(distinct[id.index()] as u64);
        }
    }
    let fanout = fanout.clamp(1, n.max(1));
    DcPlan {
        name: dc.name.clone(),
        strategy: PlanStrategy::EqualityJoin,
        join_attrs,
        estimated_pairs: n.saturating_mul(n) / fanout,
    }
}

/// Per-DC scan-cost estimates against `table`, in **input order**: the
/// static analyzer's [`DcPlan::estimated_pairs`] cost model without the
/// verdict pass (every DC is costed as if it will actually be scanned).
/// This is the hook batch schedulers use to order coalition scans by
/// expected work — e.g. `trex-repair`'s batched oracle dispatches the most
/// expensive coalitions first — instead of treating every DC as equally
/// expensive. One [`EncodedTable`] encode amortizes across all DCs.
pub fn scan_cost_estimates(dcs: &[DenialConstraint], table: &Table) -> Vec<u64> {
    let enc = EncodedTable::encode(table);
    let distinct = enc.distinct_counts();
    let schema = table.schema();
    let n = table.num_rows() as u64;
    dcs.iter()
        .map(|dc| dc_scan_plan(dc, schema, n, &distinct).estimated_pairs)
        .collect()
}

/// Build the plan report: one entry per DC, most expensive first.
fn plan_report(
    dcs: &[DenialConstraint],
    verdicts: &[DcVerdict],
    schema: &Schema,
    facts: &TableFacts,
) -> Vec<DcPlan> {
    let n = facts.num_rows as u64;
    let mut plans: Vec<(usize, DcPlan)> = dcs
        .iter()
        .zip(verdicts)
        .enumerate()
        .map(|(i, (dc, v))| {
            let plan = if v.unviolable.is_some() {
                DcPlan {
                    name: dc.name.clone(),
                    strategy: PlanStrategy::Skipped,
                    join_attrs: Vec::new(),
                    estimated_pairs: 0,
                }
            } else {
                dc_scan_plan(dc, schema, n, &facts.distinct)
            };
            (i, plan)
        })
        .collect();
    plans.sort_by(|(ia, a), (ib, b)| {
        b.estimated_pairs
            .cmp(&a.estimated_pairs)
            .then_with(|| ia.cmp(ib))
    });
    plans.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operand as O;
    use crate::parser::parse_dcs;
    use trex_table::{DType, Schema, Table, Value};

    fn schema() -> Schema {
        Schema::new([
            ("Team", DType::Str),
            ("City", DType::Str),
            ("Year", DType::Int),
            ("Rank", DType::Int),
        ])
    }

    fn codes_of(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    fn attr(var: TupleVar, name: &str) -> O {
        O::attr(var, name)
    }

    /// Reflexive predicate `t1.A op t1.A`.
    fn refl(name: &str, op: CmpOp) -> Predicate {
        Predicate::new(attr(TupleVar::T1, name), op, attr(TupleVar::T1, name))
    }

    #[test]
    fn e001_unknown_attribute_with_case_hint() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::pair("team", CmpOp::Eq)],
        )];
        let a = analyze(&dcs, Some(&schema()));
        // Both sides of `t1.team = t2.team` are unknown, but the findings
        // are identical and dedup to one.
        assert_eq!(codes_of(&a), vec![codes::UNKNOWN_ATTR]);
        let d = &a.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.constraint, "C1");
        assert_eq!(d.predicate, Some(0));
        assert_eq!(d.message, "unknown attribute \"team\"");
        assert_eq!(d.hint.as_deref(), Some("did you mean \"Team\"?"));
        assert!(a.has_errors());
    }

    #[test]
    fn e002_attr_const_class_mismatch() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::new(
                attr(TupleVar::T1, "Team"),
                CmpOp::Eq,
                O::constant(7i64),
            )],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::TYPE_MISMATCH]);
        assert!(a.diagnostics[0].message.contains("never holds"));
        // Same-class comparisons are fine, including int consts on int cols.
        let ok = vec![DenialConstraint::new(
            "C2",
            vec![Predicate::new(
                attr(TupleVar::T1, "Year"),
                CmpOp::Lt,
                O::constant(1900i64),
            )],
        )];
        assert!(analyze(&ok, Some(&schema())).diagnostics.is_empty());
    }

    #[test]
    fn e002_float_const_on_int_column_is_comparable() {
        let dcs = vec![DenialConstraint::new(
            "C",
            vec![Predicate::new(
                attr(TupleVar::T1, "Year"),
                CmpOp::Gt,
                O::constant(1950.5f64),
            )],
        )];
        assert!(analyze(&dcs, Some(&schema())).diagnostics.is_empty());
    }

    #[test]
    fn e003_incomparable_columns() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::new(
                attr(TupleVar::T1, "Team"),
                CmpOp::Eq,
                attr(TupleVar::T2, "Year"),
            )],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::INCOMPARABLE_COLUMNS]);
        assert_eq!(a.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn w101_contradictory_same_pair_predicates() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::pair("Team", CmpOp::Neq),
            ],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::UNVIOLABLE]);
        assert!(a.verdicts[0].unviolable.is_some());
        assert!(a.diagnostics[0].message.contains("contradictory"));
    }

    #[test]
    fn w101_contradiction_survives_operand_flip() {
        // t1.Year < t2.Year & t2.Year < t1.Year — same pair after
        // normalization, L ∩ G = ∅.
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![
                Predicate::new(
                    attr(TupleVar::T1, "Year"),
                    CmpOp::Lt,
                    attr(TupleVar::T2, "Year"),
                ),
                Predicate::new(
                    attr(TupleVar::T2, "Year"),
                    CmpOp::Lt,
                    attr(TupleVar::T1, "Year"),
                ),
            ],
        )];
        assert!(statically_unviolable(&dcs[0]).is_some());
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::UNVIOLABLE]);
    }

    #[test]
    fn w101_empty_constant_interval() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![
                Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Lt, O::constant(5i64)),
                Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Gt, O::constant(9i64)),
            ],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::UNVIOLABLE]);
        assert!(a.diagnostics[0].message.contains("no possible value"));
        // A satisfiable interval stays quiet.
        let ok = vec![DenialConstraint::new(
            "C2",
            vec![
                Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Gt, O::constant(5i64)),
                Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Lt, O::constant(9i64)),
            ],
        )];
        assert!(analyze(&ok, Some(&schema())).diagnostics.is_empty());
    }

    #[test]
    fn w101_reflexive_and_constant_false_predicates() {
        let r = DenialConstraint::new("R", vec![refl("Year", CmpOp::Lt)]);
        assert!(statically_unviolable(&r).unwrap().contains("reflexive"));
        let cf = DenialConstraint::new(
            "F",
            vec![Predicate::new(
                O::constant(1i64),
                CmpOp::Eq,
                O::constant(2i64),
            )],
        );
        assert!(statically_unviolable(&cf)
            .unwrap()
            .contains("constant predicate"));
    }

    #[test]
    fn w102_constant_tautology() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::new(O::constant(1i64), CmpOp::Lt, O::constant(2i64)),
            ],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::TAUTOLOGY]);
        assert_eq!(a.diagnostics[0].predicate, Some(1));
        assert_eq!(a.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn w103_subsumption_with_operator_weakening() {
        // D's predicate set implies C's (`=` implies `<=`), so D finds only
        // violations C already finds: D is redundant.
        let dcs = vec![
            DenialConstraint::new("C", vec![Predicate::pair("Year", CmpOp::Leq)]),
            DenialConstraint::new(
                "D",
                vec![
                    Predicate::pair("Year", CmpOp::Eq),
                    Predicate::pair("City", CmpOp::Neq),
                ],
            ),
        ];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::SUBSUMED]);
        assert_eq!(a.diagnostics[0].constraint, "D");
        assert!(a.diagnostics[0].message.contains("subsumed by `C`"));
        assert_eq!(a.verdicts[1].subsumed_by.as_deref(), Some("C"));
        assert_eq!(a.verdicts[0].subsumed_by, None);
    }

    #[test]
    fn w103_duplicate_flags_later_constraint_only() {
        let dcs = vec![
            DenialConstraint::new("A", vec![Predicate::pair("Team", CmpOp::Eq)]),
            DenialConstraint::new("B", vec![Predicate::pair("Team", CmpOp::Eq)]),
        ];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::SUBSUMED]);
        assert_eq!(a.diagnostics[0].constraint, "B");
        assert!(a.diagnostics[0].message.contains("duplicates `A`"));
    }

    #[test]
    fn w103_subsumption_up_to_variable_swap() {
        // t2.Year < t1.Year is t1.Year < t2.Year under t1↔t2; over ordered
        // pairs their violation sets mirror, and every (r1,r2) violating D
        // violates C as (r2,r1)... but pointwise implication is what we
        // claim: swapping C's variables makes its predicate implied by D's.
        let dcs = vec![
            DenialConstraint::new(
                "C",
                vec![Predicate::new(
                    attr(TupleVar::T1, "Year"),
                    CmpOp::Lt,
                    attr(TupleVar::T2, "Year"),
                )],
            ),
            DenialConstraint::new(
                "D",
                vec![
                    Predicate::new(
                        attr(TupleVar::T2, "Year"),
                        CmpOp::Lt,
                        attr(TupleVar::T1, "Year"),
                    ),
                    Predicate::pair("Team", CmpOp::Eq),
                ],
            ),
        ];
        let a = analyze(&dcs, None);
        assert_eq!(codes_of(&a), vec![codes::SUBSUMED]);
        assert_eq!(a.diagnostics[0].constraint, "D");
    }

    #[test]
    fn w103_not_across_arity() {
        // A unary DC never subsumes a binary one (different binding
        // semantics), even with a syntactic predicate match.
        let dcs = vec![
            DenialConstraint::new(
                "U",
                vec![Predicate::new(
                    attr(TupleVar::T1, "Year"),
                    CmpOp::Lt,
                    O::constant(0i64),
                )],
            ),
            DenialConstraint::new(
                "B",
                vec![
                    Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Lt, O::constant(0i64)),
                    Predicate::pair("Team", CmpOp::Eq),
                ],
            ),
        ];
        assert!(analyze(&dcs, None).diagnostics.is_empty());
    }

    #[test]
    fn w104_order_on_numeric_text_column() {
        let table = Table::from_rows(
            Schema::new([("Code", DType::Str), ("Name", DType::Str)]),
            vec![
                vec![Value::str("10"), Value::str("x")],
                vec![Value::str("9"), Value::str("y")],
            ],
        );
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::new(
                attr(TupleVar::T1, "Code"),
                CmpOp::Lt,
                attr(TupleVar::T2, "Code"),
            )],
        )];
        let a = analyze_with_table(&dcs, &table);
        assert_eq!(codes_of(&a), vec![codes::TEXT_ORDER]);
        assert_eq!(a.diagnostics[0].severity, Severity::Warn);
        // Equality on the same column is fine, and ordering on a
        // non-numeric text column is fine.
        let eq = vec![DenialConstraint::new(
            "C2",
            vec![Predicate::pair("Code", CmpOp::Eq)],
        )];
        assert!(analyze_with_table(&eq, &table).diagnostics.is_empty());
        let name_ord = vec![DenialConstraint::new(
            "C3",
            vec![Predicate::pair("Name", CmpOp::Lt)],
        )];
        assert!(analyze_with_table(&name_ord, &table).diagnostics.is_empty());
    }

    #[test]
    fn e002_hint_mentions_csv_typing_for_numeric_text() {
        let table = Table::from_rows(
            Schema::new([("Code", DType::Str)]),
            vec![vec![Value::str("10")], vec![Value::str("9")]],
        );
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::new(
                attr(TupleVar::T1, "Code"),
                CmpOp::Eq,
                O::constant(10i64),
            )],
        )];
        let a = analyze_with_table(&dcs, &table);
        assert_eq!(codes_of(&a), vec![codes::TYPE_MISMATCH]);
        assert!(a.diagnostics[0]
            .hint
            .as_deref()
            .unwrap()
            .contains("CSV columns load as strings"));
    }

    #[test]
    fn i301_degenerate_t2_only_constraint() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![Predicate::new(
                attr(TupleVar::T2, "Year"),
                CmpOp::Lt,
                O::constant(1900i64),
            )],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::DEGENERATE_VARS]);
        assert_eq!(a.diagnostics[0].severity, Severity::Info);
        assert_eq!(a.diagnostics[0].predicate, None);
    }

    #[test]
    fn i302_reflexive_null_guard() {
        let dcs = vec![DenialConstraint::new(
            "C1",
            vec![
                Predicate::new(
                    attr(TupleVar::T1, "Year"),
                    CmpOp::Eq,
                    attr(TupleVar::T1, "Year"),
                ),
                Predicate::pair("Team", CmpOp::Eq),
            ],
        )];
        let a = analyze(&dcs, Some(&schema()));
        assert_eq!(codes_of(&a), vec![codes::REFLEXIVE]);
        assert_eq!(a.diagnostics[0].severity, Severity::Info);
        assert_eq!(a.diagnostics[0].predicate, Some(0));
    }

    #[test]
    fn diagnostics_carry_source_spans_from_parsed_programs() {
        let src = "C1: !(t1.Nope = t2.Nope)\n";
        let dcs = parse_dcs(src).unwrap();
        let a = analyze(&dcs, Some(&schema()));
        let span = a.diagnostics[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "t1.Nope = t2.Nope");
    }

    #[test]
    fn diagnostics_are_deterministically_ordered() {
        let dcs = vec![
            DenialConstraint::new(
                "C1",
                vec![
                    Predicate::pair("Nope", CmpOp::Eq),
                    Predicate::new(O::constant(1i64), CmpOp::Eq, O::constant(1i64)),
                ],
            ),
            DenialConstraint::new(
                "C2",
                vec![
                    Predicate::pair("Team", CmpOp::Eq),
                    Predicate::pair("Team", CmpOp::Neq),
                ],
            ),
        ];
        let a = analyze(&dcs, Some(&schema()));
        let keys: Vec<_> = a.diagnostics.iter().map(|d| d.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        for _ in 0..5 {
            assert_eq!(analyze(&dcs, Some(&schema())), a);
        }
        // C1's findings precede C2's; within C1, predicate 0 precedes 1.
        assert_eq!(a.diagnostics[0].constraint, "C1");
        assert!(a.diagnostics.last().unwrap().constraint == "C2");
    }

    #[test]
    fn plan_report_ranks_by_estimated_cost() {
        let table = Table::from_rows(
            Schema::new([("Team", DType::Str), ("Year", DType::Int)]),
            (0..20)
                .map(|i| vec![Value::str(format!("T{}", i % 4)), Value::int(i)])
                .collect(),
        );
        let dcs = vec![
            DenialConstraint::new(
                "Join",
                vec![
                    Predicate::pair("Team", CmpOp::Eq),
                    Predicate::pair("Year", CmpOp::Neq),
                ],
            ),
            DenialConstraint::new("Loop", vec![Predicate::pair("Year", CmpOp::Lt)]),
            DenialConstraint::new(
                "Unary",
                vec![Predicate::new(
                    attr(TupleVar::T1, "Year"),
                    CmpOp::Lt,
                    O::constant(0i64),
                )],
            ),
            DenialConstraint::new(
                "Dead",
                vec![
                    Predicate::pair("Year", CmpOp::Lt),
                    Predicate::pair("Year", CmpOp::Gt),
                ],
            ),
        ];
        let a = analyze_with_table(&dcs, &table);
        let by_name: Vec<(&str, PlanStrategy, u64)> = a
            .plans
            .iter()
            .map(|p| (p.name.as_str(), p.strategy, p.estimated_pairs))
            .collect();
        // Nested loop (20·19=380) > equality join (400/4=100) > unary (20)
        // > skipped (0); report is sorted most expensive first.
        assert_eq!(
            by_name,
            vec![
                ("Loop", PlanStrategy::NestedLoop, 380),
                ("Join", PlanStrategy::EqualityJoin, 100),
                ("Unary", PlanStrategy::UnaryScan, 20),
                ("Dead", PlanStrategy::Skipped, 0),
            ]
        );
        assert_eq!(a.plans[1].join_attrs, vec!["Team".to_string()]);
        let json = a.plans[0].to_json();
        assert!(json.contains("\"strategy\": \"nested-loop\""), "{json}");

        // The scheduler hook exposes the same cost model in input order,
        // without the verdict pass: "Dead" is costed as if scanned.
        let costs = scan_cost_estimates(&dcs, &table);
        assert_eq!(costs, vec![100, 380, 20, 380]);
    }

    #[test]
    fn const_pair_feasibility_matrix() {
        use CmpOp::*;
        let v5 = Value::int(5);
        let v9 = Value::int(9);
        let s = Value::str("x");
        // Feasible combinations.
        assert!(const_pair_feasible(Gt, &v5, Lt, &v9)); // 5 < x < 9
        assert!(const_pair_feasible(Lt, &v9, Gt, &v5));
        assert!(const_pair_feasible(Leq, &v5, Geq, &v5)); // x = 5
        assert!(const_pair_feasible(Eq, &v5, Leq, &v9));
        assert!(const_pair_feasible(Neq, &v5, Neq, &v5));
        assert!(const_pair_feasible(Lt, &v5, Lt, &v9)); // both upper
        assert!(const_pair_feasible(Neq, &v5, Lt, &v9));
        // Infeasible combinations.
        assert!(!const_pair_feasible(Lt, &v5, Gt, &v9)); // x<5 ∧ x>9
        assert!(!const_pair_feasible(Lt, &v5, Geq, &v5)); // x<5 ∧ x≥5
        assert!(!const_pair_feasible(Eq, &v5, Eq, &v9));
        assert!(!const_pair_feasible(Eq, &v5, Neq, &v5));
        assert!(!const_pair_feasible(Eq, &v5, Gt, &v9));
        // Cross-class: no value compares to both an int and a string.
        assert!(!const_pair_feasible(Lt, &v5, Lt, &s));
        assert!(!const_pair_feasible(Gt, &v5, Neq, &s));
        assert!(!const_pair_feasible(Eq, &v5, Eq, &s));
    }

    #[test]
    fn unviolable_dcs_have_no_witnesses_on_a_real_table() {
        use crate::eval::find_violations;
        let table = Table::from_rows(
            Schema::new([("Year", DType::Int)]),
            (0..8).map(|i| vec![Value::int(i % 3)]).collect(),
        );
        let dead = [
            DenialConstraint::new(
                "D1",
                vec![
                    Predicate::pair("Year", CmpOp::Eq),
                    Predicate::pair("Year", CmpOp::Neq),
                ],
            ),
            DenialConstraint::new("D2", vec![refl("Year", CmpOp::Neq)]),
            DenialConstraint::new(
                "D3",
                vec![
                    Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Lt, O::constant(1i64)),
                    Predicate::new(attr(TupleVar::T1, "Year"), CmpOp::Gt, O::constant(2i64)),
                ],
            ),
        ];
        for dc in &dead {
            assert!(statically_unviolable(dc).is_some(), "{}", dc.name);
            let resolved = dc.resolved(table.schema()).unwrap();
            assert!(
                find_violations(&resolved, &table).is_empty(),
                "{} produced witnesses",
                dc.name
            );
        }
    }
}
