//! Random denial-constraint generation for benchmarks.
//!
//! The Shapley-scaling experiments (E6/A1 in DESIGN.md) need constraint sets
//! of controllable size `n` so we can measure the exponential cost of exact
//! Shapley computation in the number of DCs. The generator emits FD-shaped
//! and order-shaped binary DCs over a given schema, deterministically per
//! seed.

use crate::ast::{CmpOp, DenialConstraint, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_table::Schema;

/// Configuration for [`generate_dcs`].
#[derive(Debug, Clone)]
pub struct DcGenConfig {
    /// Number of constraints to generate.
    pub count: usize,
    /// Maximum number of equality predicates in the body (≥ 1).
    pub max_lhs: usize,
    /// Probability that the final predicate is an order comparison (`<`)
    /// instead of `!=`.
    pub order_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of extra *redundant* DCs to append (`R1, R2, …`): each copies
    /// a base DC and weakens one predicate's operator, so the static
    /// analyzer flags it as subsumed. For exercising the analyzer and the
    /// pruning benchmarks.
    pub redundant: usize,
    /// Number of extra *statically unviolable* DCs to append (`X1, X2, …`):
    /// each has the shape `¬(t1.A < t2.A ∧ t1.A > t2.A)` — contradictory,
    /// with no equality join key, so an unpruned scan pays the full
    /// nested-loop cost for provably zero witnesses.
    pub unsat: usize,
}

impl Default for DcGenConfig {
    fn default() -> Self {
        DcGenConfig {
            count: 4,
            max_lhs: 2,
            order_fraction: 0.0,
            seed: 0,
            redundant: 0,
            unsat: 0,
        }
    }
}

/// Generate `config.count` distinct binary DCs over `schema`.
///
/// Each DC has the shape `¬(⋀ t1.X = t2.X ∧ t1.Y op t2.Y)` with `X` a random
/// nonempty attribute subset, `Y ∉ X`, and `op ∈ {≠, <}`. Names are
/// `G1, G2, …`. Requires `schema.arity() ≥ 2`.
pub fn generate_dcs(schema: &Schema, config: &DcGenConfig) -> Vec<DenialConstraint> {
    assert!(schema.arity() >= 2, "need at least two attributes");
    let names: Vec<String> = schema.names().map(str::to_string).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out: Vec<DenialConstraint> = Vec::with_capacity(config.count);
    let mut attempts = 0usize;
    while out.len() < config.count {
        attempts += 1;
        assert!(
            attempts < config.count * 100 + 1000,
            "could not generate {} distinct DCs over {} attributes",
            config.count,
            names.len()
        );
        let lhs_size = rng.gen_range(1..=config.max_lhs.max(1).min(names.len() - 1));
        let mut idx: Vec<usize> = (0..names.len()).collect();
        // Fisher-Yates prefix shuffle for the lhs + rhs choice.
        for i in 0..=lhs_size {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut lhs: Vec<usize> = idx[..lhs_size].to_vec();
        lhs.sort_unstable();
        let rhs = idx[lhs_size];
        let op = if rng.gen_bool(config.order_fraction) {
            CmpOp::Lt
        } else {
            CmpOp::Neq
        };
        let mut preds: Vec<Predicate> = lhs
            .iter()
            .map(|i| Predicate::pair(names[*i].clone(), CmpOp::Eq))
            .collect();
        preds.push(Predicate::pair(names[rhs].clone(), op));
        let candidate = DenialConstraint::new(format!("G{}", out.len() + 1), preds);
        // Distinctness up to name.
        if !out.iter().any(|d| d.predicates == candidate.predicates) {
            out.push(candidate);
        }
    }
    // Injected redundant DCs: a base DC plus a weakened copy of one of its
    // own predicates (`=`→`<=`, `<`→`<=`, `>`→`>=`). The extra predicate is
    // implied by the one it weakens, so the copy's conjunction is
    // equivalent to the base's: every violation it finds, the base already
    // finds, and the analyzer flags it as subsumed.
    for k in 0..config.redundant {
        let base = &out[rng.gen_range(0..config.count.max(1))];
        let mut preds = base.predicates.clone();
        let mut extra = preds[rng.gen_range(0..preds.len())].clone();
        extra.op = match extra.op {
            CmpOp::Eq | CmpOp::Lt => CmpOp::Leq,
            CmpOp::Gt => CmpOp::Geq,
            op => op,
        };
        preds.push(extra);
        out.push(DenialConstraint::new(format!("R{}", k + 1), preds));
    }
    // Injected unviolable DCs: contradictory order pair on one attribute,
    // deliberately without an equality join key.
    for k in 0..config.unsat {
        let a = &names[rng.gen_range(0..names.len())];
        out.push(DenialConstraint::new(
            format!("X{}", k + 1),
            vec![
                Predicate::pair(a.clone(), CmpOp::Lt),
                Predicate::pair(a.clone(), CmpOp::Gt),
            ],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::DType;

    fn schema() -> Schema {
        Schema::new([
            ("A", DType::Str),
            ("B", DType::Str),
            ("C", DType::Int),
            ("D", DType::Str),
        ])
    }

    #[test]
    fn generates_requested_count_distinct() {
        let dcs = generate_dcs(
            &schema(),
            &DcGenConfig {
                count: 10,
                max_lhs: 2,
                order_fraction: 0.3,
                seed: 42,
                redundant: 0,
                unsat: 0,
            },
        );
        assert_eq!(dcs.len(), 10);
        for i in 0..dcs.len() {
            for j in (i + 1)..dcs.len() {
                assert_ne!(dcs[i].predicates, dcs[j].predicates);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DcGenConfig {
            count: 5,
            seed: 7,
            ..Default::default()
        };
        assert_eq!(generate_dcs(&schema(), &cfg), generate_dcs(&schema(), &cfg));
    }

    #[test]
    fn generated_dcs_resolve_and_are_binary() {
        let s = schema();
        for mut dc in generate_dcs(&s, &DcGenConfig::default()) {
            dc.resolve(&s).unwrap();
            assert!(dc.is_binary());
            assert!(!dc.equality_join_attrs().is_empty());
        }
    }

    #[test]
    fn injected_dcs_are_flagged_by_the_analyzer() {
        let s = schema();
        let dcs = generate_dcs(
            &s,
            &DcGenConfig {
                count: 3,
                redundant: 2,
                unsat: 2,
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(dcs.len(), 7);
        let analysis = crate::analyze::analyze(&dcs, Some(&s));
        for dc in &dcs {
            let verdict = analysis
                .verdicts
                .iter()
                .find(|v| v.name == dc.name)
                .unwrap();
            if dc.name.starts_with('X') {
                assert!(
                    crate::analyze::statically_unviolable(dc).is_some(),
                    "{} should be unviolable",
                    dc.name
                );
                assert!(dc.equality_join_attrs().is_empty());
            } else if dc.name.starts_with('R') {
                assert!(
                    verdict.subsumed_by.is_some(),
                    "{} should be subsumed",
                    dc.name
                );
            } else {
                assert!(verdict.unviolable.is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two attributes")]
    fn tiny_schema_rejected() {
        let s = Schema::of_strings(["Only"]);
        let _ = generate_dcs(&s, &DcGenConfig::default());
    }
}
