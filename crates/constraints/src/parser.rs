//! Textual denial-constraint syntax.
//!
//! The surface syntax mirrors how the paper writes DCs, ASCII-fied:
//!
//! ```text
//! C1: !(t1.Team = t2.Team & t1.City != t2.City)
//! C2: !(t1.City = t2.City & t1.Country != t2.Country)
//! U:  !(t1.Year < 1800)
//! K:  !(t1.City = "Madrid" & t1.Country != "Spain")
//! ```
//!
//! * an optional `Name:` prefix,
//! * `!( … )` (or `not( … )`) wrapping a `&`-separated (or `and`,
//!   `∧`-separated) conjunction,
//! * operands `t1.Attr` / `t2.Attr` (also `t1[Attr]`), double-quoted string
//!   constants, integer/float literals, and `true`/`false`,
//! * operators `=`, `==`, `!=`, `<>`, `≠`, `<`, `<=`, `≤`, `>`, `>=`, `≥`.
//!
//! `Display` on [`DenialConstraint`] emits the canonical form of this syntax,
//! so parse∘display is the identity (property-tested in `lib.rs`).

use crate::ast::{CmpOp, DenialConstraint, Operand, Predicate, Span, TupleVar};
use std::fmt;
use trex_table::Value;

/// Parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.pos,
                format!("expected {tok:?}, found {:?}", self.peek_snippet()),
            ))
        }
    }

    fn peek_snippet(&self) -> &'a str {
        let r = self.rest();
        &r[..r.len().min(12)]
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            None
        } else {
            self.pos += end;
            Some(&rest[..end])
        }
    }

    fn parse_op(&mut self) -> Result<CmpOp, ParseError> {
        self.skip_ws();
        // Longest tokens first.
        for (tok, op) in [
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Neq),
            ("<>", CmpOp::Neq),
            ("≠", CmpOp::Neq),
            ("<=", CmpOp::Leq),
            ("≤", CmpOp::Leq),
            (">=", CmpOp::Geq),
            ("≥", CmpOp::Geq),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(ParseError::new(
            self.pos,
            format!(
                "expected comparison operator, found {:?}",
                self.peek_snippet()
            ),
        ))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        // Caller has consumed the opening quote.
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    // Doubled quote = escaped quote.
                    if self.rest()[i + 1..].starts_with('"') {
                        out.push('"');
                        chars.next();
                    } else {
                        self.pos += i + 1;
                        return Ok(out);
                    }
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => out.push(other),
                    None => break,
                },
                other => out.push(other),
            }
        }
        Err(ParseError::new(self.pos, "unterminated string literal"))
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.eat("\"") {
            return Ok(Operand::Const(Value::Str(self.parse_string()?)));
        }
        // Number literal (optionally signed).
        let rest = self.rest();
        if rest.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+') {
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == 'E'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let text = &rest[..end];
            if let Ok(i) = text.parse::<i64>() {
                self.pos += end;
                return Ok(Operand::Const(Value::Int(i)));
            }
            if let Ok(x) = text.parse::<f64>() {
                self.pos += end;
                return Ok(Operand::Const(Value::Float(x)));
            }
            return Err(ParseError::new(
                start,
                format!("bad number literal {text:?}"),
            ));
        }
        let ident = self
            .ident()
            .ok_or_else(|| ParseError::new(start, "expected operand"))?;
        match ident {
            "true" => Ok(Operand::Const(Value::Bool(true))),
            "false" => Ok(Operand::Const(Value::Bool(false))),
            "t1" | "t2" => {
                let var = if ident == "t1" {
                    TupleVar::T1
                } else {
                    TupleVar::T2
                };
                // `t1.Attr` or `t1[Attr]`
                if self.eat(".") {
                    let attr = self
                        .ident()
                        .ok_or_else(|| ParseError::new(self.pos, "expected attribute name"))?;
                    return Ok(Operand::attr(var, attr));
                }
                if self.eat("[") {
                    let attr = self
                        .ident()
                        .ok_or_else(|| ParseError::new(self.pos, "expected attribute name"))?;
                    self.expect("]")?;
                    return Ok(Operand::attr(var, attr));
                }
                Err(ParseError::new(
                    self.pos,
                    "expected '.' or '[' after tuple variable",
                ))
            }
            other => Err(ParseError::new(
                start,
                format!("expected operand, found identifier {other:?}"),
            )),
        }
    }

    fn parse_conjunct_separator(&mut self) -> bool {
        self.eat("&&") || self.eat("&") || self.eat("∧") || {
            // word `and`
            let save = self.pos;
            if let Some(id) = self.ident() {
                if id.eq_ignore_ascii_case("and") {
                    return true;
                }
            }
            self.pos = save;
            false
        }
    }

    fn parse_dc(&mut self, default_name: &str) -> Result<DenialConstraint, ParseError> {
        self.skip_ws();
        let dc_start = self.pos;
        // Optional `Name:` prefix (identifier followed by ':').
        let save = self.pos;
        let name = match self.ident() {
            Some(id) if self.eat(":") => id.to_string(),
            _ => {
                self.pos = save;
                default_name.to_string()
            }
        };
        self.skip_ws();
        if !(self.eat("!") || {
            let save = self.pos;
            match self.ident() {
                Some(id) if id.eq_ignore_ascii_case("not") => true,
                _ => {
                    self.pos = save;
                    false
                }
            }
        }) {
            return Err(ParseError::new(self.pos, "expected '!' or 'not'"));
        }
        self.expect("(")?;
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            let pred_start = self.pos;
            let left = self.parse_operand()?;
            let op = self.parse_op()?;
            let right = self.parse_operand()?;
            predicates
                .push(Predicate::new(left, op, right).with_span(Span::new(pred_start, self.pos)));
            if !self.parse_conjunct_separator() {
                break;
            }
        }
        self.expect(")")?;
        Ok(DenialConstraint::new(name, predicates).with_span(Span::new(dc_start, self.pos)))
    }
}

/// Parse a single DC. `default_name` is used when the input has no `Name:`
/// prefix.
pub fn parse_dc_named(input: &str, default_name: &str) -> Result<DenialConstraint, ParseError> {
    let mut p = Parser::new(input);
    let dc = p.parse_dc(default_name)?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(ParseError::new(
            p.pos,
            format!("trailing input {:?}", p.peek_snippet()),
        ));
    }
    Ok(dc)
}

/// Parse a single DC (default name `C`).
pub fn parse_dc(input: &str) -> Result<DenialConstraint, ParseError> {
    parse_dc_named(input, "C")
}

/// Parse a newline-separated list of DCs. Blank lines and `#` comment lines
/// are skipped; unnamed DCs get the first unused positional name `Cn`.
/// Duplicate names are rejected: rule lists and explanations address
/// constraints by name, so a repeated name would silently shadow an earlier
/// constraint. Error positions are byte offsets into the full input.
pub fn parse_dcs(input: &str) -> Result<Vec<DenialConstraint>, ParseError> {
    let mut out: Vec<DenialConstraint> = Vec::new();
    let mut offset = 0;
    for raw in input.split_inclusive('\n') {
        let line_start = offset;
        offset += raw.len();
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Offset of the trimmed text within the full input, so positions
        // stay exact on CRLF files and indented lines.
        let text_start = line_start + (raw.len() - raw.trim_start().len());
        // First positional name not taken by an explicitly named DC.
        let mut n = out.len() + 1;
        while out.iter().any(|d| d.name == format!("C{n}")) {
            n += 1;
        }
        let mut dc = parse_dc_named(line, &format!("C{n}"))
            .map_err(|e| ParseError::new(text_start + e.position, e.message))?;
        // Rebase the per-line spans to whole-input byte offsets, matching
        // the error-position convention above.
        dc.offset_spans(text_start);
        if out.iter().any(|d| d.name == dc.name) {
            return Err(ParseError::new(
                text_start,
                format!("duplicate constraint name {:?}", dc.name),
            ));
        }
        out.push(dc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_c1() {
        let dc = parse_dc("C1: !(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        assert_eq!(dc.name, "C1");
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(dc.predicates[0].op, CmpOp::Eq);
        assert_eq!(dc.predicates[1].op, CmpOp::Neq);
        assert!(dc.is_binary());
    }

    #[test]
    fn bracket_syntax_and_unicode_ops() {
        let dc = parse_dc("!(t1[League] = t2[League] ∧ t1[Country] ≠ t2[Country])").unwrap();
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(dc.predicates[1].op, CmpOp::Neq);
    }

    #[test]
    fn not_keyword_and_and_keyword() {
        let dc = parse_dc("not(t1.A = t2.A and t1.B > t2.B)").unwrap();
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(dc.predicates[1].op, CmpOp::Gt);
    }

    #[test]
    fn constants_of_all_kinds() {
        let dc = parse_dc(
            "!(t1.City = \"Madrid\" & t1.Year >= 1900 & t1.Rate < 2.5 & t1.Active = true)",
        )
        .unwrap();
        assert_eq!(dc.predicates.len(), 4);
        assert_eq!(dc.predicates[0].right, Operand::Const(Value::str("Madrid")));
        assert_eq!(dc.predicates[1].right, Operand::Const(Value::int(1900)));
        assert_eq!(dc.predicates[2].right, Operand::Const(Value::float(2.5)));
        assert_eq!(dc.predicates[3].right, Operand::Const(Value::Bool(true)));
        assert!(!dc.is_binary());
    }

    #[test]
    fn negative_number_literal() {
        let dc = parse_dc("!(t1.Temp < -5)").unwrap();
        assert_eq!(dc.predicates[0].right, Operand::Const(Value::int(-5)));
    }

    #[test]
    fn escaped_quote_in_string() {
        let dc = parse_dc("!(t1.Name = \"O\"\"Brien\")").unwrap();
        assert_eq!(
            dc.predicates[0].right,
            Operand::Const(Value::str("O\"Brien"))
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "C3: !(t1.League = t2.League & t1.Country != t2.Country)";
        let dc = parse_dc(src).unwrap();
        let printed = dc.to_string();
        let dc2 = parse_dc(&printed).unwrap();
        assert_eq!(dc, dc2);
    }

    #[test]
    fn parse_dcs_skips_comments_and_names_by_position() {
        let dcs = parse_dcs(
            "# the paper's first two constraints\n\
             !(t1.Team = t2.Team & t1.City != t2.City)\n\
             \n\
             MyName: !(t1.City = t2.City & t1.Country != t2.Country)\n",
        )
        .unwrap();
        assert_eq!(dcs.len(), 2);
        assert_eq!(dcs[0].name, "C1");
        assert_eq!(dcs[1].name, "MyName");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_dc("!(t1.A @ t2.A)").unwrap_err();
        assert!(err.message.contains("comparison operator"), "{err}");
        let err = parse_dc("!(t1.A = t2.A").unwrap_err();
        assert!(err.message.contains("expected \")\""), "{err}");
        let err = parse_dc("(t1.A = t2.A)").unwrap_err();
        assert!(err.message.contains("'!' or 'not'"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_dc("!(t1.A = t2.A) extra").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn double_ampersand_accepted() {
        let dc = parse_dc("!(t1.A = t2.A && t1.B != t2.B)").unwrap();
        assert_eq!(dc.predicates.len(), 2);
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse_dc("!(t1.A = \"oops)").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn empty_input_parses_to_no_constraints() {
        assert_eq!(parse_dcs("").unwrap(), vec![]);
        assert_eq!(parse_dcs("\n\n  \n").unwrap(), vec![]);
        assert_eq!(parse_dcs("# only a comment\n").unwrap(), vec![]);
    }

    #[test]
    fn empty_single_dc_is_an_error_not_a_panic() {
        let err = parse_dc("").unwrap_err();
        assert!(err.message.contains("'!' or 'not'"), "{err}");
    }

    #[test]
    fn duplicate_constraint_names_rejected() {
        let err = parse_dcs(
            "K: !(t1.A = t2.A & t1.B != t2.B)\n\
             K: !(t1.B = t2.B & t1.C != t2.C)\n",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate constraint name"), "{err}");
        assert!(err.message.contains("\"K\""), "{err}");
        // The position points at the offending line, not the first one.
        assert_eq!(err.position, "K: !(t1.A = t2.A & t1.B != t2.B)\n".len());
    }

    #[test]
    fn explicit_name_colliding_with_an_assigned_positional_name_is_rejected() {
        // The first line is auto-named C1; an explicit `C1:` after it is a
        // genuine duplicate (both constraints answer to "C1").
        let err = parse_dcs(
            "!(t1.A = t2.A)\n\
             C1: !(t1.B = t2.B)\n",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn positional_names_skip_explicitly_taken_ones() {
        // `C2` is explicitly taken before the unnamed line would positionally
        // become C2 — the auto-namer must skip ahead, not spuriously reject.
        let dcs = parse_dcs(
            "C2: !(t1.A = t2.A)\n\
             !(t1.B = t2.B)\n",
        )
        .unwrap();
        assert_eq!(
            dcs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            vec!["C2", "C3"]
        );
    }

    #[test]
    fn error_positions_are_absolute_in_multiline_input() {
        // Parse errors inside a later line are rebased to full-input offsets,
        // CRLF terminators and indentation included.
        let input = "C1: !(t1.A = t2.A)\r\n  C2: !(t1.B @ t2.B)\r\n";
        let err = parse_dcs(input).unwrap_err();
        assert!(err.message.contains("comparison operator"), "{err}");
        let caret = &input[err.position..];
        assert!(caret.starts_with("@ t2.B"), "position points at {caret:?}");

        let input = "K: !(t1.A = t2.A)\r\nK: !(t1.B = t2.B)\r\n";
        let err = parse_dcs(input).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        assert!(input[err.position..].starts_with("K: !(t1.B"), "{err}");
    }

    #[test]
    fn malformed_predicate_reports_an_error() {
        // Missing right operand.
        let err = parse_dc("C1: !(t1.A =)").unwrap_err();
        assert!(err.message.contains("expected operand"), "{err}");
        // Missing operator between operands.
        let err = parse_dc("C1: !(t1.A t2.A)").unwrap_err();
        assert!(err.message.contains("comparison operator"), "{err}");
        // Dangling conjunction.
        let err = parse_dc("C1: !(t1.A = t2.A &)").unwrap_err();
        assert!(err.message.contains("expected operand"), "{err}");
        // Tuple variable without an attribute.
        let err = parse_dc("C1: !(t1 = t2.A)").unwrap_err();
        assert!(err.message.contains("'.' or '['"), "{err}");
    }

    #[test]
    fn predicate_spans_point_at_the_source_text() {
        let src = "C1: !(t1.Team = t2.Team & t1.City != t2.City)";
        let dc = parse_dc(src).unwrap();
        let text_of = |s: Span| &src[s.start..s.end];
        assert_eq!(text_of(dc.span), src);
        assert_eq!(text_of(dc.predicates[0].span), "t1.Team = t2.Team");
        assert_eq!(text_of(dc.predicates[1].span), "t1.City != t2.City");
    }

    #[test]
    fn spans_are_rebased_to_whole_input_offsets_in_parse_dcs() {
        // Comment line, CRLF terminators, and indentation: the second DC's
        // spans must still slice the original input exactly.
        let src = "# header\r\nC1: !(t1.A = t2.A)\r\n  C2: !(t1.B < 5 & t1.B > 9)\r\n";
        let dcs = parse_dcs(src).unwrap();
        let text_of = |s: Span| &src[s.start..s.end];
        assert_eq!(text_of(dcs[0].predicates[0].span), "t1.A = t2.A");
        assert_eq!(text_of(dcs[1].span), "C2: !(t1.B < 5 & t1.B > 9)");
        assert_eq!(text_of(dcs[1].predicates[0].span), "t1.B < 5");
        assert_eq!(text_of(dcs[1].predicates[1].span), "t1.B > 9");
    }

    #[test]
    fn spans_do_not_affect_equality() {
        // The display round-trip produces different spans; the DCs must
        // still compare equal (spans are diagnostic-only).
        let a = parse_dc("  C1: !(t1.A = t2.A)").unwrap();
        let b = parse_dc(&a.to_string()).unwrap();
        assert_ne!(a.span, b.span);
        assert_eq!(a, b);
        assert_eq!(a.predicates, b.predicates);
    }

    #[test]
    fn trailing_newline_is_ignored() {
        let with = parse_dcs("C1: !(t1.A = t2.A & t1.B != t2.B)\n").unwrap();
        let without = parse_dcs("C1: !(t1.A = t2.A & t1.B != t2.B)").unwrap();
        assert_eq!(with, without);
        assert_eq!(with.len(), 1);
        // Windows-style line endings also work: \r is trimmed per line.
        let crlf = parse_dcs("C1: !(t1.A = t2.A & t1.B != t2.B)\r\n").unwrap();
        assert_eq!(crlf, with);
    }
}
