//! Denial-constraint abstract syntax.
//!
//! A denial constraint (DC) over tuple variables `t1, t2` is
//!
//! ```text
//! ∀ t1, t2 . ¬( p1 ∧ p2 ∧ … ∧ pk )
//! ```
//!
//! where each predicate `p` compares two operands — `tX[Attr]` or a constant
//! — with one of `=, ≠, <, ≤, >, ≥`. The constraint is *violated* by a tuple
//! (pair) on which every predicate holds. Single-tuple DCs (only `t1`
//! mentioned) are supported as well; they express row-local rules.
//!
//! Attribute references are stored by name and *resolved* against a schema
//! into [`AttrId`]s once, so the violation-detection hot loop never touches
//! strings.

use std::fmt;
use trex_table::{AttrId, Schema, Value};

/// A half-open byte range `start..end` into the source text a constraint or
/// predicate was parsed from. Purely diagnostic: spans are ignored by
/// equality (a parsed DC still equals its re-parsed `Display` form) and by
/// evaluation. Hand-built ASTs carry the empty default span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// `true` for the default span of hand-built (unparsed) nodes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The span shifted right by `by` bytes — how `parse_dcs` rebases
    /// per-line spans to whole-input offsets.
    pub fn offset(self, by: usize) -> Span {
        Span {
            start: self.start + by,
            end: self.end + by,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Tuple variable of a (at most binary) DC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleVar {
    /// The first tuple, `t1`.
    T1,
    /// The second tuple, `t2`.
    T2,
}

impl fmt::Display for TupleVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleVar::T1 => write!(f, "t1"),
            TupleVar::T2 => write!(f, "t2"),
        }
    }
}

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
}

impl CmpOp {
    /// Evaluate the operator on two values with SQL null semantics: any
    /// comparison involving null (or incomparable types) is false.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => a.sql_eq(b),
            CmpOp::Neq => a.sql_ne(b),
            _ => match a.sql_cmp(b) {
                None => false,
                Some(ord) => matches!(
                    (self, ord),
                    (CmpOp::Lt, Less)
                        | (CmpOp::Leq, Less | Equal)
                        | (CmpOp::Gt, Greater)
                        | (CmpOp::Geq, Greater | Equal)
                ),
            },
        }
    }

    /// The operator with its arguments swapped (`<` ↦ `>`, `=` ↦ `=`, …).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Leq => CmpOp::Geq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Geq => CmpOp::Leq,
        }
    }

    /// The textual form used by the parser and `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// One side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An attribute of a tuple variable, `tX[Attr]`, stored by name and
    /// resolved lazily (`attr_id` is filled in by
    /// [`DenialConstraint::resolve`]).
    Attr {
        /// Which tuple.
        var: TupleVar,
        /// Attribute name as written.
        name: String,
        /// Resolved id, if [`DenialConstraint::resolve`] has run.
        attr_id: Option<AttrId>,
    },
    /// A literal constant.
    Const(Value),
}

impl Operand {
    /// An attribute operand, unresolved.
    pub fn attr(var: TupleVar, name: impl Into<String>) -> Self {
        Operand::Attr {
            var,
            name: name.into(),
            attr_id: None,
        }
    }

    /// A constant operand.
    pub fn constant(v: impl Into<Value>) -> Self {
        Operand::Const(v.into())
    }

    /// Does this operand mention `t2`?
    fn mentions_t2(&self) -> bool {
        matches!(
            self,
            Operand::Attr {
                var: TupleVar::T2,
                ..
            }
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr { var, name, .. } => write!(f, "{var}.{name}"),
            Operand::Const(Value::Str(s)) => write!(f, "{s:?}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A single comparison predicate.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Left operand.
    pub left: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
    /// Source byte range (diagnostic only; empty for hand-built predicates).
    pub span: Span,
}

/// Equality ignores [`Predicate::span`]: a parsed predicate equals the same
/// predicate re-parsed from its `Display` form (or hand-built), whatever
/// byte offsets each came from.
impl PartialEq for Predicate {
    fn eq(&self, other: &Self) -> bool {
        self.left == other.left && self.op == other.op && self.right == other.right
    }
}

impl Predicate {
    /// Construct a predicate (with the empty span).
    pub fn new(left: Operand, op: CmpOp, right: Operand) -> Self {
        Predicate {
            left,
            op,
            right,
            span: Span::default(),
        }
    }

    /// Attach a source span (builder style, used by the parser).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Shorthand: `t1.A op t2.A` (same attribute on both tuples).
    pub fn pair(attr: impl Into<String> + Clone, op: CmpOp) -> Self {
        Predicate::new(
            Operand::attr(TupleVar::T1, attr.clone()),
            op,
            Operand::attr(TupleVar::T2, attr),
        )
    }

    /// Does this predicate mention `t2`?
    pub fn mentions_t2(&self) -> bool {
        self.left.mentions_t2() || self.right.mentions_t2()
    }

    /// Attributes mentioned, as `(var, name)` pairs.
    pub fn attrs(&self) -> impl Iterator<Item = (TupleVar, &str)> {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(|o| match o {
                Operand::Attr { var, name, .. } => Some((*var, name.as_str())),
                Operand::Const(_) => None,
            })
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A denial constraint: name + conjunction of predicates under negation.
#[derive(Debug, Clone)]
pub struct DenialConstraint {
    /// Human-readable identifier (`C1`, `C2`, …).
    pub name: String,
    /// The predicates `p1 … pk` under the negation.
    pub predicates: Vec<Predicate>,
    /// Source byte range of the whole constraint (diagnostic only; empty
    /// for hand-built DCs).
    pub span: Span,
}

/// Equality ignores [`DenialConstraint::span`] (see [`Predicate`]'s
/// `PartialEq`): display→parse round-trips compare equal.
impl PartialEq for DenialConstraint {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.predicates == other.predicates
    }
}

/// Error produced when resolving a DC against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// The constraint being resolved.
    pub constraint: String,
    /// The attribute name that did not resolve.
    pub attr: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint {}: unknown attribute {:?}",
            self.constraint, self.attr
        )
    }
}

impl std::error::Error for ResolveError {}

impl DenialConstraint {
    /// Construct a DC (with the empty span).
    pub fn new(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        DenialConstraint {
            name: name.into(),
            predicates,
            span: Span::default(),
        }
    }

    /// Attach a source span (builder style, used by the parser).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Shift this DC's span and every predicate span right by `by` bytes —
    /// how `parse_dcs` rebases per-line parses to whole-input offsets.
    pub fn offset_spans(&mut self, by: usize) {
        self.span = self.span.offset(by);
        for p in &mut self.predicates {
            p.span = p.span.offset(by);
        }
    }

    /// `true` iff the DC mentions `t2` anywhere (binary DC).
    pub fn is_binary(&self) -> bool {
        self.predicates.iter().any(Predicate::mentions_t2)
    }

    /// Resolve every attribute reference against `schema`, filling in
    /// `attr_id`s. Must be called (directly or via the evaluator) before
    /// evaluation.
    pub fn resolve(&mut self, schema: &Schema) -> Result<(), ResolveError> {
        for p in &mut self.predicates {
            for o in [&mut p.left, &mut p.right] {
                if let Operand::Attr { name, attr_id, .. } = o {
                    match schema.resolve(name) {
                        Some(id) => *attr_id = Some(id),
                        None => {
                            return Err(ResolveError {
                                constraint: self.name.clone(),
                                attr: name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A resolved copy of this DC.
    pub fn resolved(&self, schema: &Schema) -> Result<DenialConstraint, ResolveError> {
        let mut c = self.clone();
        c.resolve(schema)?;
        Ok(c)
    }

    /// All attribute names mentioned by the DC (deduplicated, in first-use
    /// order).
    pub fn mentioned_attrs(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.predicates {
            for (_, name) in p.attrs() {
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// The equality join keys of a binary DC: attributes `A` such that the
    /// DC contains the predicate `t1.A = t2.A`. Used by the hash-partition
    /// accelerated evaluator.
    pub fn equality_join_attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for p in &self.predicates {
            if p.op != CmpOp::Eq {
                continue;
            }
            if let (
                Operand::Attr {
                    var: va, name: na, ..
                },
                Operand::Attr {
                    var: vb, name: nb, ..
                },
            ) = (&p.left, &p.right)
            {
                if va != vb && na == nb && !out.contains(&na.as_str()) {
                    out.push(na.as_str());
                }
            }
        }
        out
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: !(", self.name)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::DType;

    fn schema() -> Schema {
        Schema::new([
            ("Team", DType::Str),
            ("City", DType::Str),
            ("Year", DType::Int),
        ])
    }

    #[test]
    fn cmp_op_eval_null_semantics() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Leq,
            CmpOp::Gt,
            CmpOp::Geq,
        ] {
            assert!(!op.eval(&Value::Null, &Value::int(1)), "{op} with null");
            assert!(!op.eval(&Value::int(1), &Value::Null), "{op} with null");
        }
    }

    #[test]
    fn cmp_op_eval_orderings() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Leq.eval(&a, &b));
        assert!(CmpOp::Leq.eval(&a, &a));
        assert!(!CmpOp::Gt.eval(&a, &b));
        assert!(CmpOp::Geq.eval(&b, &a));
        assert!(CmpOp::Neq.eval(&a, &b));
        assert!(CmpOp::Eq.eval(&a, &a));
    }

    #[test]
    fn flipped_is_involutive_and_correct() {
        let a = Value::int(1);
        let b = Value::int(2);
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Leq,
            CmpOp::Gt,
            CmpOp::Geq,
        ] {
            assert_eq!(op.flipped().flipped(), op);
            assert_eq!(op.eval(&a, &b), op.flipped().eval(&b, &a));
        }
    }

    #[test]
    fn resolve_fills_ids() {
        let mut dc = DenialConstraint::new(
            "C1",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::pair("City", CmpOp::Neq),
            ],
        );
        dc.resolve(&schema()).unwrap();
        match &dc.predicates[0].left {
            Operand::Attr { attr_id, .. } => assert_eq!(*attr_id, Some(AttrId(0))),
            _ => panic!(),
        }
    }

    #[test]
    fn resolve_unknown_attr_errors() {
        let mut dc = DenialConstraint::new("C", vec![Predicate::pair("Nope", CmpOp::Eq)]);
        let err = dc.resolve(&schema()).unwrap_err();
        assert_eq!(err.attr, "Nope");
        assert_eq!(err.constraint, "C");
    }

    #[test]
    fn binary_detection() {
        let b = DenialConstraint::new("C", vec![Predicate::pair("Team", CmpOp::Eq)]);
        assert!(b.is_binary());
        let u = DenialConstraint::new(
            "U",
            vec![Predicate::new(
                Operand::attr(TupleVar::T1, "Year"),
                CmpOp::Lt,
                Operand::constant(1900i64),
            )],
        );
        assert!(!u.is_binary());
    }

    #[test]
    fn equality_join_attrs_found() {
        let dc = DenialConstraint::new(
            "C",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::pair("Year", CmpOp::Eq),
                Predicate::pair("City", CmpOp::Neq),
            ],
        );
        assert_eq!(dc.equality_join_attrs(), vec!["Team", "Year"]);
    }

    #[test]
    fn cross_attribute_equality_is_not_a_join_key() {
        let dc = DenialConstraint::new(
            "C",
            vec![Predicate::new(
                Operand::attr(TupleVar::T1, "Team"),
                CmpOp::Eq,
                Operand::attr(TupleVar::T2, "City"),
            )],
        );
        assert!(dc.equality_join_attrs().is_empty());
    }

    #[test]
    fn display_matches_parser_syntax() {
        let dc = DenialConstraint::new(
            "C1",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::new(
                    Operand::attr(TupleVar::T1, "City"),
                    CmpOp::Neq,
                    Operand::constant("Madrid"),
                ),
            ],
        );
        assert_eq!(
            dc.to_string(),
            "C1: !(t1.Team = t2.Team & t1.City != \"Madrid\")"
        );
    }

    #[test]
    fn mentioned_attrs_dedup_in_order() {
        let dc = DenialConstraint::new(
            "C",
            vec![
                Predicate::pair("Team", CmpOp::Eq),
                Predicate::pair("City", CmpOp::Neq),
                Predicate::pair("Team", CmpOp::Eq),
            ],
        );
        assert_eq!(dc.mentioned_attrs(), vec!["Team", "City"]);
    }
}
