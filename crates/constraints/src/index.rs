//! Hash-partitioned violation detection.
//!
//! Most useful DCs (and all four of the paper's) contain at least one
//! *equality join* predicate `t1.A = t2.A`. Rows can then be partitioned by
//! their key on the equality attributes; only pairs within a partition can
//! possibly violate, turning the `O(n²)` nested loop into `O(n + Σ b_i²)`
//! where `b_i` are bucket sizes. On realistic tables with selective keys this
//! is orders of magnitude faster (benchmarked in `trex-bench`:
//! `violation_detection`, ablation A2 of DESIGN.md).
//!
//! Rows with a null on any join attribute are excluded outright: a null never
//! satisfies `t1.A = t2.A`, so they cannot participate in a violation through
//! this DC — which keeps the fast path exactly equivalent to
//! [`crate::eval::find_violations`] (property-tested in `lib.rs`).

use crate::ast::DenialConstraint;
use crate::eval::{find_violations, violates_binding, Violation};
use std::collections::HashMap;
use trex_table::{Table, Value};

/// Build the partition key of `row` on `attrs`; `None` if any key cell is
/// null.
fn key_of(table: &Table, row: usize, attrs: &[trex_table::AttrId]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(attrs.len());
    for a in attrs {
        let v = table.value(row, *a);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// The equality-join partition of a binary DC: row groups sharing a key on
/// the DC's equality attributes, sorted by first member (the deterministic
/// scan order). `None` when the DC is unary, has no equality join, or its
/// join attributes do not resolve — callers fall back to the nested loop.
///
/// Shared with [`crate::parallel`]: the serial and parallel indexed scans
/// must partition identically so their outputs match violation-for-
/// violation.
pub(crate) fn equality_groups(dc: &DenialConstraint, table: &Table) -> Option<Vec<Vec<usize>>> {
    if !dc.is_binary() {
        return None;
    }
    let join_names = dc.equality_join_attrs();
    if join_names.is_empty() {
        return None;
    }
    let attrs: Vec<trex_table::AttrId> = join_names
        .iter()
        .filter_map(|n| table.schema().resolve(n))
        .collect();
    if attrs.len() != join_names.len() {
        // Unresolvable name (shouldn't happen for a resolved DC) — fall back.
        return None;
    }

    let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for row in 0..table.num_rows() {
        if let Some(key) = key_of(table, row, &attrs) {
            buckets.entry(key).or_default().push(row);
        }
    }

    // Deterministic order: iterate buckets by their first row index.
    let mut groups: Vec<Vec<usize>> = buckets.into_values().collect();
    groups.sort_by_key(|g| g[0]);
    Some(groups)
}

/// Scan all ordered pairs within one equality group, appending witnesses in
/// scan order. Shared with [`crate::parallel`] (see [`equality_groups`]).
pub(crate) fn scan_group(
    dc: &DenialConstraint,
    table: &Table,
    rows: &[usize],
    out: &mut Vec<Violation>,
) {
    scan_group_block(dc, table, rows, 0..rows.len(), out);
}

/// Scan one *block* of an equality group's pair matrix: the outer rows
/// `rows[outer]` against every row of the group, in scan order. With
/// `outer = 0..rows.len()` this is exactly [`scan_group`]; smaller blocks
/// let [`crate::parallel`] split a single giant bucket across workers
/// while keeping the concatenated output identical to the serial scan
/// (blocks tile the outer loop in order, and each block's inner loop is
/// the serial inner loop verbatim).
pub(crate) fn scan_group_block(
    dc: &DenialConstraint,
    table: &Table,
    rows: &[usize],
    outer: std::ops::Range<usize>,
    out: &mut Vec<Violation>,
) {
    for &i in &rows[outer] {
        for &j in rows {
            if i == j {
                continue;
            }
            if violates_binding(dc, table, i, j) {
                out.push(build_violation(dc, table, i, j));
            }
        }
    }
}

/// Find all violations of a resolved DC using equality-key partitioning when
/// possible; falls back to the nested loop for DCs without an equality join
/// or for unary DCs.
///
/// Output is exactly the violation set of [`find_violations`], though the
/// order may differ (callers needing a canonical order should sort).
pub fn find_violations_indexed(dc: &DenialConstraint, table: &Table) -> Vec<Violation> {
    let Some(groups) = equality_groups(dc, table) else {
        return find_violations(dc, table);
    };
    let mut out = Vec::new();
    for rows in groups {
        scan_group(dc, table, &rows, &mut out);
    }
    out
}

/// Reconstruct the witness for a known-violating ordered pair.
pub(crate) fn build_violation(
    dc: &DenialConstraint,
    _table: &Table,
    r1: usize,
    r2: usize,
) -> Violation {
    use crate::ast::{Operand, TupleVar};
    use trex_table::CellRef;
    let mut cells: Vec<CellRef> = Vec::new();
    for p in &dc.predicates {
        for o in [&p.left, &p.right] {
            if let Operand::Attr { var, attr_id, .. } = o {
                let row = match var {
                    TupleVar::T1 => r1,
                    TupleVar::T2 => r2,
                };
                let c = CellRef::new(row, attr_id.expect("resolved"));
                if !cells.contains(&c) {
                    cells.push(c);
                }
            }
        }
    }
    Violation {
        constraint: dc.name.clone(),
        row1: r1,
        row2: Some(r2),
        cells,
    }
}

/// Indexed variant of [`crate::eval::find_all_violations`].
pub fn find_all_violations_indexed(dcs: &[DenialConstraint], table: &Table) -> Vec<Violation> {
    dcs.iter()
        .flat_map(|dc| find_violations_indexed(dc, table))
        .collect()
}

/// Indexed variant of [`crate::eval::is_clean`]: short-circuits on the first
/// violation.
pub fn is_clean_indexed(dcs: &[DenialConstraint], table: &Table) -> bool {
    dcs.iter()
        .all(|dc| find_violations_indexed(dc, table).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dc;
    use trex_table::TableBuilder;

    fn sorted(mut vs: Vec<Violation>) -> Vec<(usize, Option<usize>)> {
        let mut keys: Vec<(usize, Option<usize>)> =
            vs.drain(..).map(|v| (v.row1, v.row2)).collect();
        keys.sort();
        keys
    }

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Real Madrid", "Madrid", "España"])
            .build()
    }

    #[test]
    fn indexed_matches_nested_loop() {
        let t = table();
        for src in [
            "!(t1.Team = t2.Team & t1.City != t2.City)",
            "!(t1.City = t2.City & t1.Country != t2.Country)",
            "!(t1.Team = t2.Team & t1.Country != t2.Country)",
        ] {
            let mut dc = parse_dc(src).unwrap();
            dc.resolve(t.schema()).unwrap();
            assert_eq!(
                sorted(find_violations(&dc, &t)),
                sorted(find_violations_indexed(&dc, &t)),
                "{src}"
            );
        }
    }

    #[test]
    fn witnesses_match_too() {
        let t = table();
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let mut a = find_violations(&dc, &t);
        let mut b = find_violations_indexed(&dc, &t);
        let key = |v: &Violation| (v.row1, v.row2);
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            let mut cx = x.cells.clone();
            let mut cy = y.cells.clone();
            cx.sort();
            cy.sort();
            assert_eq!(cx, cy);
        }
    }

    #[test]
    fn falls_back_without_equality_join() {
        let t = table();
        let mut dc = parse_dc("!(t1.City != t2.City & t1.Country != t2.Country)").unwrap();
        dc.resolve(t.schema()).unwrap();
        assert_eq!(
            sorted(find_violations(&dc, &t)),
            sorted(find_violations_indexed(&dc, &t))
        );
    }

    #[test]
    fn null_join_keys_never_violate() {
        let mut t = table();
        let team = t.schema().id("Team");
        t.set(trex_table::CellRef::new(1, team), trex_table::Value::Null);
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let a = sorted(find_violations(&dc, &t));
        let b = sorted(find_violations_indexed(&dc, &t));
        assert_eq!(a, b);
        assert!(!a.iter().any(|(r1, r2)| *r1 == 1 || *r2 == Some(1)));
    }

    #[test]
    fn is_clean_indexed_agrees() {
        let t = table();
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        assert!(!is_clean_indexed(&[dc.clone()], &t));
        assert_eq!(
            is_clean_indexed(&[dc.clone()], &t),
            crate::eval::is_clean(&[dc], &t)
        );
    }

    #[test]
    fn unary_dc_uses_fallback() {
        let t = table();
        let mut dc = parse_dc("!(t1.City = \"Capital\")").unwrap();
        dc.resolve(t.schema()).unwrap();
        let vs = find_violations_indexed(&dc, &t);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].row2, None);
    }
}
