//! Hash-partitioned violation detection.
//!
//! Most useful DCs (and all four of the paper's) contain at least one
//! *equality join* predicate `t1.A = t2.A`. Rows can then be partitioned by
//! their key on the equality attributes; only pairs within a partition can
//! possibly violate, turning the `O(n²)` nested loop into `O(n + Σ b_i²)`
//! where `b_i` are bucket sizes. On realistic tables with selective keys this
//! is orders of magnitude faster (benchmarked in `trex-bench`:
//! `violation_detection`, ablation A2 of DESIGN.md).
//!
//! Rows with a null on any join attribute are excluded outright: a null never
//! satisfies `t1.A = t2.A`, so they cannot participate in a violation through
//! this DC — which keeps the fast path exactly equivalent to
//! [`crate::eval::find_violations`] (property-tested in `lib.rs`).

use crate::ast::DenialConstraint;
use crate::compiled::CompiledDc;
use crate::eval::{violation_for, Violation};
use std::collections::HashMap;
use trex_table::{EncodedTable, Table};

/// Build the partition key of `row` on `attrs` as dictionary codes; `None`
/// if any key cell is null. Code equality is exactly the representational
/// `Value` equality the old `Vec<Value>` keys used (the dictionary interns
/// by it), so the buckets are unchanged — only cheaper to build.
fn key_of(enc: &EncodedTable, row: usize, attrs: &[trex_table::AttrId]) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(attrs.len());
    for a in attrs {
        let code = enc.code(row, *a);
        if enc.dict(*a).null_code() == Some(code) {
            return None;
        }
        key.push(code);
    }
    Some(key)
}

/// [`key_of`] for joins of at most two attributes, packed into one `u64`
/// (code equality on each attribute ⇔ equality of the packed word). Joins
/// on one or two columns are the overwhelmingly common shape, and the
/// oracle re-partitions a tiny masked table on every coalition repair — a
/// heap-allocated `Vec<u32>` key per row is measurable there.
fn packed_key_of(enc: &EncodedTable, row: usize, attrs: &[trex_table::AttrId]) -> Option<u64> {
    let mut key = 0u64;
    for a in attrs {
        let code = enc.code(row, *a);
        if enc.dict(*a).null_code() == Some(code) {
            return None;
        }
        key = (key << 32) | u64::from(code);
    }
    Some(key)
}

/// The equality-join partition of a binary DC: the resolved key attributes
/// and the row groups sharing a key on them, sorted by first member (the
/// deterministic scan order). `None` when the DC is unary, has no equality
/// join, or its join attributes do not resolve — callers fall back to the
/// nested loop.
///
/// Shared with [`crate::parallel`]: the serial and parallel indexed scans
/// must partition identically so their outputs match violation-for-
/// violation.
pub(crate) fn equality_groups(
    dc: &DenialConstraint,
    table: &Table,
    enc: &EncodedTable,
) -> Option<(Vec<trex_table::AttrId>, Vec<Vec<usize>>)> {
    if !dc.is_binary() {
        return None;
    }
    let join_names = dc.equality_join_attrs();
    if join_names.is_empty() {
        return None;
    }
    let attrs: Vec<trex_table::AttrId> = join_names
        .iter()
        .filter_map(|n| table.schema().resolve(n))
        .collect();
    if attrs.len() != join_names.len() {
        // Unresolvable name (shouldn't happen for a resolved DC) — fall back.
        return None;
    }

    // Same buckets either way — the packed key is just `Vec<u32>` equality
    // without the per-row allocation when the join is narrow enough.
    let mut groups: Vec<Vec<usize>> = if attrs.len() <= 2 {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for row in 0..table.num_rows() {
            if let Some(key) = packed_key_of(enc, row, &attrs) {
                buckets.entry(key).or_default().push(row);
            }
        }
        buckets.into_values().collect()
    } else {
        let mut buckets: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for row in 0..table.num_rows() {
            if let Some(key) = key_of(enc, row, &attrs) {
                buckets.entry(key).or_default().push(row);
            }
        }
        buckets.into_values().collect()
    };

    // Deterministic order: iterate buckets by their first row index.
    groups.sort_by_key(|g| g[0]);
    Some((attrs, groups))
}

/// Scan all ordered pairs within one equality group, appending witnesses in
/// scan order. `key` is the partition key of [`equality_groups`] — its
/// equality-join predicates are skipped, they hold by construction within a
/// group. Shared with [`crate::parallel`].
pub(crate) fn scan_group(
    cdc: &CompiledDc<'_>,
    table: &Table,
    enc: &EncodedTable,
    key: &[trex_table::AttrId],
    rows: &[usize],
    out: &mut Vec<Violation>,
) {
    scan_group_block(cdc, table, enc, key, rows, 0..rows.len(), out);
}

/// Scan one *block* of an equality group's pair matrix: the outer rows
/// `rows[outer]` against every row of the group, in scan order. With
/// `outer = 0..rows.len()` this is exactly [`scan_group`]; smaller blocks
/// let [`crate::parallel`] split a single giant bucket across workers
/// while keeping the concatenated output identical to the serial scan
/// (blocks tile the outer loop in order, and each block's inner loop is
/// the serial inner loop verbatim).
pub(crate) fn scan_group_block(
    cdc: &CompiledDc<'_>,
    table: &Table,
    enc: &EncodedTable,
    key: &[trex_table::AttrId],
    rows: &[usize],
    outer: std::ops::Range<usize>,
    out: &mut Vec<Violation>,
) {
    let bound = cdc.bind(enc, key);
    for &i in &rows[outer] {
        for &j in rows {
            if i == j {
                continue;
            }
            if bound.holds(table, i, j) {
                out.push(cdc.witness(i, j));
            }
        }
    }
}

/// Nested-loop scan with the compiled pre-filter: exactly
/// [`crate::eval::find_violations`] — same witnesses, same order — for DCs
/// the equality partition cannot help (no join, or unary).
pub(crate) fn nested_loop_compiled(
    cdc: &CompiledDc<'_>,
    table: &Table,
    enc: &EncodedTable,
) -> Vec<Violation> {
    let dc = cdc.dc();
    let bound = cdc.bind(enc, &[]);
    let n = table.num_rows();
    let mut out = Vec::new();
    if dc.is_binary() {
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if bound.holds(table, i, j) {
                    out.push(violation_for(dc, table, i, j).expect("pre-filter agreed"));
                }
            }
        }
    } else {
        for i in 0..n {
            if bound.holds(table, i, i) {
                out.push(violation_for(dc, table, i, i).expect("pre-filter agreed"));
            }
        }
    }
    out
}

/// Find all violations of a resolved DC using equality-key partitioning when
/// possible; falls back to the nested loop for DCs without an equality join
/// or for unary DCs. Encodes the table once; callers scanning several DCs
/// over one table should use [`find_all_violations_indexed`], which shares
/// the encoding.
///
/// Output is exactly the violation set of
/// [`crate::eval::find_violations`], though the order may differ (callers
/// needing a canonical order should sort).
pub fn find_violations_indexed(dc: &DenialConstraint, table: &Table) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    find_violations_indexed_with(dc, table, &enc)
}

/// [`find_violations_indexed`] against a pre-built encoding of `table`.
pub(crate) fn find_violations_indexed_with(
    dc: &DenialConstraint,
    table: &Table,
    enc: &EncodedTable,
) -> Vec<Violation> {
    let cdc = CompiledDc::compile(dc);
    let Some((key, groups)) = equality_groups(dc, table, enc) else {
        return nested_loop_compiled(&cdc, table, enc);
    };
    let mut out = Vec::new();
    for rows in groups {
        scan_group(&cdc, table, enc, &key, &rows, &mut out);
    }
    out
}

/// Indexed variant of [`crate::eval::find_all_violations`]. The table is
/// encoded once and shared across all DC scans.
pub fn find_all_violations_indexed(dcs: &[DenialConstraint], table: &Table) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .flat_map(|dc| find_violations_indexed_with(dc, table, &enc))
        .collect()
}

/// [`find_all_violations_indexed`] minus the scans of DCs that
/// [`crate::analyze::statically_unviolable`] proves can never be violated.
/// Serial counterpart of
/// [`crate::parallel::find_all_violations_par_pruned`]; output is
/// byte-identical to the unpruned scan.
pub fn find_all_violations_indexed_pruned(
    dcs: &[DenialConstraint],
    table: &Table,
) -> Vec<Violation> {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .filter(|dc| crate::analyze::statically_unviolable(dc).is_none())
        .flat_map(|dc| find_violations_indexed_with(dc, table, &enc))
        .collect()
}

/// Indexed variant of [`crate::eval::is_clean`]: short-circuits on the first
/// violation.
pub fn is_clean_indexed(dcs: &[DenialConstraint], table: &Table) -> bool {
    let enc = EncodedTable::encode(table);
    dcs.iter()
        .all(|dc| find_violations_indexed_with(dc, table, &enc).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::find_violations;
    use crate::parser::parse_dc;
    use trex_table::TableBuilder;

    fn sorted(mut vs: Vec<Violation>) -> Vec<(usize, Option<usize>)> {
        let mut keys: Vec<(usize, Option<usize>)> =
            vs.drain(..).map(|v| (v.row1, v.row2)).collect();
        keys.sort();
        keys
    }

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Capital", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Real Madrid", "Madrid", "España"])
            .build()
    }

    #[test]
    fn indexed_matches_nested_loop() {
        let t = table();
        for src in [
            "!(t1.Team = t2.Team & t1.City != t2.City)",
            "!(t1.City = t2.City & t1.Country != t2.Country)",
            "!(t1.Team = t2.Team & t1.Country != t2.Country)",
        ] {
            let mut dc = parse_dc(src).unwrap();
            dc.resolve(t.schema()).unwrap();
            assert_eq!(
                sorted(find_violations(&dc, &t)),
                sorted(find_violations_indexed(&dc, &t)),
                "{src}"
            );
        }
    }

    #[test]
    fn witnesses_match_too() {
        let t = table();
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let mut a = find_violations(&dc, &t);
        let mut b = find_violations_indexed(&dc, &t);
        let key = |v: &Violation| (v.row1, v.row2);
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            let mut cx = x.cells.clone();
            let mut cy = y.cells.clone();
            cx.sort();
            cy.sort();
            assert_eq!(cx, cy);
        }
    }

    #[test]
    fn falls_back_without_equality_join() {
        let t = table();
        let mut dc = parse_dc("!(t1.City != t2.City & t1.Country != t2.Country)").unwrap();
        dc.resolve(t.schema()).unwrap();
        assert_eq!(
            sorted(find_violations(&dc, &t)),
            sorted(find_violations_indexed(&dc, &t))
        );
    }

    #[test]
    fn null_join_keys_never_violate() {
        let mut t = table();
        let team = t.schema().id("Team");
        t.set(trex_table::CellRef::new(1, team), trex_table::Value::Null);
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        let a = sorted(find_violations(&dc, &t));
        let b = sorted(find_violations_indexed(&dc, &t));
        assert_eq!(a, b);
        assert!(!a.iter().any(|(r1, r2)| *r1 == 1 || *r2 == Some(1)));
    }

    #[test]
    fn is_clean_indexed_agrees() {
        let t = table();
        let mut dc = parse_dc("!(t1.Team = t2.Team & t1.City != t2.City)").unwrap();
        dc.resolve(t.schema()).unwrap();
        assert!(!is_clean_indexed(&[dc.clone()], &t));
        assert_eq!(
            is_clean_indexed(&[dc.clone()], &t),
            crate::eval::is_clean(&[dc], &t)
        );
    }

    #[test]
    fn unary_dc_uses_fallback() {
        let t = table();
        let mut dc = parse_dc("!(t1.City = \"Capital\")").unwrap();
        dc.resolve(t.schema()).unwrap();
        let vs = find_violations_indexed(&dc, &t);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].row2, None);
    }
}
