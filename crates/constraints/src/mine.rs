//! Denial-constraint discovery (a FastDC-style miner).
//!
//! The paper's reference [2] (Chu, Ilyas & Papotti, *Discovering denial
//! constraints*) supplies the DCs a T-REx deployment starts from. This
//! module implements the core of that algorithm on our substrate, scaled to
//! the workloads of this workspace:
//!
//! 1. build the **predicate space**: for every attribute, the same-attribute
//!    pair predicates `t1.A = t2.A` and `t1.A ≠ t2.A`, plus `<` / `>` for
//!    numeric attributes;
//! 2. compute the **evidence set**: for every ordered tuple pair, the set of
//!    predicates it satisfies (deduplicated into a set of bitmasks);
//! 3. a candidate DC `¬(p₁ ∧ … ∧ p_k)` is **valid** iff no evidence
//!    contains all its predicates, and **minimal** iff no proper subset is
//!    valid. Candidates are enumerated by increasing size with
//!    superset-of-valid pruning.
//!
//! Trivially unsatisfiable candidates (two predicates over the same
//! attribute, e.g. `=` together with `≠`) are excluded — they are "valid"
//! vacuously and worthless.
//!
//! The search is exponential in the predicate-space size, which is `O(4·
//! arity)` here — fine for the ≤ 10-attribute tables this workspace
//! targets, exactly like the original operates on relatively narrow
//! relations.

use crate::ast::{CmpOp, DenialConstraint, Predicate};
use std::collections::HashSet;
use trex_table::{DType, Table};

/// Configuration of the miner.
#[derive(Debug, Clone)]
pub struct MineConfig {
    /// Maximum number of predicates per DC.
    pub max_predicates: usize,
    /// Include `<` / `>` predicates for numeric attributes.
    pub order_predicates: bool,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            max_predicates: 3,
            order_predicates: false,
        }
    }
}

/// Build the predicate space for `table` (resolved against its schema).
fn predicate_space(table: &Table, config: &MineConfig) -> Vec<Predicate> {
    let mut out = Vec::new();
    for (id, attr) in table.schema().iter() {
        let _ = id;
        let mut ops = vec![CmpOp::Eq, CmpOp::Neq];
        if config.order_predicates && matches!(attr.dtype, DType::Int | DType::Float) {
            ops.push(CmpOp::Lt);
            ops.push(CmpOp::Gt);
        }
        for op in ops {
            let mut p = Predicate::pair(attr.name.clone(), op);
            // Resolve in place.
            for o in [&mut p.left, &mut p.right] {
                if let crate::ast::Operand::Attr { name, attr_id, .. } = o {
                    *attr_id = table.schema().resolve(name);
                }
            }
            out.push(p);
        }
    }
    out
}

/// Evaluate predicate `p` on the ordered row pair `(r1, r2)`.
fn satisfied(p: &Predicate, table: &Table, r1: usize, r2: usize) -> bool {
    use crate::ast::{Operand, TupleVar};
    let value = |o: &Operand| match o {
        Operand::Const(v) => v.clone(),
        Operand::Attr { var, attr_id, .. } => {
            let row = match var {
                TupleVar::T1 => r1,
                TupleVar::T2 => r2,
            };
            table.value(row, attr_id.expect("resolved")).clone()
        }
    };
    p.op.eval(&value(&p.left), &value(&p.right))
}

/// Compute the deduplicated evidence set of `table` over `predicates`
/// (bitmask per ordered tuple pair).
fn evidence_set(table: &Table, predicates: &[Predicate]) -> Vec<u64> {
    assert!(predicates.len() <= 64, "predicate space exceeds 64 bits");
    let n = table.num_rows();
    let mut out: HashSet<u64> = HashSet::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut mask = 0u64;
            for (k, p) in predicates.iter().enumerate() {
                if satisfied(p, table, i, j) {
                    mask |= 1 << k;
                }
            }
            out.insert(mask);
        }
    }
    let mut v: Vec<u64> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Mine all minimal valid DCs of `table` with at most
/// `config.max_predicates` predicates. Mined constraints are named
/// `M1, M2, …` in discovery order (smaller DCs first, then lexicographic by
/// predicate indices) and come back *resolved*.
pub fn mine_dcs(table: &Table, config: &MineConfig) -> Vec<DenialConstraint> {
    let predicates = predicate_space(table, config);
    let evidence = evidence_set(table, &predicates);
    let p = predicates.len();

    // Which attribute each predicate constrains (at most one predicate per
    // attribute in a candidate).
    let attr_of: Vec<usize> = predicates
        .iter()
        .map(|pr| match &pr.left {
            crate::ast::Operand::Attr { attr_id, .. } => attr_id.expect("resolved").0,
            crate::ast::Operand::Const(_) => usize::MAX,
        })
        .collect();

    let is_valid = |mask: u64| -> bool { !evidence.iter().any(|e| e & mask == mask) };

    let mut valid_masks: Vec<u64> = Vec::new();
    let mut found: Vec<DenialConstraint> = Vec::new();

    // Enumerate candidate predicate sets by increasing size.
    let mut current: Vec<Vec<usize>> = (0..p).map(|i| vec![i]).collect();
    for _size in 1..=config.max_predicates {
        let mut next: Vec<Vec<usize>> = Vec::new();
        for cand in &current {
            let mask: u64 = cand.iter().map(|i| 1u64 << i).sum();
            // Prune supersets of already-valid DCs (minimality).
            if valid_masks.iter().any(|v| v & mask == *v) {
                continue;
            }
            if is_valid(mask) {
                valid_masks.push(mask);
                let preds: Vec<Predicate> = cand.iter().map(|i| predicates[*i].clone()).collect();
                found.push(DenialConstraint::new(
                    format!("M{}", found.len() + 1),
                    preds,
                ));
                continue;
            }
            // Extend with higher-indexed predicates on fresh attributes.
            let start = cand.last().map_or(0, |x| x + 1);
            for nxt in start..p {
                if cand.iter().any(|i| attr_of[*i] == attr_of[nxt]) {
                    continue;
                }
                let mut bigger = cand.clone();
                bigger.push(nxt);
                next.push(bigger);
            }
        }
        current = next;
    }
    found
}

/// Does `table` satisfy every mined DC? (Sanity helper used by tests and
/// the demo loop: mined constraints must by construction be violation-free
/// on their training table.)
pub fn all_satisfied(dcs: &[DenialConstraint], table: &Table) -> bool {
    crate::eval::is_clean(dcs, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FunctionalDependency;
    use trex_table::TableBuilder;

    fn clean_table() -> Table {
        // Teams repeat (think: several seasons), so no column is a key and
        // the FD-shaped DCs are the minimal valid ones.
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Atletico", "Madrid", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Arsenal", "London", "England"])
            .str_row(["Chelsea", "London", "England"])
            .str_row(["Chelsea", "London", "England"])
            .build()
    }

    #[test]
    fn mined_dcs_hold_on_the_training_table() {
        let t = clean_table();
        let dcs = mine_dcs(&t, &MineConfig::default());
        assert!(!dcs.is_empty());
        assert!(all_satisfied(&dcs, &t));
    }

    #[test]
    fn finds_the_expected_fds_as_dcs() {
        let t = clean_table();
        let dcs = mine_dcs(&t, &MineConfig::default());
        let fds: Vec<FunctionalDependency> = crate::fd::fds_of(&dcs);
        assert!(fds.contains(&FunctionalDependency::new(["Team"], "City")));
        assert!(fds.contains(&FunctionalDependency::new(["City"], "Country")));
        // Country does NOT determine City (Spain has two cities): the FD
        // City ← Country must not be mined.
        assert!(!fds.contains(&FunctionalDependency::new(["Country"], "City")));
    }

    #[test]
    fn mined_dcs_are_minimal() {
        let t = clean_table();
        let dcs = mine_dcs(&t, &MineConfig::default());
        // No mined DC's predicate set is a superset of another's.
        for i in 0..dcs.len() {
            for j in 0..dcs.len() {
                if i == j {
                    continue;
                }
                let a = &dcs[i].predicates;
                let b = &dcs[j].predicates;
                let subset = a.iter().all(|p| b.contains(p));
                assert!(!subset || a.len() == b.len(), "{} ⊆ {}", dcs[i], dcs[j]);
            }
        }
    }

    #[test]
    fn key_attributes_yield_single_predicate_dcs_that_subsume_fds() {
        // With a unique Id column, ¬(t1.Id = t2.Id) is mined as a
        // single-predicate DC — and, being stronger, it *subsumes* every
        // Id → X FD, which therefore must not appear (minimality).
        let t = TableBuilder::new()
            .str_columns(["Id", "City"])
            .str_row(["1", "Madrid"])
            .str_row(["2", "Madrid"])
            .str_row(["3", "Barcelona"])
            .build();
        let dcs = mine_dcs(&t, &MineConfig::default());
        assert!(dcs.iter().any(|d| d.predicates.len() == 1
            && d.predicates[0].attrs().next().map(|(_, n)| n) == Some("Id")
            && d.predicates[0].op == CmpOp::Eq));
        let fds = crate::fd::fds_of(&dcs);
        assert!(!fds.iter().any(|f| f.lhs == vec!["Id".to_string()]));
    }

    #[test]
    fn no_contradictory_candidates() {
        let t = clean_table();
        let dcs = mine_dcs(&t, &MineConfig::default());
        for dc in &dcs {
            let mut attrs: Vec<&str> = dc.mentioned_attrs();
            let before = attrs.len();
            attrs.dedup();
            assert_eq!(before, attrs.len(), "{dc} repeats an attribute");
        }
    }

    #[test]
    fn order_predicates_are_mined_for_numeric_columns() {
        // Perfectly anti-correlated numeric columns: Year up, Rank down.
        let t = TableBuilder::new()
            .column("Year", trex_table::DType::Int)
            .column("Rank", trex_table::DType::Int)
            .row([trex_table::Value::int(2000), trex_table::Value::int(3)])
            .row([trex_table::Value::int(2001), trex_table::Value::int(2)])
            .row([trex_table::Value::int(2002), trex_table::Value::int(1)])
            .build();
        let dcs = mine_dcs(
            &t,
            &MineConfig {
                max_predicates: 2,
                order_predicates: true,
            },
        );
        // ¬(t1.Year < t2.Year ∧ t1.Rank < t2.Rank) must be among them.
        assert!(
            dcs.iter().any(|d| {
                d.predicates.len() == 2 && d.predicates.iter().all(|p| p.op == CmpOp::Lt)
            }),
            "mined: {}",
            dcs.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(all_satisfied(&dcs, &t));
    }

    #[test]
    fn mining_the_la_liga_clean_table_recovers_the_papers_shapes() {
        let t = trex_table::TableBuilder::new()
            .str_columns(["Team", "City", "Country", "League"])
            .str_row(["FC Barcelona", "Barcelona", "Spain", "La Liga"])
            .str_row(["Atletico Madrid", "Madrid", "Spain", "La Liga"])
            .str_row(["Real Madrid", "Madrid", "Spain", "La Liga"])
            .str_row(["Real Madrid", "Madrid", "Spain", "La Liga"])
            .str_row(["Manchester City", "Manchester", "England", "Premier League"])
            .str_row(["Arsenal", "London", "England", "Premier League"])
            .str_row(["Arsenal", "London", "England", "Premier League"])
            .build();
        let dcs = mine_dcs(&t, &MineConfig::default());
        let fds = crate::fd::fds_of(&dcs);
        // C1, C2, C3 of the paper, rediscovered from clean data.
        assert!(fds.contains(&FunctionalDependency::new(["Team"], "City")));
        assert!(fds.contains(&FunctionalDependency::new(["City"], "Country")));
        assert!(fds.contains(&FunctionalDependency::new(["League"], "Country")));
    }

    #[test]
    fn empty_and_single_row_tables_mine_everything_vacuously() {
        let t = TableBuilder::new().str_columns(["A", "B"]).build();
        let dcs = mine_dcs(&t, &MineConfig::default());
        // With no tuple pairs, every single predicate is vacuously valid
        // and minimality reduces the output to the size-1 DCs.
        assert!(dcs.iter().all(|d| d.predicates.len() == 1));
        assert!(all_satisfied(&dcs, &t));
    }
}
