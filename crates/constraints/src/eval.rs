//! Violation detection.
//!
//! A binary DC `¬(p1 ∧ … ∧ pk)` is violated by an *ordered* pair of distinct
//! tuples `(t1, t2)` on which every predicate holds; a unary DC by a single
//! tuple. [`find_violations`] enumerates all violations of one DC against a
//! table, returning [`Violation`] *witnesses* (which rows, which cells) —
//! repair algorithms consume the cells to decide what to change, and the
//! HoloClean-style engine uses them to mark noisy cells.
//!
//! Ordered-pair semantics matter: `¬(t1.A = t2.A ∧ t1.B > t2.B)` is
//! asymmetric, so `(i, j)` violating does not imply `(j, i)` does. For
//! symmetric DCs each unordered conflict is reported twice (once per order);
//! [`Violation::canonical_rows`] lets callers deduplicate when needed.
//!
//! Null semantics: any predicate touching a null cell is false, so nulled
//! (masked-out) cells can never participate in a violation — the invariant
//! the cell-level Shapley game relies on.

use crate::ast::{DenialConstraint, Operand, Predicate, TupleVar};
use std::fmt;
use std::sync::Arc;
use trex_table::{AttrId, CellRef, Table, Value};

/// A single violation witness of one DC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated constraint. Shared (`Arc<str>`) rather than
    /// copied: large tables report tens of thousands of witnesses per DC,
    /// and a per-witness heap allocation for the same few bytes dominated
    /// the scan profile.
    pub constraint: Arc<str>,
    /// Row bound to `t1`.
    pub row1: usize,
    /// Row bound to `t2` (`None` for unary DCs).
    pub row2: Option<usize>,
    /// The cells whose values the predicates read, i.e. the cells implicated
    /// in this violation.
    pub cells: Vec<CellRef>,
}

impl Violation {
    /// Rows sorted ascending, for deduplicating symmetric double-reports.
    pub fn canonical_rows(&self) -> (usize, Option<usize>) {
        match self.row2 {
            Some(r2) if r2 < self.row1 => (r2, Some(self.row1)),
            other => (self.row1, other),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.row2 {
            Some(r2) => write!(f, "{}: (t{}, t{})", self.constraint, self.row1 + 1, r2 + 1),
            None => write!(f, "{}: (t{})", self.constraint, self.row1 + 1),
        }
    }
}

pub(crate) fn operand_value<'t>(
    op: &'t Operand,
    table: &'t Table,
    r1: usize,
    r2: usize,
) -> (&'t Value, Option<CellRef>) {
    match op {
        Operand::Const(v) => (v, None),
        Operand::Attr {
            var, attr_id, name, ..
        } => {
            let attr = attr_id.unwrap_or_else(|| {
                panic!("unresolved attribute {name:?}: call DenialConstraint::resolve first")
            });
            let row = match var {
                TupleVar::T1 => r1,
                TupleVar::T2 => r2,
            };
            let cell = CellRef::new(row, attr);
            (table.get(cell), Some(cell))
        }
    }
}

/// Evaluate one predicate on a row binding; returns the cells read iff it
/// holds.
fn predicate_holds(
    p: &Predicate,
    table: &Table,
    r1: usize,
    r2: usize,
    cells: &mut Vec<CellRef>,
) -> bool {
    let (lv, lc) = operand_value(&p.left, table, r1, r2);
    let (rv, rc) = operand_value(&p.right, table, r1, r2);
    if p.op.eval(lv, rv) {
        if let Some(c) = lc {
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        if let Some(c) = rc {
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        true
    } else {
        false
    }
}

/// Does the (resolved) DC hold violated for the ordered binding
/// `(t1 = row1, t2 = row2)`? For unary DCs `row2` is ignored.
pub fn violates_binding(dc: &DenialConstraint, table: &Table, row1: usize, row2: usize) -> bool {
    let mut scratch = Vec::new();
    dc.predicates
        .iter()
        .all(|p| predicate_holds(p, table, row1, row2, &mut scratch))
}

/// The witness for the ordered binding `(t1 = r1, t2 = r2)` if it violates
/// `dc`. Shared with [`crate::parallel`]: the serial and parallel scans must
/// build identical witnesses, so there is exactly one copy of this logic.
pub(crate) fn violation_for(
    dc: &DenialConstraint,
    table: &Table,
    r1: usize,
    r2: usize,
) -> Option<Violation> {
    let mut cells = Vec::new();
    for p in &dc.predicates {
        if !predicate_holds(p, table, r1, r2, &mut cells) {
            return None;
        }
    }
    Some(Violation {
        constraint: Arc::from(dc.name.as_str()),
        row1: r1,
        row2: if dc.is_binary() { Some(r2) } else { None },
        cells,
    })
}

/// Find all violations of a single resolved DC, by nested-loop evaluation.
///
/// Binary DCs scan all ordered pairs `(i, j)`, `i ≠ j`; unary DCs scan all
/// rows. See [`crate::index::find_violations_indexed`] for the
/// hash-partitioned fast path.
pub fn find_violations(dc: &DenialConstraint, table: &Table) -> Vec<Violation> {
    let n = table.num_rows();
    let mut out = Vec::new();
    if dc.is_binary() {
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if let Some(v) = violation_for(dc, table, i, j) {
                    out.push(v);
                }
            }
        }
    } else {
        for i in 0..n {
            if let Some(v) = violation_for(dc, table, i, i) {
                out.push(v);
            }
        }
    }
    out
}

/// Find all violations of every DC in `dcs` (resolved), concatenated in
/// constraint order.
pub fn find_all_violations(dcs: &[DenialConstraint], table: &Table) -> Vec<Violation> {
    dcs.iter()
        .flat_map(|dc| find_violations(dc, table))
        .collect()
}

/// `true` iff the table satisfies every DC (no violations at all).
pub fn is_clean(dcs: &[DenialConstraint], table: &Table) -> bool {
    dcs.iter().all(|dc| {
        let n = table.num_rows();
        if dc.is_binary() {
            (0..n).all(|i| (0..n).all(|j| i == j || !violates_binding(dc, table, i, j)))
        } else {
            (0..n).all(|i| !violates_binding(dc, table, i, i))
        }
    })
}

/// Reduce a violation list to the sorted distinct cells it implicates.
/// Shared with [`crate::parallel`] so the serial and parallel noisy-cell
/// sets cannot drift apart.
pub(crate) fn collect_noisy_cells(violations: Vec<Violation>) -> Vec<CellRef> {
    let mut out: Vec<CellRef> = Vec::new();
    for v in violations {
        for c in v.cells {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out.sort();
    out
}

/// The set of distinct cells implicated in any violation of `dcs` — the
/// "noisy cells" that repair engines consider changing.
pub fn noisy_cells(dcs: &[DenialConstraint], table: &Table) -> Vec<CellRef> {
    collect_noisy_cells(find_all_violations(dcs, table))
}

/// Rows of `table` whose binding as *either* tuple variable violates `dc`.
pub fn violating_rows(dc: &DenialConstraint, table: &Table) -> Vec<usize> {
    let mut rows: Vec<usize> = Vec::new();
    for v in find_violations(dc, table) {
        for r in [Some(v.row1), v.row2].into_iter().flatten() {
            if !rows.contains(&r) {
                rows.push(r);
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Count violations per constraint, in `dcs` order.
pub fn violation_counts(dcs: &[DenialConstraint], table: &Table) -> Vec<(String, usize)> {
    dcs.iter()
        .map(|dc| (dc.name.clone(), find_violations(dc, table).len()))
        .collect()
}

/// Helper: which attribute ids of `t1`'s row does this DC read? Used by
/// repair engines to know which cells a violation puts in question.
pub fn t1_attrs(dc: &DenialConstraint) -> Vec<AttrId> {
    let mut out = Vec::new();
    for p in &dc.predicates {
        for o in [&p.left, &p.right] {
            if let Operand::Attr {
                var: TupleVar::T1,
                attr_id: Some(id),
                ..
            } = o
            {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Operand, Predicate};
    use crate::parser::parse_dc;
    use trex_table::{Schema, TableBuilder, Value};

    fn soccer() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City", "Country"])
            .str_row(["Real Madrid", "Madrid", "Spain"])
            .str_row(["Barcelona", "Barcelona", "Spain"])
            .str_row(["Real Madrid", "Capital", "España"])
            .build()
    }

    fn resolved(src: &str, schema: &Schema) -> DenialConstraint {
        let mut dc = parse_dc(src).unwrap();
        dc.resolve(schema).unwrap();
        dc
    }

    #[test]
    fn binary_violations_are_ordered_pairs() {
        let t = soccer();
        let dc = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        let vs = find_violations(&dc, &t);
        // rows 0 and 2 share Team but differ in City: both orders reported.
        assert_eq!(vs.len(), 2);
        let pairs: Vec<(usize, Option<usize>)> = vs.iter().map(|v| (v.row1, v.row2)).collect();
        assert!(pairs.contains(&(0, Some(2))));
        assert!(pairs.contains(&(2, Some(0))));
        assert_eq!(vs[0].canonical_rows(), (0, Some(2)));
        assert_eq!(vs[1].canonical_rows(), (0, Some(2)));
    }

    #[test]
    fn witness_cells_cover_read_cells() {
        let t = soccer();
        let dc = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        let v = &find_violations(&dc, &t)[0];
        let team = t.schema().id("Team");
        let city = t.schema().id("City");
        assert_eq!(v.cells.len(), 4);
        assert!(v.cells.contains(&CellRef::new(0, team)));
        assert!(v.cells.contains(&CellRef::new(2, team)));
        assert!(v.cells.contains(&CellRef::new(0, city)));
        assert!(v.cells.contains(&CellRef::new(2, city)));
    }

    #[test]
    fn nulls_suppress_violations() {
        let mut t = soccer();
        let city = t.schema().id("City");
        t.set(CellRef::new(2, city), Value::Null);
        let dc = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        assert!(find_violations(&dc, &t).is_empty());
    }

    #[test]
    fn unary_dc_with_constant() {
        let t = soccer();
        let dc = resolved("!(t1.City = \"Capital\")", t.schema());
        let vs = find_violations(&dc, &t);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].row1, 2);
        assert_eq!(vs[0].row2, None);
    }

    #[test]
    fn asymmetric_dc_reports_one_order() {
        let t = TableBuilder::new()
            .column("A", trex_table::DType::Str)
            .column("N", trex_table::DType::Int)
            .row([Value::str("x"), Value::int(1)])
            .row([Value::str("x"), Value::int(5)])
            .build();
        let dc = resolved("!(t1.A = t2.A & t1.N > t2.N)", t.schema());
        let vs = find_violations(&dc, &t);
        assert_eq!(vs.len(), 1);
        assert_eq!((vs[0].row1, vs[0].row2), (1, Some(0)));
    }

    #[test]
    fn is_clean_detects_cleanliness() {
        let t = soccer();
        let c1 = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        assert!(!is_clean(std::slice::from_ref(&c1), &t));
        let mut clean = t.clone();
        let city = t.schema().id("City");
        let country = t.schema().id("Country");
        clean.set(CellRef::new(2, city), Value::str("Madrid"));
        clean.set(CellRef::new(2, country), Value::str("Spain"));
        assert!(is_clean(&[c1], &clean));
    }

    #[test]
    fn noisy_cells_sorted_and_deduped() {
        let t = soccer();
        let c1 = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        let cells = noisy_cells(&[c1.clone(), c1], &t);
        assert_eq!(cells.len(), 4);
        assert!(cells.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn violating_rows_collects_both_sides() {
        let t = soccer();
        let c1 = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        assert_eq!(violating_rows(&c1, &t), vec![0, 2]);
    }

    #[test]
    fn violation_counts_per_constraint() {
        let t = soccer();
        let c1 = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        let c2 = resolved(
            "!(t1.City = t2.City & t1.Country != t2.Country)",
            t.schema(),
        );
        let counts = violation_counts(&[c1, c2], &t);
        assert_eq!(counts[0].1, 2);
        assert_eq!(counts[1].1, 0);
    }

    #[test]
    #[should_panic(expected = "unresolved attribute")]
    fn unresolved_dc_panics_loudly() {
        let t = soccer();
        let dc = parse_dc("!(t1.Team = t2.Team)").unwrap();
        let _ = find_violations(&dc, &t);
    }

    #[test]
    fn t1_attrs_lists_read_attributes() {
        let t = soccer();
        let dc = resolved("!(t1.Team = t2.Team & t1.City != t2.City)", t.schema());
        let attrs = t1_attrs(&dc);
        assert_eq!(attrs, vec![t.schema().id("Team"), t.schema().id("City")]);
    }

    #[test]
    fn empty_table_has_no_violations() {
        let t = Table::empty(Schema::of_strings(["A"]));
        let dc = resolved("!(t1.A = t2.A)", t.schema());
        assert!(find_violations(&dc, &t).is_empty());
        assert!(is_clean(&[dc], &t));
    }

    #[test]
    fn single_tuple_cannot_violate_binary_dc() {
        // A reflexive predicate like t1.A = t2.A is trivially true for i=i,
        // but i == j pairs are excluded.
        let t = TableBuilder::new()
            .str_columns(["A"])
            .str_row(["x"])
            .build();
        let dc = resolved("!(t1.A = t2.A)", t.schema());
        assert!(find_violations(&dc, &t).is_empty());
    }

    #[test]
    fn cross_attribute_predicate() {
        let t = soccer();
        let mut dc = DenialConstraint::new(
            "X",
            vec![Predicate::new(
                Operand::attr(TupleVar::T1, "Team"),
                CmpOp::Eq,
                Operand::attr(TupleVar::T2, "City"),
            )],
        );
        dc.resolve(t.schema()).unwrap();
        // t1.Team = "Barcelona" matches t2.City = "Barcelona" (rows 1,1 excluded? no:
        // ordered pairs i≠j, t1=row1 Team=Barcelona, t2=row1 City=Barcelona is i=j — excluded;
        // but t1=row1 (Team Barcelona) with t2=row1 excluded, so no pair... Team "Real Madrid" vs City — none.
        // Actually row1.Team = "Barcelona" and row1.City = "Barcelona": only the i=j binding matches, excluded.
        let vs = find_violations(&dc, &t);
        assert!(vs.is_empty());
    }
}
