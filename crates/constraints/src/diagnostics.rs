//! Structured diagnostics for the DC static analyzer.
//!
//! [`Diagnostic`] is the one record every [`crate::analyze`] pass emits:
//! a stable machine-readable code (`TREX-E001`, …), a severity, the
//! constraint (by name and input index), the offending predicate (by index
//! and source [`Span`] when the DC was parsed), a human message, and a fix
//! hint. Diagnostics order deterministically — by constraint index, then
//! predicate index, then code — so `trex lint` output is byte-stable across
//! runs and thread counts.

use crate::ast::Span;
use std::fmt;

/// How bad a diagnostic is. Ordered most-severe-first so sorting by
/// severity puts errors on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The constraint cannot work as written (unknown attribute, a
    /// predicate that can never hold at the table's types). `trex lint`
    /// exits non-zero.
    Error,
    /// The constraint is legal but wasteful or vacuous (unsatisfiable
    /// conjunction, tautological predicate, subsumed duplicate).
    Warn,
    /// Stylistic or informational (degenerate tuple-variable use,
    /// reflexive null-guard predicates).
    Info,
}

impl Severity {
    /// The lowercase label used by `Display` and the JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Stable diagnostic codes (one per analyzer check; see the README table).
pub mod codes {
    /// Unknown attribute: a predicate references a name the schema lacks.
    pub const UNKNOWN_ATTR: &str = "TREX-E001";
    /// Attribute-vs-constant type mismatch: the comparison can never hold
    /// at the column's runtime type.
    pub const TYPE_MISMATCH: &str = "TREX-E002";
    /// Attribute-vs-attribute comparison between incomparable columns.
    pub const INCOMPARABLE_COLUMNS: &str = "TREX-E003";
    /// The DC's predicate conjunction is unsatisfiable — the constraint can
    /// never be violated and its scan always returns nothing.
    pub const UNVIOLABLE: &str = "TREX-W101";
    /// A predicate holds on every binding (constant tautology) and adds
    /// nothing to the conjunction.
    pub const TAUTOLOGY: &str = "TREX-W102";
    /// The constraint is implied by (or duplicates) another constraint.
    pub const SUBSUMED: &str = "TREX-W103";
    /// An order comparison over a text column whose values all look
    /// numeric: lexicographic order disagrees with numeric order.
    pub const TEXT_ORDER: &str = "TREX-W104";
    /// Degenerate tuple-variable use: a row-pair DC that mentions only
    /// `t2` (it scans all ordered pairs yet reads one row).
    pub const DEGENERATE_VARS: &str = "TREX-I301";
    /// A reflexive self-comparison like `t1.A = t1.A`, which only acts as
    /// a not-null guard.
    pub const REFLEXIVE: &str = "TREX-I302";
}

/// One analyzer finding. See the module docs for the ordering contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (see [`codes`]).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Name of the constraint the finding is about.
    pub constraint: String,
    /// Index of that constraint in the analyzed slice.
    pub constraint_index: usize,
    /// Index of the offending predicate within the constraint, if the
    /// finding points at one.
    pub predicate: Option<usize>,
    /// Source byte range of the offending predicate (or constraint), when
    /// the DC was parsed from text. `None` for hand-built DCs.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, when the analyzer has one.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// The deterministic report order: input position first (constraint,
    /// then predicate), then code — so a DC's findings read top to bottom
    /// and repeated runs emit identical bytes.
    pub fn sort_key(&self) -> (usize, usize, &'static str, &str) {
        (
            self.constraint_index,
            self.predicate.unwrap_or(usize::MAX),
            self.code,
            &self.message,
        )
    }

    /// One-line rendering: `error[TREX-E001] C1 predicate 2 @10..24: …
    /// (hint: …)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}] {}", self.severity, self.code, self.constraint);
        if let Some(p) = self.predicate {
            out.push_str(&format!(" predicate {}", p + 1));
        }
        if let Some(s) = self.span {
            out.push_str(&format!(" @{s}"));
        }
        out.push_str(&format!(": {}", self.message));
        if let Some(h) = &self.hint {
            out.push_str(&format!(" (hint: {h})"));
        }
        out
    }

    /// The diagnostic as one JSON object (hand-rolled like every artifact
    /// writer in this workspace — no serde).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\": {}", json_str(self.code)),
            format!("\"severity\": {}", json_str(self.severity.label())),
            format!("\"constraint\": {}", json_str(&self.constraint)),
            format!("\"constraint_index\": {}", self.constraint_index),
        ];
        if let Some(p) = self.predicate {
            fields.push(format!("\"predicate\": {p}"));
        }
        if let Some(s) = self.span {
            fields.push(format!(
                "\"span\": {{ \"start\": {}, \"end\": {} }}",
                s.start, s.end
            ));
        }
        fields.push(format!("\"message\": {}", json_str(&self.message)));
        if let Some(h) = &self.hint {
            fields.push(format!("\"hint\": {}", json_str(h)));
        }
        format!("{{ {} }}", fields.join(", "))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// JSON string literal with the escapes the diagnostic fields can need.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            code: codes::UNKNOWN_ATTR,
            severity: Severity::Error,
            constraint: "C1".to_string(),
            constraint_index: 0,
            predicate: Some(1),
            span: Some(Span::new(10, 24)),
            message: "unknown attribute \"Citty\"".to_string(),
            hint: Some("did you mean \"City\"?".to_string()),
        }
    }

    #[test]
    fn render_is_one_line_with_all_parts() {
        let d = diag();
        assert_eq!(
            d.render(),
            "error[TREX-E001] C1 predicate 2 @10..24: unknown attribute \
             \"Citty\" (hint: did you mean \"City\"?)"
        );
        let bare = Diagnostic {
            predicate: None,
            span: None,
            hint: None,
            ..d
        };
        assert_eq!(
            bare.render(),
            "error[TREX-E001] C1: unknown attribute \"Citty\""
        );
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warn);
        assert!(Severity::Warn < Severity::Info);
    }

    #[test]
    fn json_escapes_quotes_and_control_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        let json = diag().to_json();
        assert!(json.contains("\"code\": \"TREX-E001\""), "{json}");
        assert!(
            json.contains("\"span\": { \"start\": 10, \"end\": 24 }"),
            "{json}"
        );
    }

    #[test]
    fn sort_key_orders_by_position_then_code() {
        let mut a = diag();
        a.predicate = None;
        let b = diag();
        // Same constraint: the whole-DC finding (no predicate) sorts after
        // per-predicate ones, matching usize::MAX.
        assert!(b.sort_key() < a.sort_key());
    }
}
